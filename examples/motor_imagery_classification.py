"""Motor-imagery-style discrete decoding with spectral features + LDA.

The classic discrete BCI pipeline (Section 2's motor-control lineage):
band-power features from multichannel field potentials, a shrinkage-LDA
classifier, and the implant-side cost accounting that tells you whether
this classical pipeline even needs a computation-centric implant (spoiler:
it does not — that is exactly why the paper's DNN story matters).

Run:  python examples/motor_imagery_classification.py
"""

import numpy as np

from repro.accel.tech import TECH_45NM
from repro.decoders import LdaClassifier
from repro.dnn.macs import fmac_dense
from repro.experiments.report import format_table
from repro.signals import band_power_features, synthesize_ecog
from repro.signals.lfp import OscillatoryBand

FS = 1000.0
N_CHANNELS = 16
EPOCH_S = 1.0
N_EPOCHS = 60

#: Two imagined-movement "states": rest (alpha-dominant) vs movement
#: (beta desynchronized, gamma bursts).
REST_BANDS = (OscillatoryBand(10.0, 3.0, 1.6),
              OscillatoryBand(20.0, 5.0, 0.8))
MOVE_BANDS = (OscillatoryBand(10.0, 3.0, 0.5),
              OscillatoryBand(35.0, 10.0, 1.4))


def make_epochs(rng: np.random.Generator):
    """Alternating rest/movement epochs with class-dependent spectra."""
    features, labels = [], []
    for i in range(N_EPOCHS):
        bands = REST_BANDS if i % 2 == 0 else MOVE_BANDS
        data = synthesize_ecog(N_CHANNELS, EPOCH_S, FS, rng, bands=bands,
                               spatial_correlation=0.4, noise_rms=0.3)
        features.append(np.log(band_power_features(data, FS) + 1e-12)
                        .reshape(-1))
        labels.append(i % 2)
    return np.array(features), np.array(labels)


def main() -> None:
    rng = np.random.default_rng(13)
    features, labels = make_epochs(rng)
    split = 40
    clf = LdaClassifier(shrinkage=0.2)
    clf.fit(features[:split], labels[:split])
    accuracy = clf.score(features[split:], labels[split:])
    print(f"rest-vs-movement LDA on {N_CHANNELS}-channel synthetic ECoG: "
          f"{accuracy:.0%} held-out accuracy "
          f"({features.shape[1]} band-power features)\n")

    # Implant-side cost of this classical pipeline vs a DNN.
    lda_profile = fmac_dense(features.shape[1], len(clf.classes_))
    lda_energy = lda_profile.total_macs * TECH_45NM.energy_per_mac_j
    from repro.dnn.models import build_speech_mlp
    dnn = build_speech_mlp(128)  # the paper's base speech workload
    dnn_energy = dnn.total_macs * TECH_45NM.energy_per_mac_j
    rows = [
        {"decoder": "band-power + LDA (this example)",
         "macs_per_decision": lda_profile.total_macs,
         "energy_nj": lda_energy * 1e9},
        {"decoder": "speech MLP @128ch (paper's base workload)",
         "macs_per_decision": dnn.total_macs,
         "energy_nj": dnn_energy * 1e9},
        {"decoder": "speech MLP @1024ch (the Fig. 10 regime)",
         "macs_per_decision": build_speech_mlp(1024).total_macs,
         "energy_nj": build_speech_mlp(1024).total_macs
         * TECH_45NM.energy_per_mac_j * 1e9},
    ]
    print(format_table(rows))
    print("\nClassical discrete decoders cost microjoules per *session*; "
          "the paper's\nfeasibility crisis only appears when decoding "
          "moves to DNN-scale models.")


if __name__ == "__main__":
    main()
