"""Closed-loop BCI feasibility study (the paper's future-work direction).

A closed-loop implant senses, decodes, and stimulates — no telemetry —
and must complete the loop within the brain's ~0.18 s reaction time.
This example walks a published design through the closed-loop analysis:
loop latency breakdown, power budget with stimulation, how far the
channel count scales, and what wireless power transfer losses do to the
effective budget.

Run:  python examples/closed_loop_bci.py
"""

from repro.core import (
    BRAIN_REACTION_TIME_S,
    StimulationConfig,
    evaluate_closed_loop,
    scale_to_standard,
    soc_by_number,
)
from repro.dnn.models import build_speech_mlp
from repro.experiments.report import format_table
from repro.link.wpt import InductiveLink
from repro.units import to_mw


def main() -> None:
    soc = scale_to_standard(soc_by_number(1))
    stimulation = StimulationConfig(n_electrodes=32)
    print(f"closed-loop analysis for {soc.name} "
          f"(reaction budget {BRAIN_REACTION_TIME_S * 1e3:.0f} ms, "
          f"{stimulation.n_electrodes} stim electrodes)\n")

    rows = []
    for n in (1024, 2048, 4096, 8192):
        network = build_speech_mlp(n)
        point = evaluate_closed_loop(soc, network, n,
                                     stimulation=stimulation)
        rows.append({
            "channels": n,
            "loop_ms": point.loop_latency_s * 1e3,
            "decode_ms": point.decode_s * 1e3,
            "comp_mw": to_mw(point.comp_power_w),
            "stim_mw": to_mw(point.stim_power_w),
            "power_ratio": point.power_ratio,
            "feasible": point.feasible,
        })
    print(format_table(rows))

    print("\nBecause a closed loop decodes once per *decision* instead of "
          "once per sample,\nthe Eq. 11 deadline relaxes by orders of "
          "magnitude and far larger models fit\nthan the Fig. 10 "
          "streaming analysis allows.")

    # WPT: powering the loop wirelessly shrinks the usable budget.
    wpt = InductiveLink()
    budget = soc.budget_w()
    effective = wpt.effective_budget(budget)
    print(f"\nwireless power transfer (coil eta "
          f"{wpt.link_efficiency:.0%}, implant chain "
          f"{wpt.implant_chain_efficiency:.0%}):")
    print(f"  thermal budget {to_mw(budget):.1f} mW -> usable "
          f"{to_mw(effective):.1f} mW after receive-chain losses")
    print(f"  external transmitter must radiate "
          f"{to_mw(wpt.transmit_power_for(effective)):.0f} mW to deliver "
          f"it")


if __name__ == "__main__":
    main()
