"""Quickstart: assess an implantable BCI SoC with the MINDFUL framework.

Loads the Table 1 database, scales a design to the 1024-channel standard,
checks thermal safety, and asks the two headline questions of the paper:
how far can this design stream raw data, and can it host a modern DNN?

Run:  python examples/quickstart.py
"""

from repro.core import (
    DesignHypothesis,
    Workload,
    budget_crossing_channels,
    evaluate_comp_centric,
    evaluate_qam_design,
    max_feasible_channels,
    scale_to_standard,
    soc_by_number,
)
from repro.thermal import assess
from repro.units import to_mbps, to_mw


def main() -> None:
    # 1. Pick a published design: SoC 1 (BISC) from Table 1.
    bisc = scale_to_standard(soc_by_number(1))
    print(f"Design: {bisc.name} at {bisc.n_channels} channels")
    print(f"  area {bisc.area_m2 * 1e6:.0f} mm^2, "
          f"power {to_mw(bisc.power_w):.1f} mW, "
          f"sampling {bisc.sampling_hz / 1e3:.0f} kHz")

    # 2. Thermal safety (Eq. 3: 40 mW/cm^2).
    print(f"  safety: {assess(bisc.power_w, bisc.area_m2).describe()}")

    # 3. Raw-data streaming (Eq. 6): how much data, and how far does the
    #    communication-centric design scale before crossing the budget?
    print(f"  raw sensing throughput: "
          f"{to_mbps(bisc.sensing_throughput_bps()):.1f} Mbps")
    crossing = budget_crossing_channels(bisc, DesignHypothesis.HIGH_MARGIN)
    print(f"  high-margin OOK design crosses the power budget at "
          f"~{crossing} channels")
    qam = evaluate_qam_design(bisc, 2048)
    print(f"  streaming 2048 channels with {2 ** qam.bits_per_symbol}-QAM "
          f"needs >= {qam.min_efficiency:.0%} transmitter efficiency")

    # 4. On-implant computation (Eq. 13): can the speech-synthesis DNNs
    #    run on the implant, and up to how many channels?
    for workload in Workload:
        point = evaluate_comp_centric(bisc, workload, 1024)
        limit = max_feasible_channels(bisc, workload)
        verdict = "fits" if point.fits else "exceeds budget"
        print(f"  {workload.value:6s} @1024ch: P_soc/P_budget = "
              f"{point.power_ratio:.2f} ({verdict}); max ~{limit} channels")


if __name__ == "__main__":
    main()
