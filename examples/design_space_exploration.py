"""Design-space exploration for a hypothetical next-generation implant.

Defines a new SoC (not in Table 1) from first principles — NEF-based
front-end power, grid geometry, link budget — registers it alongside the
published designs, and sweeps the three architectural strategies the paper
compares: raw OOK streaming, advanced modulation, and on-implant DNNs.

Run:  python examples/design_space_exploration.py
"""

from repro.core import (
    DesignHypothesis,
    NIType,
    SoCRecord,
    Workload,
    budget_crossing_channels,
    evaluate_comm_centric,
    evaluate_comp_centric,
    evaluate_qam_design,
    max_channels_at_efficiency,
    max_feasible_channels,
    scale_to_standard,
)
from repro.experiments.report import format_table
from repro.ni.afe import AnalogFrontEnd
from repro.ni.geometry import GridArray
from repro.units import mw_per_cm2, to_mw


def design_next_gen_soc() -> SoCRecord:
    """A 1024-channel concept implant built from substrate models."""
    sampling_hz = 10e3
    geometry = GridArray(rows=32, cols=32, pitch_m=250e-6,
                         overhead_area_m2=40e-6)
    afe = AnalogFrontEnd(nef=2.5, input_noise_vrms=4e-6,
                         bandwidth_hz=sampling_hz / 2)
    sensing_power = afe.total_power_w(geometry.n_channels)
    # Budget 30 % of total power for the transceiver at the anchor.
    total_power = sensing_power / 0.7
    density = total_power / geometry.total_area_m2
    print(f"concept SoC: {geometry.n_channels} channels, "
          f"{geometry.total_area_m2 * 1e6:.0f} mm^2, "
          f"{to_mw(total_power):.1f} mW "
          f"({density / mw_per_cm2(1):.1f} mW/cm^2)")
    return SoCRecord(
        number=99, name="NextGen", ni_type=NIType.ELECTRODES,
        n_channels=geometry.n_channels,
        area_m2=geometry.total_area_m2,
        power_density_w_m2=density,
        sampling_hz=sampling_hz, wireless=True, below_budget=True,
        sensing_area_fraction=geometry.volumetric_efficiency,
        comm_power_fraction=0.30)


def main() -> None:
    soc = scale_to_standard(design_next_gen_soc())

    rows = []
    for n in (1024, 2048, 4096, 8192):
        comm = evaluate_comm_centric(soc, n, DesignHypothesis.HIGH_MARGIN)
        qam = evaluate_qam_design(soc, n)
        comp = evaluate_comp_centric(soc, Workload.MLP, n)
        rows.append({
            "channels": n,
            "ook_power_ratio": comm.power_ratio,
            "qam_min_efficiency": qam.min_efficiency,
            "mlp_power_ratio": comp.power_ratio,
        })
    print()
    print(format_table(rows))

    print()
    print("strategy frontiers for the concept SoC:")
    ook_limit = budget_crossing_channels(soc, DesignHypothesis.HIGH_MARGIN)
    print(f"  raw OOK streaming feasible below   ~{ook_limit} channels")
    for eff in (0.15, 0.20, 1.00):
        limit = max_channels_at_efficiency(soc, eff)
        print(f"  QAM at {eff:>4.0%} efficiency reaches     ~{limit} channels")
    for workload in Workload:
        limit = max_feasible_channels(soc, workload)
        print(f"  on-implant {workload.value:6s} feasible below "
              f"~{limit} channels")


if __name__ == "__main__":
    main()
