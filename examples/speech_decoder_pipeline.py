"""Speech-synthesis decoding pipeline (the paper's motivating workload).

Synthesizes an ECoG-like dataset with 40-bin spectral targets, trains a
small instance of the MINDFUL MLP workload on it, then asks the system
questions the paper asks of the full-scale model: what does the trained
network cost on an implant, and does partitioning it across the
implant/wearable boundary help?

Run:  python examples/speech_decoder_pipeline.py
"""

import numpy as np

from repro.accel.schedule import best_schedule
from repro.accel.tech import TECH_45NM
from repro.core import (
    Workload,
    evaluate_comp_centric,
    evaluate_partitioned,
    scale_to_standard,
    soc_by_number,
)
from repro.decoders import DnnDecoder
from repro.dnn.models import build_speech_mlp
from repro.signals import make_speech_dataset
from repro.signals.audio import SinusoidalVocoder, mel_like_frequencies
from repro.units import to_mw

#: Small-scale training configuration (the analysis itself runs at any n).
N_CHANNELS = 64
N_FRAMES = 2000
WINDOW = 2


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. Synthetic ECoG -> spectral-target dataset and a trained decoder.
    data = make_speech_dataset(N_CHANNELS, N_FRAMES, rng, window=WINDOW)
    net = build_speech_mlp(N_CHANNELS, rng=rng, window=WINDOW)
    decoder = DnnDecoder(net, epochs=15, batch_size=64, learning_rate=0.1)
    split = int(0.8 * N_FRAMES)
    history = decoder.fit(data.features[:split], data.targets[:split], rng)
    score = decoder.score(data.features[split:], data.targets[split:])
    print(f"Trained {net.name}: loss {history[0]:.4f} -> {history[-1]:.4f}, "
          f"held-out correlation {score:.2f}")
    print(f"  model: {net.n_compute_layers} compute layers, "
          f"{net.n_parameters:,} parameters, {net.total_macs:,} MACs/frame")

    # 2. What does this network cost on an implant (Eq. 11-13)?
    soc = scale_to_standard(soc_by_number(1))
    schedule = best_schedule(net.mac_profiles(), 1.0 / soc.sampling_hz,
                             TECH_45NM)
    print(f"  on-implant schedule: {schedule.mac_units} MAC units "
          f"({'pipelined' if schedule.pipelined else 'shared pool'}), "
          f"P_comp >= {to_mw(schedule.power_w(TECH_45NM)):.2f} mW")

    # 3. Scale the same workload to the paper's regime and compare the
    #    full vs partitioned designs at 2048 channels.
    full = evaluate_comp_centric(soc, Workload.MLP, 2048)
    part = evaluate_partitioned(soc, Workload.MLP, 2048)
    print(f"\n{soc.name} @2048 channels, full MLP on implant:")
    print(f"  P_comp {to_mw(full.comp_power_w):.1f} mW + "
          f"P_comm {to_mw(full.comm_power_w):.2f} mW -> "
          f"P_soc/P_budget = {full.power_ratio:.2f}")
    print(f"partitioned after compute layer {part.split_layer} "
          f"(streams {part.transmitted_values} values/sample):")
    print(f"  P_comp {to_mw(part.comp_power_w):.1f} mW + "
          f"P_comm {to_mw(part.comm_power_w):.2f} mW -> "
          f"P_soc/P_budget = {part.power_ratio:.2f}")
    saved = full.total_power_w - part.total_power_w
    print(f"partitioning saves {to_mw(saved):.1f} mW on the implant")

    # 4. Close the loop: decoded spectra -> audio (the paper's "40 labels
    #    ... used to generate audio").
    vocoder = SinusoidalVocoder(frequencies_hz=mel_like_frequencies(40),
                                sampling_rate_hz=16_000.0,
                                frame_rate_hz=100.0)
    decoded = decoder.decode(data.features[split:split + 100])
    audio = vocoder.synthesize(np.maximum(decoded, 0.0))
    print(f"\nsynthesized {audio.size / 16_000.0:.1f} s of audio from "
          f"{decoded.shape[0]} decoded frames "
          f"(peak {np.max(np.abs(audio)):.2f}, "
          f"RMS {np.sqrt(np.mean(audio ** 2)):.3f})")


if __name__ == "__main__":
    main()
