"""End-to-end implant simulation: brain -> NI -> packets -> RF -> wearable.

Simulates the communication-centric dataflow of Fig. 3 at waveform level:
synthetic cortical activity is digitized by the neural interface,
packetized with CRC framing, OOK-modulated over an AWGN link at several
SNRs, and reassembled on the wearable.  Reports packet loss, effective
throughput, the Eq. 9 transmit power, and the tissue heating it implies.

Run:  python examples/implant_stream_simulation.py
"""

import numpy as np

from repro.core import scale_to_standard, soc_by_number
from repro.experiments.report import format_table
from repro.link import AwgnChannel, LinkBudget, OOK, communication_power
from repro.link.packetizer import Packet, Packetizer
from repro.ni import AdcModel, GridArray, NeuralInterface
from repro.signals import synthesize_ecog
from repro.thermal import TissueThermalModel, assess
from repro.units import to_mbps, to_mw

N_CHANNELS = 64
SAMPLING_HZ = 8e3
DURATION_S = 0.05


def transmit_block(codes: np.ndarray, ebn0_db: float,
                   rng: np.random.Generator) -> tuple[int, int]:
    """Push one digitized block through the link.

    Returns:
        (packets sent, packets recovered intact).
    """
    packetizer = Packetizer(payload_bytes=64, sample_bits=10)
    packets = packetizer.packetize(codes)
    scheme = OOK()
    channel = AwgnChannel(ebn0_linear=10 ** (ebn0_db / 10.0), rng=rng)

    intact = 0
    for packet in packets:
        raw = packet.to_bytes()
        bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8))
        received = scheme.demodulate(channel.transmit(scheme.modulate(bits)))
        rebuilt = Packet.from_bytes(np.packbits(received).tobytes())
        if rebuilt.valid and rebuilt.payload == packet.payload:
            intact += 1
    return len(packets), intact


def main() -> None:
    rng = np.random.default_rng(3)

    # Implanted-side pipeline: cortical activity -> digitized frames.
    ni = NeuralInterface(
        geometry=GridArray(rows=8, cols=8, pitch_m=300e-6),
        adc=AdcModel(bits=10, sampling_rate_hz=SAMPLING_HZ))
    analog = 0.2 * synthesize_ecog(N_CHANNELS, DURATION_S, SAMPLING_HZ, rng)
    codes = ni.acquire(analog)
    print(f"acquired {codes.shape[1]} samples x {codes.shape[0]} channels "
          f"({to_mbps(ni.throughput_bps):.2f} Mbps sustained)")

    # Sweep link quality and measure packet survival.
    rows = []
    for ebn0_db in (8.0, 10.0, 12.0, 14.0):
        sent, intact = transmit_block(codes, ebn0_db, rng)
        rows.append({"ebn0_db": ebn0_db, "packets": sent,
                     "intact": intact,
                     "delivery_rate": intact / sent})
    print(format_table(rows))

    # Power and thermal consequences of sustaining the stream.
    budget = LinkBudget()
    energy = budget.transmit_energy_per_bit(1, efficiency=0.15,
                                            scheme="ook")
    comm_power = communication_power(ni.throughput_bps, energy)
    total = ni.sensing_power_w + comm_power
    print(f"\nsustained power: sensing {to_mw(ni.sensing_power_w):.2f} mW "
          f"+ OOK transmit {to_mw(comm_power):.2f} mW "
          f"= {to_mw(total):.2f} mW")
    report = assess(total, ni.geometry.total_area_m2)
    print(f"safety: {report.describe()}")
    thermal = TissueThermalModel()
    rise = thermal.steady_state_rise_k(report.density_w_m2)
    print(f"steady-state tissue heating: {rise:.2f} degC "
          f"(time constant {thermal.time_constant_s:.0f} s)")

    # Cross-check against a published design at full scale.
    bisc = scale_to_standard(soc_by_number(1))
    print(f"\nfor comparison, {bisc.name} at 1024 channels streams "
          f"{to_mbps(bisc.sensing_throughput_bps()):.1f} Mbps within "
          f"{to_mw(bisc.budget_w()):.1f} mW of budget")


if __name__ == "__main__":
    main()
