"""Decoder-family comparison on a cursor-control task.

The paper (Section 2.3) contrasts traditional linear decoders — the Kalman
and Wiener filters — with modern DNNs.  This example pits all three
families against the same synthetic cosine-tuned cursor dataset and
reports decoding correlation alongside each decoder's computational
footprint on an implant (MAC counts through the Eq. 13 lower bound).

Run:  python examples/cursor_decoding_comparison.py
"""

import numpy as np

from repro.accel.schedule import compute_power_lower_bound
from repro.accel.tech import TECH_45NM
from repro.decoders import (
    DnnDecoder,
    KalmanFilterDecoder,
    WienerFilterDecoder,
)
from repro.dnn.layers import Dense, ReLU, Tanh
from repro.dnn.macs import fmac_dense
from repro.dnn.network import Network
from repro.experiments.report import format_table
from repro.signals import make_cursor_dataset
from repro.units import to_uw

N_CHANNELS = 64
N_TIMESTEPS = 6000
BIN_RATE_HZ = 50.0  # one decode per 20 ms bin


def implant_power_uw(mac_profiles) -> float:
    """Eq. 13 power for running a decoder once per bin."""
    power = compute_power_lower_bound(mac_profiles, 1.0 / BIN_RATE_HZ,
                                      TECH_45NM)
    return to_uw(power) if power is not None else float("inf")


def energy_per_decode_nj(mac_profiles) -> float:
    """Energy of one decode step: total MACs times the 45 nm MAC energy."""
    total = sum(p.total_macs for p in mac_profiles)
    return total * TECH_45NM.energy_per_mac_j * 1e9


def main() -> None:
    rng = np.random.default_rng(11)
    data = make_cursor_dataset(N_CHANNELS, N_TIMESTEPS, rng, noise_rms=0.3)
    split = int(0.75 * N_TIMESTEPS)
    train = slice(None, split)
    test = slice(split, None)

    rows = []

    kalman = KalmanFilterDecoder()
    kalman.fit(data.velocity[train], data.features[train])
    # Kalman per step: ~2 state-transition + gain applications; dominated
    # by the H-projection (m x k) and gain (k x m) products.
    kalman_macs = [fmac_dense(N_CHANNELS, 2), fmac_dense(2, N_CHANNELS)]
    rows.append({
        "decoder": "Kalman filter",
        "correlation": kalman.score(data.velocity[test],
                                    data.features[test]),
        "implant_power_uw": implant_power_uw(kalman_macs),
        "energy_per_decode_nj": energy_per_decode_nj(kalman_macs),
    })

    wiener = WienerFilterDecoder(n_lags=5)
    wiener.fit(data.velocity[train], data.features[train])
    wiener_macs = [fmac_dense(5 * N_CHANNELS + 1, 2)]
    rows.append({
        "decoder": "Wiener filter (5 lags)",
        "correlation": wiener.score(data.velocity[test],
                                    data.features[test]),
        "implant_power_uw": implant_power_uw(wiener_macs),
        "energy_per_decode_nj": energy_per_decode_nj(wiener_macs),
    })

    net = Network([Dense(N_CHANNELS, 128, rng=rng), ReLU(),
                   Dense(128, 64, rng=rng), ReLU(),
                   Dense(64, 2, rng=rng), Tanh()],
                  input_shape=(N_CHANNELS,), name="cursor-dnn")
    dnn = DnnDecoder(net, epochs=30, batch_size=64, learning_rate=0.1)
    scale = np.max(np.abs(data.velocity)) * 1.1
    dnn.fit(data.features[train], data.velocity[train] / scale, rng)
    predictions = dnn.decode(data.features[test]) * scale
    truth = data.velocity[test]
    corr = np.mean([np.corrcoef(predictions[:, d], truth[:, d])[0, 1]
                    for d in range(2)])
    rows.append({
        "decoder": "DNN (64-128-64-2)",
        "correlation": float(corr),
        "implant_power_uw": implant_power_uw(net.mac_profiles()),
        "energy_per_decode_nj": energy_per_decode_nj(net.mac_profiles()),
    })

    print(f"cursor decoding, {N_CHANNELS} channels, "
          f"{N_TIMESTEPS - split} held-out bins:")
    print(format_table(rows))
    print("\nAt a 50 Hz decode rate every decoder fits in one MAC unit "
          "(the Eq. 13 power floor), but the per-decode energy shows the "
          "paper's trade-off in miniature: the DNN spends an order of "
          "magnitude more arithmetic than the linear filters.")


if __name__ == "__main__":
    main()
