"""Spike-sorting walkthrough: from raw waveform to per-unit event stream.

The substrate behind the paper's channel-dropout optimization, end to
end: band-pass into the spike band, robust threshold detection, trough
alignment, PCA + k-means unit separation, per-unit firing rates, and the
event-word data rate this channel would contribute to an event-driven
implant (Section 7's pattern-detection dataflow).

Run:  python examples/spike_sorting_walkthrough.py
"""

import numpy as np

from repro.core import EventStreamConfig
from repro.decoders import SpikeDetector, sort_spikes
from repro.experiments.report import format_table
from repro.signals import (
    biphasic_spike_template,
    poisson_spike_train,
    render_spike_waveform,
    spike_band,
)

FS = 30e3
DURATION_S = 6.0

#: Ground-truth units on this channel: (name, depolarization, amplitude,
#: rate).
UNITS = (
    ("unit A (fast, large)", 1.5e-4, 9.0, 9.0),
    ("unit B (slow, small)", 4.0e-4, 5.0, 7.0),
)


def make_channel(rng: np.random.Generator):
    n = int(DURATION_S * FS)
    signal = 0.6 * rng.standard_normal(n)
    truth = {}
    for name, depol, amplitude, rate in UNITS:
        template = biphasic_spike_template(FS, depolarization_s=depol,
                                           amplitude=amplitude)
        spikes = np.flatnonzero(poisson_spike_train(
            rate, DURATION_S, FS, rng, refractory_s=5e-3))
        signal += render_spike_waveform(spikes, template, n)
        truth[name] = spikes
    return signal, truth


def main() -> None:
    rng = np.random.default_rng(31)
    raw, truth = make_channel(rng)

    # 1. Condition and detect.
    filtered = spike_band(raw, FS)
    detector = SpikeDetector(threshold_sigmas=4.5, refractory_samples=60)
    detected = detector.detect(filtered)
    total_true = sum(len(v) for v in truth.values())
    print(f"detected {len(detected)} events "
          f"({total_true} ground-truth spikes over {DURATION_S:.0f} s)")

    # 2. Sort into units.
    result = sort_spikes(filtered, detected, n_units=len(UNITS), rng=rng)
    rows = []
    for unit in range(result.n_units):
        count = int(np.sum(result.labels == unit))
        rows.append({
            "unit": unit,
            "spikes": count,
            "rate_hz": count / DURATION_S,
            "template_peak": float(
                np.abs(result.templates[unit]).max()),
        })
    print(format_table(rows))
    for name, spikes in truth.items():
        print(f"  ground truth {name}: {len(spikes)} spikes "
              f"({len(spikes) / DURATION_S:.1f} Hz)")

    # 3. What this channel costs an event-driven implant.
    config = EventStreamConfig()
    measured_rate = len(detected) / DURATION_S
    event_bps = measured_rate * config.bits_per_event
    raw_bps = 10 * FS
    print(f"\nevent stream: {measured_rate:.1f} events/s x "
          f"{config.bits_per_event} b = {event_bps:.0f} b/s per channel "
          f"vs {raw_bps:.0f} b/s raw ({raw_bps / event_bps:.0f}x "
          f"reduction)")


if __name__ == "__main__":
    main()
