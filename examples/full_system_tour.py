"""Full-system tour: implant + air interface + wearable, three dataflows.

Evaluates the complete Fig. 1 system — implanted SoC, RF link with ARQ
reliability, wearable receiver/compute/battery — under the three
dataflows (communication-centric, computation-centric, partitioned) and
shows the deployment picture the implant-only analysis cannot: how the
wearable's battery life trades against the implant's safety margin.

Run:  python examples/full_system_tour.py
"""

from repro.core import Workload, scale_to_standard, soc_by_number
from repro.experiments.report import format_table
from repro.link.ber import ber_mqam
from repro.link.protocol import delivered_energy_per_bit, effective_goodput
from repro.units import to_mbps, to_mw
from repro.wearable import BciSystem, evaluate_system
from repro.wearable.system import Dataflow


def dataflow_comparison(soc, n_channels: int) -> None:
    """The three dataflows side by side at one channel count."""
    rows = []
    for dataflow in Dataflow:
        system = BciSystem(soc=soc, workload=Workload.MLP,
                           dataflow=dataflow)
        report = evaluate_system(system, n_channels)
        rows.append({
            "dataflow": dataflow.value,
            "air_mbps": to_mbps(report.air_rate_bps),
            "implant_mw": to_mw(report.implant_power_w),
            "implant_ratio": report.implant_power_ratio,
            "wearable_mw": to_mw(report.wearable.total_power_w),
            "battery_h": report.wearable.lifetime_hours,
            "deployable": report.deployable,
        })
    print(f"--- {soc.name} at {n_channels} channels ---")
    print(format_table(rows))
    print()


def link_reliability_cost(soc) -> None:
    """What ARQ reliability does to the air interface."""
    raw_rate = soc.sensing_throughput_bps()
    energy = soc.implied_energy_per_bit_j
    print("link reliability (raw stream, 512 B payload + 4 B framing):")
    payload_bits, overhead_bits = 512 * 8, 4 * 8
    for ebn0_db in (9.0, 10.5, 12.0):
        ber = ber_mqam(10 ** (ebn0_db / 10.0), 1)
        goodput = effective_goodput(raw_rate, ber, payload_bits,
                                    overhead_bits)
        delivered = delivered_energy_per_bit(energy, ber, payload_bits,
                                             overhead_bits)
        print(f"  Eb/N0 {ebn0_db:4.1f} dB: BER {ber:.1e}, goodput "
              f"{to_mbps(goodput):6.1f} Mbps, energy/delivered bit "
              f"{delivered * 1e12:6.1f} pJ")
    print()


def main() -> None:
    soc = scale_to_standard(soc_by_number(1))
    for n in (1024, 2048):
        dataflow_comparison(soc, n)
    link_reliability_cost(soc)
    print("Takeaway: the wearable runs the whole DNN for milliwatts of "
          "battery power,\nso pushing computation *into* the implant only "
          "pays when the air interface,\nnot the wearable, is the "
          "bottleneck — the paper's communication-vs-computation\n"
          "trade-off seen from the system level.")


if __name__ == "__main__":
    main()
