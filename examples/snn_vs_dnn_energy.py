"""SNN vs DNN energy study — the paper's Section 7 extension.

Hueber et al. (cited in Related Work) argue spiking networks suit
closed-loop BCIs because synaptic operations cost a fraction of a MAC and
only fire on activity.  This example trains nothing — it compares the
*energy mechanics*: a rate-coded SNN simulated at several input activity
levels against the equivalent dense MLP's Eq. 13 MAC energy, and finds
the activity level at which the SNN advantage disappears.

Run:  python examples/snn_vs_dnn_energy.py
"""

import numpy as np

from repro.accel.tech import TECH_45NM
from repro.dnn.models import build_speech_mlp
from repro.dnn.snn import build_speech_snn
from repro.experiments.report import ascii_plot, format_table

N_CHANNELS = 128
TIMESTEPS = 16
INFERENCE_RATE_HZ = 100.0


def main() -> None:
    rng = np.random.default_rng(17)
    snn = build_speech_snn(N_CHANNELS, rng=rng)
    mlp = build_speech_mlp(N_CHANNELS)
    mac_energy = mlp.total_macs * TECH_45NM.energy_per_mac_j

    print(f"workloads at {N_CHANNELS} channels:")
    print(f"  MLP: {mlp.total_macs:,} MACs/inference -> "
          f"{mac_energy * 1e9:.1f} nJ")
    print(f"  SNN: {snn.n_synapses:,} synapses, {snn.n_neurons} neurons, "
          f"{TIMESTEPS} timesteps/inference\n")

    rows = []
    series = {"SNN measured [nJ]": [], "MLP (activity-independent)": []}
    for activity in (0.01, 0.05, 0.1, 0.2, 0.4, 0.8):
        rates = rng.uniform(0, 2 * activity, (4, N_CHANNELS)).clip(0, 1)
        result = snn.run(rates, TIMESTEPS, rng)
        sops = result.total_sops / 4  # per inference
        energy = snn.energy_per_inference_j(sops, TIMESTEPS)
        rows.append({
            "input_activity": activity,
            "sops_per_inference": sops,
            "snn_energy_nj": energy * 1e9,
            "mlp_energy_nj": mac_energy * 1e9,
            "snn_wins": energy < mac_energy,
        })
        series["SNN measured [nJ]"].append((activity, energy * 1e9))
        series["MLP (activity-independent)"].append(
            (activity, mac_energy * 1e9))
    print(format_table(rows))
    print()
    print(ascii_plot(series, x_label="input spike probability/timestep",
                     y_label="energy per inference [nJ]", height=12))

    snn_power = snn.power_w(rows[1]["sops_per_inference"], TIMESTEPS,
                            INFERENCE_RATE_HZ)
    mlp_power = mac_energy * INFERENCE_RATE_HZ
    print(f"\nat 5% activity and {INFERENCE_RATE_HZ:.0f} decisions/s: "
          f"SNN {snn_power * 1e6:.1f} uW vs MLP {mlp_power * 1e6:.1f} uW")


if __name__ == "__main__":
    main()
