"""Online cursor control: loop latency meets task performance.

Connects the two ends of the framework: the MINDFUL latency budget
(acquisition + decode + stimulation inside the brain's reaction time,
Section 2/8) and what that latency *does* to a user in the loop.  A
simulated user drives a cursor through a Kalman decoder at several
control-loop latencies; hit rate and time-to-target quantify the
application-level cost the paper says data-rate metrics miss.

Run:  python examples/online_cursor_session.py
"""

import numpy as np

from repro.core import evaluate_closed_loop, scale_to_standard, \
    soc_by_number
from repro.decoders import KalmanFilterDecoder
from repro.dnn.models import build_speech_mlp
from repro.experiments.report import format_table
from repro.simulate import CursorTask, SimulatedUser, \
    run_closed_loop_session


def main() -> None:
    rng = np.random.default_rng(41)
    task = CursorTask(dt_s=0.02)
    user = SimulatedUser(noise_rms=0.25)

    # Where does loop latency come from?  The implant's closed-loop
    # budget: acquisition + decode + stimulation (here: actuation).
    soc = scale_to_standard(soc_by_number(1))
    point = evaluate_closed_loop(soc, build_speech_mlp(1024), 1024)
    implant_latency_s = point.loop_latency_s
    implant_steps = int(round(implant_latency_s / task.dt_s))
    print(f"implant loop latency for {soc.name} @1024ch: "
          f"{implant_latency_s * 1e3:.0f} ms "
          f"(= {implant_steps} control steps of {task.dt_s * 1e3:.0f} ms)"
          f"\n")

    rows = []
    for label, steps in (("ideal (0 ms)", 0),
                         ("implant budget", implant_steps),
                         ("sluggish (300 ms)", 15),
                         ("broken (700 ms)", 35)):
        outcome = run_closed_loop_session(
            KalmanFilterDecoder(), user, task, rng, n_trials=15,
            latency_steps=steps)
        rows.append({
            "loop": label,
            "latency_ms": steps * task.dt_s * 1e3,
            "hit_rate": outcome.hit_rate,
            "time_to_target_s": outcome.mean_time_to_target_s,
            "path_efficiency": outcome.mean_path_efficiency,
        })
    print(format_table(rows))
    print("\nReal-time performance must be judged at the application "
          "level (Section 8):\nwith the same decoder, time-to-target "
          "more than doubles as loop latency grows\npast the reaction-"
          "time budget the implant analysis enforces — a cost no\n"
          "data-rate or sampling-frequency metric would reveal.")


if __name__ == "__main__":
    main()
