"""Data-reduction strategy shoot-out: dropout vs compression vs events.

Section 6.2 prefers spike-sorting-style reduction over "standard
compression techniques"; Section 7 points at event/pattern detection.
This example quantifies all three on the same synthetic recording:

* lossless delta+Rice compression of the full stream,
* channel dropout (keep the n' most active channels),
* event-driven spike streaming,

reporting the achieved data-rate reduction and what each does to the
Eq. 9 communication power of a BISC-class implant.

Run:  python examples/data_reduction_study.py
"""

import numpy as np

from repro.compress import NeuralCompressor
from repro.core import (
    EventStreamConfig,
    evaluate_event_stream,
    scale_to_standard,
    soc_by_number,
)
from repro.decoders import select_active_channels
from repro.experiments.report import format_table
from repro.ni.adc import quantize
from repro.signals import (
    biphasic_spike_template,
    poisson_spike_train,
    render_spike_waveform,
    synthesize_ecog,
)
from repro.units import to_mbps, to_mw

N_CHANNELS = 64
ACTIVE_FRACTION = 0.25
DURATION_S = 1.0
FS = 8e3


def make_recording(rng: np.random.Generator) -> np.ndarray:
    """ECoG background with spikes on a quarter of the channels."""
    data = 0.15 * synthesize_ecog(N_CHANNELS, DURATION_S, FS, rng,
                                  noise_rms=0.05)
    template = biphasic_spike_template(FS, amplitude=0.5)
    n_active = int(ACTIVE_FRACTION * N_CHANNELS)
    n_samples = data.shape[1]
    for channel in range(n_active):
        spikes = np.flatnonzero(poisson_spike_train(
            20.0, DURATION_S, FS, rng, refractory_s=3e-3))
        data[channel] += render_spike_waveform(spikes, template, n_samples)
    return data


def main() -> None:
    rng = np.random.default_rng(21)
    soc = scale_to_standard(soc_by_number(1))
    analog = make_recording(rng)
    codes = quantize(analog / (4 * np.abs(analog).max() / 3), bits=10)
    raw_rate = N_CHANNELS * 10 * FS

    rows = []

    # 1. Lossless compression of the full stream.
    codec = NeuralCompressor(sample_bits=10)
    result = codec.analyze(codes)
    rows.append({
        "strategy": "delta+Rice compression",
        "data_reduction": result.ratio,
        "lossy": False,
        "extra_compute_mw": to_mw(codec.codec_power_w(FS, N_CHANNELS)),
    })

    # 2. Channel dropout: transmit only the active quarter.
    kept = select_active_channels(analog, max(1, N_CHANNELS // 4))
    n_active_true = int(ACTIVE_FRACTION * N_CHANNELS)
    hit = len(set(kept) & set(range(n_active_true))) / n_active_true
    rows.append({
        "strategy": f"channel dropout (keep {len(kept)}, "
                    f"{hit:.0%} of truly active found)",
        "data_reduction": N_CHANNELS / len(kept),
        "lossy": True,
        "extra_compute_mw": to_mw(codec.codec_power_w(FS, N_CHANNELS)),
    })

    # 3. Event-driven spike streaming.
    config = EventStreamConfig(spike_rate_hz=20.0 * ACTIVE_FRACTION)
    point = evaluate_event_stream(soc, N_CHANNELS, config)
    rows.append({
        "strategy": "event stream (spikes only)",
        "data_reduction": point.data_reduction,
        "lossy": True,
        "extra_compute_mw": to_mw(point.detector_power_w),
    })

    print(f"raw stream: {to_mbps(raw_rate):.2f} Mbps "
          f"({N_CHANNELS} ch x 10 b x {FS / 1e3:.0f} kHz)\n")
    print(format_table(rows))

    # Project each reduction onto a 1024-channel implant's comm power.
    print(f"\ncommunication power on {soc.name} at 1024 channels "
          f"(implied Eb {soc.implied_energy_per_bit_j * 1e12:.0f} pJ/b):")
    base = soc.sensing_throughput_bps() * soc.implied_energy_per_bit_j
    print(f"  raw:          {to_mw(base):6.2f} mW")
    for row in rows:
        reduced = base / row["data_reduction"]
        print(f"  {row['strategy'][:28]:28s}: {to_mw(reduced):6.2f} mW "
              f"(+{row['extra_compute_mw']:.3f} mW compute)")


if __name__ == "__main__":
    main()
