"""Wireless-link study: theory vs simulation for the implant radio.

Reproduces the modulation-level groundwork under the paper's Section 5
analysis: analytical BER curves validated against Monte-Carlo symbol
simulation, the energy-per-bit cost of each QAM order through the
transcutaneous link budget, and what that implies for streaming power.

Run:  python examples/wireless_link_study.py
"""

import numpy as np

from repro.experiments.report import ascii_plot, format_table
from repro.link import (
    BPSK,
    MQAM,
    OOK,
    QPSK,
    LinkBudget,
    communication_power,
    measure_ber_grid,
    required_ebn0,
    shannon_ebn0_limit_db,
)
from repro.units import to_mbps, to_mw, to_pj


def ber_validation(seed: int) -> None:
    """Theory vs Monte-Carlo BER for the schemes implants use.

    The whole (scheme x Eb/N0) design grid is measured in one batched
    call; each scheme draws from its own seed-derived substream, so the
    numbers match per-scheme sweeps bit for bit.
    """
    print("BER validation (400k bits/point):")
    schemes = (OOK(), BPSK(), QPSK(), MQAM(4))
    ebn0_grid = (4.0, 7.0, 10.0)
    measured = measure_ber_grid(schemes, np.asarray(ebn0_grid),
                                400_000, seed=seed)
    rows = []
    for i, scheme in enumerate(schemes):
        for j, ebn0_db in enumerate(ebn0_grid):
            theory = scheme.theoretical_ber(10 ** (ebn0_db / 10))
            rows.append({"scheme": scheme.name, "ebn0_db": ebn0_db,
                         "theory": theory,
                         "measured": float(measured[i, j])})
    print(format_table(rows, float_format="{:.2e}"))


def qam_energy_ladder() -> None:
    """Energy per bit for each QAM order through the tissue link."""
    budget = LinkBudget()
    print("\nQAM energy ladder (BER 1e-6, 60 dB path loss, 20 dB margin):")
    rows = []
    series = {}
    for bits in range(1, 9):
        ideal = budget.transmit_energy_per_bit(bits, efficiency=1.0)
        real = budget.transmit_energy_per_bit(bits, efficiency=0.15)
        ebn0_db = 10 * np.log10(required_ebn0(1e-6, bits))
        rows.append({
            "bits_per_symbol": bits,
            "required_ebn0_db": ebn0_db,
            "shannon_floor_db": shannon_ebn0_limit_db(float(bits)),
            "ideal_pj_per_bit": to_pj(ideal),
            "at_15pct_pj_per_bit": to_pj(real),
        })
        series.setdefault("ideal Eb [pJ/b]", []).append(
            (bits, to_pj(ideal)))
    print(format_table(rows))
    print()
    print(ascii_plot(series, x_label="bits/symbol", y_label="Eb [pJ/bit]",
                     height=10))


def streaming_power() -> None:
    """Eq. 9 streaming power for the 1024-channel standard."""
    budget = LinkBudget()
    throughput = 1024 * 10 * 8e3  # n * d * f, the paper's example
    print(f"\nstreaming {to_mbps(throughput):.1f} Mbps "
          "(1024 ch x 10 b x 8 kHz):")
    for bits, eff in ((1, 0.15), (2, 0.15), (4, 0.15), (4, 1.0)):
        energy = budget.transmit_energy_per_bit(bits, efficiency=eff)
        power = communication_power(throughput, energy)
        print(f"  {2 ** bits:>3d}-point modulation at {eff:>4.0%} "
              f"efficiency: {to_mw(power):6.2f} mW")


def main() -> None:
    ber_validation(seed=42)
    qam_energy_ladder()
    streaming_power()


if __name__ == "__main__":
    main()
