"""Transitive source fingerprints of ``repro`` module closures.

A cache entry is only reusable while the *code* that produced it is
unchanged, so every cache key starts from a fingerprint of the driver's
full in-package import closure: walk the import graph from the module,
restricted to ``repro.*`` modules found under one source root, and hash
the sorted ``(module name, sha256(source))`` pairs.  Editing any module a
driver (transitively) imports changes that driver's fingerprint — and
only the fingerprints of modules that reach the edited file, which is
what makes invalidation *selective* (see
``tests/cache/test_invalidation.py``).  Parent packages are included
shallowly — their sources count, their re-export imports are not
followed — so sibling drivers sharing a package don't invalidate each
other (see :func:`import_closure`).

Imports are discovered by parsing, not importing: the walker reuses
:class:`repro.analysis.engine.ParsedFile` (the AST machinery behind
``python -m repro analyze``), so a source tree copied into a tmp
directory can be fingerprinted without being imported.  Only absolute
``repro.*`` imports are followed — the package style enforced across the
codebase; stdlib and third-party modules are environment concerns and are
keyed separately (:func:`repro.cache.keys.environment_fields`).  Only
*module-level* imports count: function-local imports are the codebase's
deliberate lazy cycle-breakers (e.g. the cache runner reaching back into
``repro.experiments``), and following them would fuse every closure into
one blob and destroy selective invalidation.

Fingerprints are memoized per ``(root, module)`` for the life of the
process: source files do not change under a running interpreter, and the
memo is what makes a warm run's key computation cheap.  Tests that edit
files in place call :func:`clear_cached_fingerprints`.
"""

from __future__ import annotations

import ast
import hashlib
from pathlib import Path

from repro.analysis.engine import AnalysisError, ParsedFile

__all__ = ["clear_cached_fingerprints", "default_root", "fingerprint",
           "import_closure", "module_imports", "module_source_path",
           "source_digest"]

#: Top-level package whose internal imports the walker follows.
PACKAGE = "repro"

#: Per-process memo: (root, module) -> fingerprint hex digest.
_FINGERPRINTS: dict[tuple[Path, str], str] = {}

#: Per-process memo: source path -> (sha256 hex, imported module names).
_PARSED: dict[Path, tuple[str, frozenset[str]]] = {}


def clear_cached_fingerprints() -> None:
    """Drop every memoized fingerprint and parsed-file record.

    Needed only when source files change under a running process (the
    tmp-tree invalidation tests do this); normal runs never require it.
    """
    _FINGERPRINTS.clear()
    _PARSED.clear()


def default_root() -> Path:
    """The source root containing the imported ``repro`` package."""
    import repro

    return Path(repro.__file__).resolve().parents[1]


def module_source_path(module: str, root: Path) -> Path | None:
    """Source file of a dotted module under ``root``, or None.

    Packages resolve to their ``__init__.py``.
    """
    rel = Path(*module.split("."))
    package_init = root / rel / "__init__.py"
    if package_init.is_file():
        return package_init
    source = root / rel.parent / f"{rel.name}.py"
    return source if source.is_file() else None


def _module_level_nodes(tree: ast.Module):
    """AST nodes outside any function body.

    Descends through module-level ``if``/``try``/class blocks (their
    imports run at import time) but not into function bodies, whose
    imports are deferred and intentionally excluded from closures.
    """
    stack: list[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            stack.append(child)


def module_imports(parsed: ParsedFile, root: Path) -> frozenset[str]:
    """In-package modules a parsed module imports at module level.

    ``from repro.pkg import name`` resolves ``name`` to
    ``repro.pkg.name`` when that submodule exists under ``root``;
    otherwise the dependency is ``repro.pkg`` itself.  Function-local
    imports are excluded (see the module docstring).
    """
    found: set[str] = set()
    for node in _module_level_nodes(parsed.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _in_package(alias.name):
                    found.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue  # relative imports are not used in-package
            if not _in_package(node.module):
                continue
            for alias in node.names:
                submodule = f"{node.module}.{alias.name}"
                if module_source_path(submodule, root) is not None:
                    found.add(submodule)
                else:
                    found.add(node.module)
    return frozenset(found)


def _in_package(module: str) -> bool:
    return module == PACKAGE or module.startswith(PACKAGE + ".")


def source_digest(path: Path) -> str:
    """sha256 hex digest of a source file's bytes."""
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError as error:
        raise AnalysisError(f"cannot read {path}: {error}") from error


def _parse(path: Path, root: Path) -> tuple[str, frozenset[str]]:
    """(source digest, imported modules) of one file, memoized."""
    resolved = path.resolve()
    cached = _PARSED.get(resolved)
    if cached is not None:
        return cached
    parsed = ParsedFile.parse(path, str(path))
    digest = hashlib.sha256(parsed.source.encode("utf-8")).hexdigest()
    record = (digest, module_imports(parsed, root))
    _PARSED[resolved] = record
    return record


def import_closure(module: str, root: Path | None = None,
                   ) -> dict[str, Path]:
    """Transitive in-package import closure of a module.

    Args:
        module: dotted module name (e.g. ``"repro.experiments.fig5"``).
        root: source root to resolve modules under; defaults to the
            imported package's own tree (:func:`default_root`).

    Returns:
        ``{module name: source path}`` for the module and everything it
        transitively imports inside the package.

    Raises:
        AnalysisError: when ``module`` has no source file under ``root``
            or a closure member fails to parse.
    """
    root = (root or default_root()).resolve()
    start = module_source_path(module, root)
    if start is None:
        raise AnalysisError(f"no source for module {module!r} under "
                            f"{root}")
    closure: dict[str, Path] = {}
    pending = [(module, start)]
    while pending:
        name, path = pending.pop()
        if name in closure:
            continue
        closure[name] = path
        _, imports = _parse(path, root)
        for dep in imports:
            dep_path = module_source_path(dep, root)
            if dep_path is not None and dep not in closure:
                pending.append((dep, dep_path))
    # Importing a submodule also executes its parent packages, so their
    # sources join the closure — but *shallowly*: a package __init__'s
    # own imports are not followed from here.  Package inits re-export
    # sibling modules (repro.experiments imports every driver); walking
    # them would couple every driver's fingerprint to every other's and
    # destroy selective invalidation.  Depending on a package
    # *explicitly* (``from repro.thermal import assess``) still walks
    # its __init__ deeply via the loop above, which is where re-exported
    # names actually matter.
    for name in list(closure):
        parts = name.split(".")
        for depth in range(1, len(parts)):
            parent = ".".join(parts[:depth])
            if _in_package(parent) and parent not in closure:
                parent_path = module_source_path(parent, root)
                if parent_path is not None:
                    closure[parent] = parent_path
    return closure


def fingerprint(module: str, root: Path | None = None) -> str:
    """sha256 fingerprint of a module's transitive source closure.

    Two trees agree on a module's fingerprint exactly when every source
    file in its import closure is byte-identical; any edit to any
    closure member changes it.
    """
    root = (root or default_root()).resolve()
    memo_key = (root, module)
    cached = _FINGERPRINTS.get(memo_key)
    if cached is not None:
        return cached
    closure = import_closure(module, root)
    digest = hashlib.sha256()
    for name in sorted(closure):
        source_sha, _ = _parse(closure[name], root)
        digest.update(f"{name}:{source_sha}\n".encode())
    result = digest.hexdigest()
    _FINGERPRINTS[memo_key] = result
    return result
