"""Cache-key construction: canonical hashing of runs and stage inputs.

A key is a sha256 over everything a result depends on:

* the transitive source fingerprint of the producing code
  (:mod:`repro.cache.fingerprint`);
* the call inputs — experiment name and seeds for whole-driver entries,
  the bound arguments (and RNG state) for stage entries;
* the environment — Python and NumPy versions
  (:func:`environment_fields`), since numerical kernels may differ
  across either;
* a key schema version (:data:`KEY_SCHEMA_VERSION`), bumped whenever
  the key layout itself changes so stale layouts can never collide.

:func:`value_digest` is the canonical structural hash used throughout:
it feeds type-tagged representations into sha256 so distinct values
never alias (``1`` vs ``1.0`` vs ``"1"``), NumPy arrays hash by dtype,
shape, and bytes, and plain objects (dataclasses, modulation schemes,
thermal grids) hash by class identity plus their instance ``__dict__``.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

__all__ = ["KEY_SCHEMA_VERSION", "driver_key", "environment_fields",
           "stage_key", "value_digest"]

#: Bump when the key construction below changes shape.
KEY_SCHEMA_VERSION = 1


def environment_fields() -> dict[str, str]:
    """Interpreter/library identity folded into every cache key."""
    import platform

    import numpy

    return {"python": platform.python_version(),
            "numpy": numpy.__version__}


def _feed(digest: "hashlib._Hash", value: Any) -> None:
    """Feed one value into the digest with unambiguous type tags."""
    import numpy as np

    if value is None:
        digest.update(b"N;")
    elif isinstance(value, bool):
        digest.update(b"b" + (b"1;" if value else b"0;"))
    elif isinstance(value, float):  # includes np.float64 (a subclass)
        digest.update(b"f" + repr(float(value)).encode() + b";")
    elif isinstance(value, int):
        digest.update(b"i" + str(int(value)).encode() + b";")
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        digest.update(b"s" + str(len(raw)).encode() + b":" + raw + b";")
    elif isinstance(value, bytes):
        digest.update(b"y" + str(len(value)).encode() + b":" + value
                      + b";")
    elif isinstance(value, np.generic):
        digest.update(b"g" + str(value.dtype).encode() + b":"
                      + value.tobytes() + b";")
    elif isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value)
        digest.update(b"a" + str(array.dtype).encode() + b":"
                      + repr(array.shape).encode() + b":")
        digest.update(array.tobytes())
        digest.update(b";")
    elif isinstance(value, (list, tuple)):
        digest.update(b"l" + str(len(value)).encode() + b"[")
        for item in value:
            _feed(digest, item)
        digest.update(b"];")
    elif isinstance(value, dict):
        digest.update(b"d" + str(len(value)).encode() + b"{")
        for key in sorted(value, key=str):
            _feed(digest, str(key))
            _feed(digest, value[key])
        digest.update(b"};")
    elif dataclasses.is_dataclass(value) or hasattr(value, "__dict__"):
        cls = type(value)
        digest.update(b"o" + f"{cls.__module__}.{cls.__qualname__}"
                      .encode() + b"{")
        _feed(digest, dict(vars(value)))
        digest.update(b"};")
    else:
        raise TypeError(f"cannot hash {type(value).__name__!r} value "
                        "into a cache key")


def value_digest(value: Any) -> str:
    """Canonical sha256 hex digest of a (possibly nested) value."""
    digest = hashlib.sha256()
    _feed(digest, value)
    return digest.hexdigest()


def driver_key(name: str, source_fingerprint: str,
               base_seed: int | None, derived_seed: int | None) -> str:
    """Cache key of one whole experiment-driver run."""
    return value_digest({
        "schema": KEY_SCHEMA_VERSION,
        "kind": "driver",
        "name": name,
        "fingerprint": source_fingerprint,
        "base_seed": base_seed,
        "derived_seed": derived_seed,
        "env": environment_fields(),
    })


def stage_key(stage: str, source_fingerprint: str,
              parts: dict[str, Any]) -> str:
    """Cache key of one memoized stage call.

    Args:
        stage: stable stage id (e.g. ``"link.measure_ber_sweep"``).
        source_fingerprint: closure fingerprint of the stage's module.
        parts: everything else the result depends on — bound arguments,
            RNG state, and any stage-specific state.
    """
    return value_digest({
        "schema": KEY_SCHEMA_VERSION,
        "kind": "stage",
        "stage": stage,
        "fingerprint": source_fingerprint,
        "parts": parts,
        "env": environment_fields(),
    })
