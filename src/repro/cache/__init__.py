"""repro.cache: content-addressed incremental recompute.

Persistent result caching for the evaluation pipeline.  A cache entry's
key is a sha256 over everything the result depends on — the transitive
source fingerprint of the producing module's in-package import closure
(:mod:`repro.cache.fingerprint`), the call inputs and seeds, and the
Python/NumPy versions (:mod:`repro.cache.keys`) — so entries invalidate
exactly when provenance changes and never otherwise.

Two granularities share one on-disk store (:mod:`repro.cache.store`,
``results/.cache`` by default, multi-process safe):

* **whole-driver** entries (:mod:`repro.cache.runner`) replay a full
  :class:`~repro.experiments.base.ExperimentResult` including its
  byte-exact CSV;
* **stage** entries (:mod:`repro.cache.stages`) memoize the expensive
  inner computations — BER sweeps, decoder training, thermal solves —
  so an edited driver still reuses the stages it did not touch.

Enabled with ``python -m repro evaluate --cache`` (and ``profile
--cache``); inspected with ``python -m repro cache {stats,clear,gc}``.
"""

from repro.cache.fingerprint import (
    clear_cached_fingerprints,
    default_root,
    fingerprint,
    import_closure,
    module_imports,
    module_source_path,
    source_digest,
)
from repro.cache.keys import (
    KEY_SCHEMA_VERSION,
    driver_key,
    environment_fields,
    stage_key,
    value_digest,
)
from repro.cache.runner import (
    CACHE_DIR_NAME,
    DriverProbe,
    probe_driver,
    result_from_payload,
    result_payload,
    run_and_save_cached,
    store_for,
)
from repro.cache.stages import (
    active_store,
    cached_stage,
    decode_result,
    encode_result,
    generator_state,
    restore_generator,
    stage_caching,
)
from repro.cache.store import STORE_SCHEMA_VERSION, CacheStore

__all__ = [
    "CACHE_DIR_NAME",
    "CacheStore",
    "DriverProbe",
    "KEY_SCHEMA_VERSION",
    "STORE_SCHEMA_VERSION",
    "active_store",
    "cached_stage",
    "clear_cached_fingerprints",
    "decode_result",
    "default_root",
    "driver_key",
    "encode_result",
    "environment_fields",
    "fingerprint",
    "generator_state",
    "import_closure",
    "module_imports",
    "module_source_path",
    "probe_driver",
    "restore_generator",
    "result_from_payload",
    "result_payload",
    "run_and_save_cached",
    "source_digest",
    "stage_caching",
    "stage_key",
    "store_for",
    "value_digest",
]
