"""Whole-driver cached execution: ``run_and_save_cached``.

This is the cache's integration point with the experiment engine.  For
each driver it computes the content address of the run — the transitive
source fingerprint of the driver module's import closure, the base and
derived seeds, and the environment (:func:`repro.cache.keys.driver_key`)
— and either replays the stored :class:`ExperimentResult` (including the
byte-exact CSV text captured on the cold run) or executes the driver
with stage caching active and publishes the outcome.

CSV byte-identity is guaranteed by construction: the cold run's CSV file
is read back and stored verbatim in the entry, and a warm hit writes
those exact bytes instead of re-rendering rows through the CSV writer.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from types import ModuleType
from typing import Any

from repro.cache.fingerprint import fingerprint
from repro.cache.keys import driver_key
from repro.cache.stages import decode_result, encode_result, stage_caching
from repro.cache.store import CacheStore
from repro.obs.events import driver_scope, emit as emit_event
from repro.obs.metrics import inc
from repro.obs.trace import span

__all__ = ["CACHE_DIR_NAME", "DriverProbe", "probe_driver",
           "result_from_payload", "result_payload",
           "run_and_save_cached", "store_for"]

#: Cache directory name, created inside the run's output directory.
CACHE_DIR_NAME = ".cache"


def store_for(output_dir: Path | str) -> CacheStore:
    """The cache store shared by runs writing into ``output_dir``."""
    return CacheStore(Path(output_dir) / CACHE_DIR_NAME)


def result_payload(result: Any, csv_text: str) -> dict[str, Any]:
    """JSON-able payload of a finished run (result + exact CSV text)."""
    return {
        "name": result.name,
        "title": result.title,
        "rows": encode_result(result.rows),
        "summary": encode_result(result.summary),
        "columns": list(result.columns) if result.columns is not None
        else None,
        "seed": result.seed,
        "derived_seed": result.derived_seed,
        "duration_s": result.duration_s,
        "csv_text": csv_text,
    }


def result_from_payload(payload: dict[str, Any]) -> Any:
    """Rebuild an :class:`ExperimentResult` from a cache payload."""
    from repro.experiments.base import ExperimentResult

    return ExperimentResult(
        name=payload["name"],
        title=payload["title"],
        rows=decode_result(payload["rows"]),
        summary=decode_result(payload["summary"]),
        columns=payload["columns"],
        seed=payload["seed"],
        derived_seed=payload["derived_seed"],
        duration_s=payload["duration_s"],
    )


@dataclass(frozen=True)
class DriverProbe:
    """Outcome of a silent cache probe for one driver.

    ``hit`` is a fast-path prediction (the entry file exists); the
    instrumented replay still validates the entry, so a corrupt file
    degrades to a normal miss.  The parallel engine uses probes to
    short-circuit hits *before a task is ever enqueued*, and threads
    the precomputed key back into :func:`run_and_save_cached` so the
    fingerprint is not recomputed.
    """

    name: str
    key: str
    fingerprint: str
    hit: bool


def probe_driver(module: ModuleType,
                 seed: int | None = None,
                 store: CacheStore | None = None,
                 output_dir: Path | str | None = None) -> DriverProbe:
    """Silently check whether a driver's run is already cached.

    Emits no spans, metrics, or events — safe to call from engine
    scope without perturbing the deterministic event timeline.  One of
    ``store`` or ``output_dir`` is required.
    """
    from repro.experiments import experiment_name
    from repro.obs.manifest import current_seed
    from repro.perf.seeds import derive_driver_seed

    if store is None:
        if output_dir is None:
            raise ValueError("probe_driver needs a store or output_dir")
        store = store_for(output_dir)
    name = experiment_name(module)
    base_seed = seed if seed is not None else current_seed()
    derived_seed = derive_driver_seed(base_seed, name)
    source_fingerprint = fingerprint(module.__name__)
    key = driver_key(name, source_fingerprint, base_seed, derived_seed)
    return DriverProbe(name=name, key=key,
                       fingerprint=source_fingerprint,
                       hit=store.entry_path(key).is_file())


def run_and_save_cached(module: ModuleType,
                        output_dir: Path | str,
                        seed: int | None = None,
                        store: CacheStore | None = None,
                        probe: DriverProbe | None = None) -> Any:
    """Run one driver through the cache and save its CSV + manifest.

    On a hit the stored result is replayed and its CSV written
    byte-for-byte; on a miss the driver runs (with stage caching active
    so its expensive inner computations memoize too) and the outcome is
    published for the next run.

    Args:
        module: experiment driver module (``run``/``render`` contract).
        output_dir: destination for CSV + manifest artifacts.
        seed: base run seed (same meaning as
            :func:`repro.experiments.run_module`).
        store: cache store; defaults to ``<output_dir>/.cache``.
        probe: an earlier :func:`probe_driver` outcome for the same
            (module, seed); reuses its key/fingerprint instead of
            recomputing the import-closure fingerprint.

    Returns:
        The :class:`ExperimentResult`, with ``cache_info`` populated.
    """
    from repro.experiments import experiment_name, run_module
    from repro.obs.manifest import current_seed
    from repro.perf.seeds import derive_driver_seed

    if store is None:
        store = store_for(output_dir)
    if probe is not None:
        name = probe.name
        source_fingerprint = probe.fingerprint
        key = probe.key
    else:
        name = experiment_name(module)
        base_seed = seed if seed is not None else current_seed()
        derived_seed = derive_driver_seed(base_seed, name)
        source_fingerprint = fingerprint(module.__name__)
        key = driver_key(name, source_fingerprint, base_seed,
                         derived_seed)

    with driver_scope(name):
        entry = store.get(key)
        if entry is not None:
            inc("cache.driver.hits_total")
            emit_event("cache", "driver.hit", key=key[:12])
            with span(f"experiment.{name}.cached", key=key[:12]):
                result = result_from_payload(entry["payload"])
            result.cache_info = {"hit": True, "key": key,
                                 "fingerprint": source_fingerprint}
            result.cached_csv_text = entry["payload"]["csv_text"]
            result.save_csv(output_dir)
            return result

        inc("cache.driver.misses_total")
        emit_event("cache", "driver.miss", key=key[:12])
        with stage_caching(store):
            result = run_module(module, seed=seed)
        result.cache_info = {"hit": False, "key": key,
                             "fingerprint": source_fingerprint}
        csv_path = result.save_csv(output_dir)
        with csv_path.open("r", newline="", encoding="utf-8") as handle:
            csv_text = handle.read()
        store.put(key, result_payload(result, csv_text), kind="driver",
                  label=name)
    return result
