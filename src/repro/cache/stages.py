"""Stage-level memoization: ``@cached_stage`` and the active-store
runtime.

Whole-driver caching (:mod:`repro.cache.runner`) reuses a run only when
*nothing* in the driver's closure changed.  Stage caching is the finer
grain: the expensive inner computations — Monte-Carlo BER sweeps
(:func:`repro.link.channel.measure_ber_sweep`), DNN decoder training
(:meth:`repro.decoders.dnn_decoder.DnnDecoder.fit`), thermal solves
(:meth:`repro.thermal.grid.ChipThermalGrid.solve`) — are keyed on their
*own* module closures and inputs, so an edited driver still reuses every
stage it did not touch.

Stage caching is inert until a store is activated
(:func:`stage_caching` / :func:`activate`); the cached runner activates
it for the duration of each cached run, including inside parallel
workers.  A decorated function called outside an active window runs
exactly as before — zero behavior change for existing callers and
tests.

RNG discipline — the part that keeps warm runs byte-identical: a stage
that consumes a :class:`numpy.random.Generator` advances it.  The
wrapper therefore folds the generator's *pre-call* bit-generator state
into the key, stores the *post-call* state with the result, and on a
hit restores the post-call state onto the caller's generator — every
downstream draw then matches the cold run exactly.
"""

from __future__ import annotations

import base64
import contextlib
import functools
import hashlib
import inspect
from typing import Any, Callable, Iterator

from repro.analysis.engine import AnalysisError
from repro.cache.fingerprint import fingerprint
from repro.cache.keys import stage_key
from repro.cache.store import CacheStore
from repro.obs.events import emit as emit_event
from repro.obs.metrics import inc
from repro.obs.trace import span

__all__ = ["activate", "active_store", "cached_stage", "deactivate",
           "decode_result", "encode_result", "generator_state",
           "restore_generator", "stage_caching"]

_ACTIVE: list[CacheStore] = []


def activate(store: CacheStore) -> None:
    """Make ``store`` the active stage cache (stack discipline)."""
    _ACTIVE.append(store)


def deactivate() -> None:
    """Pop the most recently activated stage cache."""
    if _ACTIVE:
        _ACTIVE.pop()


def active_store() -> CacheStore | None:
    """The store stage calls currently memoize into, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextlib.contextmanager
def stage_caching(store: CacheStore | None) -> Iterator[None]:
    """Activate a stage cache for the duration of a block.

    ``None`` is accepted and means "leave caching as is", so callers
    can pass an optional store through unconditionally.
    """
    if store is None:
        yield
        return
    activate(store)
    try:
        yield
    finally:
        deactivate()


# -- result (de)serialization ---------------------------------------------

def encode_result(value: Any) -> Any:
    """JSON-able encoding of a stage result.

    NumPy arrays round-trip exactly (dtype, shape, raw bytes in
    base64); NumPy scalars become their Python equivalents; tuples
    become lists.
    """
    import numpy as np

    if isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value)
        return {"__ndarray__": {
            "dtype": str(array.dtype),
            "shape": list(array.shape),
            "data": base64.b64encode(array.tobytes()).decode("ascii"),
        }}
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [encode_result(item) for item in value]
    if isinstance(value, dict):
        return {str(key): encode_result(item)
                for key, item in value.items()}
    return value


def decode_result(value: Any) -> Any:
    """Inverse of :func:`encode_result` (lists stay lists)."""
    import numpy as np

    if isinstance(value, dict):
        packed = value.get("__ndarray__")
        if isinstance(packed, dict) and set(packed) == {"dtype", "shape",
                                                        "data"}:
            raw = base64.b64decode(packed["data"])
            array = np.frombuffer(raw, dtype=packed["dtype"])
            return array.reshape(packed["shape"]).copy()
        return {key: decode_result(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_result(item) for item in value]
    return value


# -- RNG state capture ----------------------------------------------------

def generator_state(rng: Any) -> dict[str, Any]:
    """JSON-able bit-generator state of a NumPy Generator."""
    return rng.bit_generator.state


def restore_generator(rng: Any, state: dict[str, Any]) -> None:
    """Set a Generator's bit-generator state (the post-stage state
    stored with a cache entry)."""
    rng.bit_generator.state = state


# -- the decorator --------------------------------------------------------

def _module_fingerprint(module: str) -> str:
    """Source fingerprint of a stage's module, with a name-only
    fallback for modules outside the ``repro`` tree (test helpers,
    scripts): those still cache, keyed on the module name, but without
    source-based invalidation."""
    try:
        return fingerprint(module)
    except AnalysisError:
        return hashlib.sha256(module.encode("utf-8")).hexdigest()


def cached_stage(stage: str,
                 rng_arg: str | None = None) -> Callable:
    """Memoize a stage function through the active cache store.

    Args:
        stage: stable stage id recorded in keys, spans, and metrics.
        rng_arg: name of the function's Generator parameter, if it has
            one.  A ``None`` argument value is resolved through
            :func:`repro.obs.manifest.seeded_rng` (matching the
            conventional in-function default) so the state capture sees
            the generator the stage would actually use.

    The wrapped function behaves identically when no store is active.
    """
    def decorate(func: Callable) -> Callable:
        signature = inspect.signature(func)

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            store = active_store()
            if store is None:
                return func(*args, **kwargs)
            bound = signature.bind(*args, **kwargs)
            bound.apply_defaults()
            rng = None
            if rng_arg is not None:
                rng = bound.arguments.get(rng_arg)
                if rng is None:
                    from repro.obs.manifest import seeded_rng
                    rng = seeded_rng()
                    bound.arguments[rng_arg] = rng
            parts: dict[str, Any] = {
                "args": {name: value
                         for name, value in bound.arguments.items()
                         if name != rng_arg},
                "rng": generator_state(rng) if rng is not None else None,
            }
            key = stage_key(stage, _module_fingerprint(func.__module__),
                            parts)
            entry = store.get(key)
            if entry is not None:
                inc("cache.stage_hits")
                emit_event("cache", "stage.hit", stage=stage)
                payload = entry["payload"]
                with span("cache.stage_hit", stage=stage):
                    if rng is not None and payload.get("rng_state"):
                        restore_generator(rng, payload["rng_state"])
                    return decode_result(payload["result"])
            inc("cache.stage_misses")
            emit_event("cache", "stage.miss", stage=stage)
            result = func(*bound.args, **bound.kwargs)
            payload = {"result": encode_result(result)}
            if rng is not None:
                payload["rng_state"] = generator_state(rng)
            store.put(key, payload, kind="stage", label=stage)
            return result

        return wrapper
    return decorate
