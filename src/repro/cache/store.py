"""Persistent content-addressed result store under ``<output>/.cache``.

Entries are JSON files named by their sha256 key, sharded into two-hex
subdirectories (``.cache/ab/ab12....json``).  The store is safe to share
between the parallel runner's worker processes:

* **atomic publication** — entries are written to a same-directory temp
  file and ``os.replace``d into place, so readers only ever observe a
  missing file or a complete entry, never a partial one;
* **file-lock serialization** — mutating operations (put, clear, gc)
  hold an exclusive ``fcntl`` lock on ``.cache/.lock``; platforms
  without ``fcntl`` fall back to atomic-rename-only semantics, which is
  still lossless (last writer of identical content wins).

Reads are lock-free: a torn or corrupt entry (truncated JSON, garbage, a
key that does not match its filename) deserializes as a miss, increments
the ``cache.corruption`` counter, and is moved into
``.cache/quarantine/`` so a later put can heal the slot while the
damaged bytes stay inspectable.  Temp files orphaned by a killed writer
(``*.tmp-<pid>`` with a dead pid) are swept on the next put.  Every
lookup is recorded as a ``cache.get`` span and counted into the metrics
registry (``cache.hits`` / ``cache.misses`` plus per-kind counters), so
cached runs stay observable end to end.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from pathlib import Path
from typing import Any, Iterator

from repro.obs.metrics import inc
from repro.obs.trace import span

__all__ = ["CacheStore", "STORE_SCHEMA_VERSION"]

#: Entry layout version; bump on incompatible entry-shape changes.
STORE_SCHEMA_VERSION = 1

#: Seconds per day, for the gc max-age policy.
_DAY_S = 86400.0

try:  # pragma: no cover - fcntl is present on every POSIX platform
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]


class CacheStore:
    """One on-disk cache rooted at a directory (usually
    ``results/.cache``).

    Args:
        root: cache directory; created lazily on first write.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)

    # -- paths and locking ------------------------------------------------

    def entry_path(self, key: str) -> Path:
        """Where an entry with this key lives (whether or not it
        exists)."""
        return self.root / key[:2] / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are parked for inspection (outside
        the two-hex shard layout, so stats and gc never count them)."""
        return self.root / "quarantine"

    @contextlib.contextmanager
    def _lock(self) -> Iterator[None]:
        """Exclusive advisory lock over store mutations."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with (self.root / ".lock").open("a+") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # -- core API ---------------------------------------------------------

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry out of the shard tree (fall back to
        deletion if the move fails) and count the corruption."""
        target = self.quarantine_dir / path.name
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            with contextlib.suppress(OSError):
                path.unlink()
        inc("cache.corruption")
        inc(f"cache.corruption.{reason}")

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored entry for ``key``, or None on a miss.

        Corrupt entries — unparseable JSON, a non-object document, or a
        stored key that does not match the requested one (bad sha) —
        count as misses, increment ``cache.corruption``, and are
        quarantined so a later put can heal the slot.
        """
        path = self.entry_path(key)
        with span("cache.get", key=key[:12]) as current:
            corrupt_reason = None
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                entry = None
            else:
                try:
                    entry = json.loads(text)
                except ValueError:
                    entry = None
                    corrupt_reason = "unparseable"
                else:
                    if not isinstance(entry, dict):
                        entry = None
                        corrupt_reason = "not_object"
                    elif entry.get("key") != key:
                        entry = None
                        corrupt_reason = "key_mismatch"
            if corrupt_reason is not None:
                self._quarantine(path, corrupt_reason)
            hit = entry is not None
            current.set(hit=hit)
        inc("cache.hits" if hit else "cache.misses")
        if entry is not None:
            inc(f"cache.{entry.get('kind', 'unknown')}.hits")
        return entry

    def put(self, key: str, payload: dict[str, Any], kind: str,
            label: str) -> Path:
        """Atomically publish an entry; returns its path.

        Args:
            key: content-address (sha256 hex) of the entry.
            payload: JSON-able result payload.
            kind: entry class (``"driver"`` or ``"stage"``) used by
                stats and metrics.
            label: human-readable producer id (experiment or stage
                name).
        """
        entry = {
            "schema": STORE_SCHEMA_VERSION,
            "key": key,
            "kind": kind,
            "label": label,
            "created_unix_s": time.time(),
            "payload": payload,
        }
        text = json.dumps(entry, sort_keys=True)
        path = self.entry_path(key)
        with span("cache.put", key=key[:12], kind=kind):
            with self._lock():
                path.parent.mkdir(parents=True, exist_ok=True)
                self._sweep_dir(path.parent)
                tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
                tmp.write_text(text, encoding="utf-8")
                os.replace(tmp, path)
        inc("cache.puts")
        inc(f"cache.{kind}.puts")
        return path

    @staticmethod
    def _stale_tmp(path: Path) -> bool:
        """True for a ``*.tmp-<pid>`` file whose writer is dead (the
        wreckage of a killed process; a live writer's temp file is
        left alone)."""
        _, _, suffix = path.name.rpartition(".tmp-")
        if not suffix.isdigit():
            return False
        pid = int(suffix)
        if pid == os.getpid():
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except OSError:  # pragma: no cover - e.g. EPERM: pid is alive
            return False
        return False

    def _sweep_dir(self, directory: Path) -> int:
        """Remove stale temp files in one shard; returns the count."""
        removed = 0
        for tmp in directory.glob("*.tmp-*"):
            if self._stale_tmp(tmp):
                with contextlib.suppress(OSError):
                    tmp.unlink()
                    removed += 1
        if removed:
            inc("cache.corruption", removed)
            inc("cache.corruption.stale_tmp", removed)
        return removed

    def sweep_stale_tmp(self) -> int:
        """Sweep every shard for temp files left by killed writers.

        Also runs incrementally (per shard) on each put; this method
        is for explicit maintenance (chaos drills, ``cache --gc``).

        Returns:
            The number of stale temp files removed.
        """
        if not self.root.is_dir():
            return 0
        removed = 0
        with self._lock():
            for shard in sorted(self.root.glob("??")):
                if shard.is_dir():
                    removed += self._sweep_dir(shard)
        return removed

    def contains(self, key: str) -> bool:
        """True when an entry file exists for ``key`` (no validation)."""
        return self.entry_path(key).is_file()

    # -- maintenance ------------------------------------------------------

    def _entry_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(path for path in self.root.glob("??/*.json")
                      if not path.name.endswith(".lock"))

    def stats(self) -> dict[str, Any]:
        """Entry counts, byte totals, and per-kind/label breakdowns."""
        files = self._entry_files()
        by_kind: dict[str, int] = {}
        by_label: dict[str, int] = {}
        total_bytes = 0
        oldest: float | None = None
        newest: float | None = None
        for path in files:
            total_bytes += path.stat().st_size
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                by_kind["corrupt"] = by_kind.get("corrupt", 0) + 1
                continue
            kind = str(entry.get("kind", "unknown"))
            label = str(entry.get("label", "unknown"))
            by_kind[kind] = by_kind.get(kind, 0) + 1
            by_label[label] = by_label.get(label, 0) + 1
            created = entry.get("created_unix_s")
            if isinstance(created, (int, float)):
                oldest = created if oldest is None else min(oldest,
                                                            created)
                newest = created if newest is None else max(newest,
                                                            created)
        return {
            "root": str(self.root),
            "entries": len(files),
            "total_bytes": total_bytes,
            "by_kind": dict(sorted(by_kind.items())),
            "by_label": dict(sorted(by_label.items())),
            "oldest_unix_s": oldest,
            "newest_unix_s": newest,
        }

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        with self._lock():
            files = self._entry_files()
            for path in files:
                with contextlib.suppress(OSError):
                    path.unlink()
        return len(files)

    def gc(self, max_age_days: float | None = None,
           max_bytes: int | None = None) -> dict[str, int]:
        """Prune the store by age, then by size.

        Policy (documented in ``docs/PERFORMANCE.md``):

        1. entries older than ``max_age_days`` (by stored creation
           time, falling back to file mtime) are removed;
        2. if the remainder still exceeds ``max_bytes``, oldest entries
           are removed first until the store fits.

        Returns:
            ``{"removed": n, "kept": m, "kept_bytes": b}``.
        """
        removed = 0
        with self._lock():
            aged: list[tuple[float, int, Path]] = []
            now = time.time()
            for path in self._entry_files():
                size = path.stat().st_size
                created = path.stat().st_mtime
                with contextlib.suppress(OSError, ValueError):
                    entry = json.loads(path.read_text(encoding="utf-8"))
                    stamp = entry.get("created_unix_s")
                    if isinstance(stamp, (int, float)):
                        created = float(stamp)
                if (max_age_days is not None
                        and now - created > max_age_days * _DAY_S):
                    with contextlib.suppress(OSError):
                        path.unlink()
                        removed += 1
                        continue
                aged.append((created, size, path))
            aged.sort()
            kept_bytes = sum(size for _, size, _ in aged)
            if max_bytes is not None:
                while aged and kept_bytes > max_bytes:
                    _, size, path = aged.pop(0)
                    with contextlib.suppress(OSError):
                        path.unlink()
                        removed += 1
                        kept_bytes -= size
        inc("cache.gc_removed", removed)
        return {"removed": removed, "kept": len(aged),
                "kept_bytes": kept_bytes}
