"""Delta (first-difference) predictive coding for neural samples.

Neural waveforms are strongly oversampled relative to their bandwidth, so
consecutive ADC codes are highly correlated; transmitting first differences
concentrates the distribution near zero, which the Rice coder then exploits.
Per-channel state is a single previous sample — the kind of negligible
memory footprint an implant can afford.
"""

from __future__ import annotations

import numpy as np


def delta_encode(codes: np.ndarray) -> np.ndarray:
    """First differences along the time axis.

    Args:
        codes: (n_samples,) or (n_channels, n_samples) integer codes.

    Returns:
        Same-shape array; element 0 (per channel) is kept verbatim so the
        stream is self-contained.
    """
    codes = np.asarray(codes)
    if codes.ndim == 1:
        out = np.empty_like(codes, dtype=np.int64)
        out[0] = codes[0]
        out[1:] = np.diff(codes.astype(np.int64))
        return out
    if codes.ndim == 2:
        out = np.empty_like(codes, dtype=np.int64)
        out[:, 0] = codes[:, 0]
        out[:, 1:] = np.diff(codes.astype(np.int64), axis=1)
        return out
    raise ValueError("delta coding expects 1-D or 2-D integer arrays")


def delta_decode(deltas: np.ndarray) -> np.ndarray:
    """Invert :func:`delta_encode` by cumulative summation."""
    deltas = np.asarray(deltas, dtype=np.int64)
    if deltas.ndim == 1:
        return np.cumsum(deltas)
    if deltas.ndim == 2:
        return np.cumsum(deltas, axis=1)
    raise ValueError("delta coding expects 1-D or 2-D integer arrays")
