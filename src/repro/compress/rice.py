"""Rice/Golomb entropy coding of signed integer residuals.

Rice coding is the standard hardware-friendly entropy coder: a residual is
zigzag-mapped to an unsigned value u, split as q = u >> k and r = u & (2^k
- 1), and emitted as q '1' bits, a '0' terminator, and k remainder bits.
Encoding and decoding need no tables — only shifts and counters — which is
why data-compressive neural recording ICs use it.

Two implementations live here:

* the **packed codec** (:func:`rice_encode_packed` /
  :func:`rice_decode_packed`) — the production path.  It materializes the
  stream as a packed ``uint8`` array via fully vectorized NumPy bit
  construction, and is what :class:`repro.compress.NeuralCompressor` uses.
* the **string codec** (:func:`rice_encode` / :func:`rice_decode`) — the
  original transparent implementation, kept as the *test oracle*: the
  packed codec must produce bit-for-bit identical streams
  (``tests/compress/test_rice_packed.py`` proves it, and
  ``benchmarks/test_bench_perf.py`` records the speedup).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Above this element count, `optimal_rice_parameter` folds the per-k cost
#: sums chunk-wise instead of broadcasting an (n, max_k+1) matrix.
_BROADCAST_LIMIT = 1 << 16


def zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed integers to unsigned: 0,-1,1,-2,2 -> 0,1,2,3,4."""
    values = np.asarray(values, dtype=np.int64)
    return np.where(values >= 0, 2 * values, -2 * values - 1).astype(
        np.uint64)


def unzigzag(values: np.ndarray) -> np.ndarray:
    """Invert :func:`zigzag` (branch-free: ``(u >> 1) ^ -(u & 1)``)."""
    values = np.asarray(values, dtype=np.uint64).astype(np.int64)
    return (values >> 1) ^ -(values & 1)


def _rice_costs(unsigned: np.ndarray, max_k: int) -> np.ndarray:
    """Exact encoded length in bits for every k in [0, max_k].

    Integer arithmetic throughout (`u >> k`, like
    :func:`encoded_length_bits`) — float64 division would lose exactness
    for residuals beyond 2^53.
    """
    ks = np.arange(max_k + 1, dtype=np.uint64)
    if unsigned.size <= _BROADCAST_LIMIT:
        quotient_bits = (unsigned[None, :] >> ks[:, None]).sum(
            axis=1, dtype=np.uint64)
    else:
        quotient_bits = np.zeros(max_k + 1, dtype=np.uint64)
        for start in range(0, unsigned.size, _BROADCAST_LIMIT):
            chunk = unsigned[start:start + _BROADCAST_LIMIT]
            quotient_bits += (chunk[None, :] >> ks[:, None]).sum(
                axis=1, dtype=np.uint64)
    return quotient_bits + np.uint64(unsigned.size) * (1 + ks)


def optimal_rice_parameter(values: np.ndarray, max_k: int = 24) -> int:
    """Smallest-cost Rice parameter k for a residual block.

    Evaluates the exact encoded length for all candidate k in one array
    pass; ties break toward the smaller k (``argmin`` keeps the first
    minimum, matching the historical scalar scan).
    """
    unsigned = zigzag(values).ravel()
    if unsigned.size == 0:
        return 0
    return int(np.argmin(_rice_costs(unsigned, max_k)))


def optimal_rice_parameters(blocks: np.ndarray,
                            max_k: int = 24,
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Per-channel optimal k and encoded size for a 2-D residual block.

    Args:
        blocks: (channels, samples) signed residuals.
        max_k: largest candidate parameter.

    Returns:
        ``(k, bits)`` — per-channel optimal parameter (int64) and the
        exact encoded length at that parameter (int64), matching what
        :func:`optimal_rice_parameter` + :func:`encoded_length_bits` give
        channel by channel.
    """
    blocks = np.atleast_2d(np.asarray(blocks))
    if blocks.ndim != 2:
        raise ValueError("expected a (channels, samples) block")
    unsigned = zigzag(blocks)
    n_samples = blocks.shape[1]
    ks = np.arange(max_k + 1, dtype=np.uint64)
    # (channels, max_k+1, samples) >> folds to (channels, max_k+1).
    quotient_bits = (unsigned[:, None, :] >> ks[None, :, None]).sum(
        axis=2, dtype=np.uint64)
    costs = quotient_bits + np.uint64(n_samples) * (1 + ks)[None, :]
    best_k = np.argmin(costs, axis=1)
    best_bits = costs[np.arange(len(costs)), best_k].astype(np.int64)
    return best_k.astype(np.int64), best_bits


def rice_encode(values: np.ndarray, k: int) -> str:
    """Encode signed integers to a bit string with Rice parameter k.

    This is the reference implementation (and the parity oracle for the
    packed codec); hot paths use :func:`rice_encode_packed`.

    Raises:
        ValueError: for negative k.
    """
    if k < 0:
        raise ValueError("Rice parameter must be non-negative")
    pieces = []
    for u in zigzag(values):
        u = int(u)
        quotient, remainder = u >> k, u & ((1 << k) - 1)
        pieces.append("1" * quotient + "0" + format(remainder, f"0{k}b")
                      if k else "1" * quotient + "0")
    return "".join(pieces)


def rice_decode(bits: str, k: int, count: int) -> np.ndarray:
    """Decode ``count`` values from a Rice bit string (reference path).

    Raises:
        ValueError: on truncated input.
    """
    if k < 0:
        raise ValueError("Rice parameter must be non-negative")
    values = np.empty(count, dtype=np.uint64)
    pos = 0
    for i in range(count):
        quotient = 0
        while pos < len(bits) and bits[pos] == "1":
            quotient += 1
            pos += 1
        if pos >= len(bits):
            raise ValueError("truncated Rice stream (missing terminator)")
        pos += 1  # the '0' terminator
        remainder = 0
        if k:
            chunk = bits[pos:pos + k]
            if len(chunk) < k:
                raise ValueError("truncated Rice stream (missing remainder)")
            remainder = int(chunk, 2)
            pos += k
        values[i] = (quotient << k) | remainder
    return unzigzag(values)


#: Codewords per decoder checkpoint (see :class:`PackedBits.checkpoints`).
CHECKPOINT_INTERVAL = 64


def _zero_count_luts() -> tuple[np.ndarray, np.ndarray]:
    """(zeros per byte value, zeros before each bit offset of each byte
    value) — lookup tables behind the byte-granularity zero-rank index
    used by the lockstep decoder."""
    unpacked = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None],
                             axis=1)  # (value, bit offset), MSB first
    is_zero = unpacked == 0
    per_byte = is_zero.sum(axis=1).astype(np.int64)
    before = np.zeros((256, 8), dtype=np.int64)
    before[:, 1:] = np.cumsum(is_zero, axis=1)[:, :-1]
    return per_byte, before.ravel()


_ZEROS_PER_BYTE, _ZEROS_BEFORE_BIT = _zero_count_luts()


@dataclass(frozen=True)
class PackedBits:
    """A bit stream packed MSB-first into a ``uint8`` payload.

    Attributes:
        payload: ``np.packbits`` output (final byte zero-padded).
        n_bits: number of valid bits in the payload.
        checkpoints: optional seek index — the bit offset of every
            :data:`CHECKPOINT_INTERVAL`-th codeword's start, recorded by
            :func:`rice_encode_packed` (where the offsets fall out of the
            encoding pass for free).  Metadata only: the payload is the
            complete stream, byte-identical with or without it.  When
            present, :func:`rice_decode_packed` decodes the checkpointed
            segments in lockstep instead of walking one serial codeword
            chain.
    """

    payload: np.ndarray
    n_bits: int
    checkpoints: np.ndarray | None = None

    def __len__(self) -> int:
        return self.n_bits

    def to_string(self) -> str:
        """The stream as a '0'/'1' string (parity tests / debugging)."""
        if self.n_bits == 0:
            return ""
        bits = np.unpackbits(self.payload)[:self.n_bits]
        return (bits + np.uint8(ord("0"))).tobytes().decode("ascii")


def pack_bitstring(bits: str) -> PackedBits:
    """Pack a '0'/'1' string into a :class:`PackedBits` stream."""
    if not bits:
        return PackedBits(np.empty(0, dtype=np.uint8), 0)
    array = np.frombuffer(bits.encode("ascii"), dtype=np.uint8) - ord("0")
    if array.max(initial=0) > 1:
        raise ValueError("bit strings may contain only '0' and '1'")
    return PackedBits(np.packbits(array), len(bits))


def rice_encode_packed(values: np.ndarray, k: int) -> PackedBits:
    """Vectorized Rice encoder producing a packed ``uint8`` bit stream.

    Bit-for-bit identical to :func:`rice_encode` (the string oracle), but
    built with array operations: codeword offsets from a cumulative sum of
    lengths, then every bit is written by a vectorized scatter — the
    stream defaults to '1' (unary runs), terminators force a '0', and the
    k remainder bit-planes are assigned in k passes.

    Raises:
        ValueError: for negative k.
    """
    if k < 0:
        raise ValueError("Rice parameter must be non-negative")
    unsigned = zigzag(values).ravel()
    count = unsigned.size
    if count == 0:
        return PackedBits(np.empty(0, dtype=np.uint8), 0)
    quotients = (unsigned >> np.uint64(k)).astype(np.int64)
    lengths = quotients + (1 + k)
    total = int(lengths.sum())
    starts = np.empty(count, dtype=np.int64)
    starts[0] = 0
    np.cumsum(lengths[:-1], out=starts[1:])

    bits = np.ones(total, dtype=np.uint8)
    terminators = starts + quotients
    bits[terminators] = 0
    if k:
        remainders = (unsigned
                      & np.uint64((1 << k) - 1)).astype(np.int64)
        for j in range(k):  # MSB first
            bits[terminators + 1 + j] = (remainders >> (k - 1 - j)) & 1
    return PackedBits(np.packbits(bits), total,
                      checkpoints=starts[::CHECKPOINT_INTERVAL].copy())


def _chain_terminators(zeros: np.ndarray, k: int,
                       count: int) -> np.ndarray:
    """Terminator positions by walking the codeword chain serially.

    The fallback parse for streams without a checkpoint index: terminator
    positions are found by chaining a vectorized successor table over the
    zero-bit positions ("first zero at least k+1 bits further on").  The
    chain itself is inherently sequential — each codeword's start depends
    on the previous one's end.
    """
    # successor[m]: index (into `zeros`) of the first zero bit at least
    # 1 + k positions beyond zeros[m] — i.e. the next codeword's
    # terminator candidate once this codeword's remainder is skipped.
    successor = np.searchsorted(zeros, zeros + (1 + k))
    zero_list = zeros.tolist()
    successor_list = successor.tolist()
    chain: list[int] = []
    append = chain.append
    m = 0
    n_zeros = len(zero_list)
    for _ in range(count):
        if m >= n_zeros:
            raise ValueError("truncated Rice stream (missing terminator)")
        append(zero_list[m])
        m = successor_list[m]
    return np.array(chain, dtype=np.int64)


def _lockstep_terminators(zeros: np.ndarray, payload: np.ndarray,
                          n_bits: int, checkpoints: np.ndarray, k: int,
                          count: int) -> np.ndarray:
    """Terminator positions via the encoder's checkpoint index.

    Each checkpoint starts an independent segment of
    :data:`CHECKPOINT_INTERVAL` codewords, so all segments advance *in
    lockstep*: step ``j`` resolves codeword ``j`` of every segment at
    once — a byte-granularity rank index (zeros strictly before each bit
    position, from cumulative per-byte zero counts plus an in-byte LUT)
    turns "first zero at or after each segment's cursor" into a few
    array gathers.  The serial dependency shrinks from ``count``
    Python-level steps to :data:`CHECKPOINT_INTERVAL`.
    """
    interval = CHECKPOINT_INTERVAL
    lanes = checkpoints.size
    z = zeros.size
    padded = np.concatenate([payload, np.zeros(1, dtype=np.uint8)])
    byte_rank = np.zeros(padded.size, dtype=np.int64)
    np.cumsum(_ZEROS_PER_BYTE[payload], out=byte_rank[1:])
    cursors = checkpoints.astype(np.int64).copy()
    term = np.empty((interval, lanes), dtype=np.int64)
    for j in range(interval):
        # Lanes still inside the requested range at this step; later
        # lanes hold later codewords, so the active set is a prefix —
        # and lane order is stream order, so if any active lane has run
        # off the end of the stream, the last one has.
        active = min(lanes, (count - j + interval - 1) // interval)
        c = np.minimum(cursors, n_bits)
        byte = c >> 3
        found = (byte_rank[byte]
                 + _ZEROS_BEFORE_BIT[(padded[byte].astype(np.int64) << 3)
                                     + (c & 7)])
        if found[active - 1] >= z:
            raise ValueError(
                "truncated Rice stream (missing terminator)")
        positions = zeros[np.minimum(found, z - 1)]
        term[j] = positions
        cursors = positions + (1 + k)
    terminators = term.T.ravel()[:count]
    if np.any(np.diff(terminators) <= 0):
        raise ValueError("corrupt Rice checkpoint index")
    return terminators


def rice_decode_packed(stream: PackedBits, k: int,
                       count: int) -> np.ndarray:
    """Decode ``count`` values from a packed Rice stream.

    The interleaved layout (unary / terminator / remainder per codeword)
    is parsed without per-bit Python work.  Streams carrying the
    encoder's checkpoint index decode segment-parallel
    (:func:`_lockstep_terminators`); bare streams (e.g. from
    :func:`pack_bitstring`) fall back to the serial codeword chain
    (:func:`_chain_terminators`).  Quotients and remainder bit-planes
    then fall out as array gathers either way.

    Raises:
        ValueError: on negative k, a truncated stream, or a checkpoint
            index inconsistent with the payload.
    """
    if k < 0:
        raise ValueError("Rice parameter must be non-negative")
    if count == 0:
        return np.empty(0, dtype=np.int64)
    payload = np.asarray(stream.payload, dtype=np.uint8)
    bits = np.unpackbits(payload)[:stream.n_bits]
    zeros = np.flatnonzero(bits == 0)
    if zeros.size == 0:
        raise ValueError("truncated Rice stream (missing terminator)")
    checkpoints = stream.checkpoints
    lanes_needed = (count + CHECKPOINT_INTERVAL - 1) // CHECKPOINT_INTERVAL
    if (checkpoints is not None and lanes_needed > 1
            and checkpoints.size >= lanes_needed):
        terminators = _lockstep_terminators(
            zeros, payload, stream.n_bits,
            np.asarray(checkpoints)[:lanes_needed], k, count)
    else:
        terminators = _chain_terminators(zeros, k, count)
    if terminators[-1] + 1 + k > bits.size:
        raise ValueError("truncated Rice stream (missing remainder)")

    starts = np.empty(count, dtype=np.int64)
    starts[0] = 0
    starts[1:] = terminators[:-1] + (1 + k)
    quotients = terminators - starts
    if np.any(quotients < 0):
        raise ValueError("corrupt Rice checkpoint index")
    unsigned = quotients.astype(np.uint64) << np.uint64(k)
    if 0 < k <= 24:
        # Remainders gathered as 4-byte windows straddling each field:
        # with k <= 24 and a bit offset of at most 7, offset + k <= 31
        # always fits a uint32 window.
        padded = np.concatenate([payload,
                                 np.zeros(4, dtype=np.uint8)])
        rem_start = terminators + 1
        byte0 = rem_start >> 3
        offset = (rem_start & 7).astype(np.uint32)
        window = ((padded[byte0].astype(np.uint32) << np.uint32(24))
                  | (padded[byte0 + 1].astype(np.uint32) << np.uint32(16))
                  | (padded[byte0 + 2].astype(np.uint32) << np.uint32(8))
                  | padded[byte0 + 3].astype(np.uint32))
        remainders = ((window >> (np.uint32(32 - k) - offset))
                      & np.uint32((1 << k) - 1))
        unsigned |= remainders.astype(np.uint64)
    elif k:
        remainders = np.zeros(count, dtype=np.int64)
        for j in range(k):  # MSB first
            remainders = (remainders << 1) | bits[terminators + 1 + j]
        unsigned |= remainders.astype(np.uint64)
    return unzigzag(unsigned)


def encoded_length_bits(values: np.ndarray, k: int) -> int:
    """Exact encoded size in bits without materializing the stream."""
    if k < 0:
        raise ValueError("Rice parameter must be non-negative")
    unsigned = zigzag(values)
    quotients = (unsigned >> np.uint64(k)).astype(np.int64)
    return int(np.sum(quotients) + unsigned.size * (1 + k))


#: Parity pairs checked by the ``parity-oracle`` lint rule and the parity
#: tests: the packed bitstream codec must agree with the string codec,
#: which serves as the readable reference implementation.
PARITY_ORACLES = {
    "rice_encode_packed": "rice_encode",
    "rice_decode_packed": "rice_decode",
}
