"""Rice/Golomb entropy coding of signed integer residuals.

Rice coding is the standard hardware-friendly entropy coder: a residual is
zigzag-mapped to an unsigned value u, split as q = u >> k and r = u & (2^k
- 1), and emitted as q '1' bits, a '0' terminator, and k remainder bits.
Encoding and decoding need no tables — only shifts and counters — which is
why data-compressive neural recording ICs use it.
"""

from __future__ import annotations

import numpy as np


def zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed integers to unsigned: 0,-1,1,-2,2 -> 0,1,2,3,4."""
    values = np.asarray(values, dtype=np.int64)
    return np.where(values >= 0, 2 * values, -2 * values - 1).astype(
        np.uint64)


def unzigzag(values: np.ndarray) -> np.ndarray:
    """Invert :func:`zigzag`."""
    values = np.asarray(values, dtype=np.uint64).astype(np.int64)
    return np.where(values % 2 == 0, values // 2, -(values + 1) // 2)


def optimal_rice_parameter(values: np.ndarray, max_k: int = 24) -> int:
    """Smallest-cost Rice parameter k for a residual block.

    Uses the exact encoded length for each candidate k (blocks are small,
    so the scan is cheap and always optimal).
    """
    unsigned = zigzag(values).astype(np.float64)
    best_k, best_bits = 0, float("inf")
    for k in range(max_k + 1):
        bits = float(np.sum(np.floor(unsigned / (1 << k))) +
                     unsigned.size * (1 + k))
        if bits < best_bits:
            best_k, best_bits = k, bits
    return best_k


def rice_encode(values: np.ndarray, k: int) -> str:
    """Encode signed integers to a bit string with Rice parameter k.

    The string representation keeps the implementation transparent and
    testable; :func:`encoded_length_bits` gives the cost without building
    the string.

    Raises:
        ValueError: for negative k.
    """
    if k < 0:
        raise ValueError("Rice parameter must be non-negative")
    pieces = []
    for u in zigzag(values):
        u = int(u)
        quotient, remainder = u >> k, u & ((1 << k) - 1)
        pieces.append("1" * quotient + "0" + format(remainder, f"0{k}b")
                      if k else "1" * quotient + "0")
    return "".join(pieces)


def rice_decode(bits: str, k: int, count: int) -> np.ndarray:
    """Decode ``count`` values from a Rice bit string.

    Raises:
        ValueError: on truncated input.
    """
    if k < 0:
        raise ValueError("Rice parameter must be non-negative")
    values = np.empty(count, dtype=np.uint64)
    pos = 0
    for i in range(count):
        quotient = 0
        while pos < len(bits) and bits[pos] == "1":
            quotient += 1
            pos += 1
        if pos >= len(bits):
            raise ValueError("truncated Rice stream (missing terminator)")
        pos += 1  # the '0' terminator
        remainder = 0
        if k:
            chunk = bits[pos:pos + k]
            if len(chunk) < k:
                raise ValueError("truncated Rice stream (missing remainder)")
            remainder = int(chunk, 2)
            pos += k
        values[i] = (quotient << k) | remainder
    return unzigzag(values)


def encoded_length_bits(values: np.ndarray, k: int) -> int:
    """Exact encoded size in bits without materializing the stream."""
    if k < 0:
        raise ValueError("Rice parameter must be non-negative")
    unsigned = zigzag(values)
    quotients = (unsigned >> np.uint64(k)).astype(np.int64)
    return int(np.sum(quotients) + unsigned.size * (1 + k))
