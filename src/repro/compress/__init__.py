"""Neural-data compression substrate.

Section 6.2 argues that spike-sorting-style data reduction suits implants
better than "standard compression techniques", which need memory and extra
computational steps.  To make that comparison quantitative, this package
implements the standard techniques: delta predictive coding and Rice/Golomb
entropy coding (the classic low-memory lossless scheme for neural data, as
used by data-compressive recording ICs such as Jang et al., Table 1 #10),
plus the bit-accounting needed to fold compression into the Eq. 9
communication power.
"""

from repro.compress.delta import delta_encode, delta_decode
from repro.compress.rice import (
    PackedBits,
    pack_bitstring,
    rice_encode,
    rice_decode,
    rice_encode_packed,
    rice_decode_packed,
    optimal_rice_parameter,
    optimal_rice_parameters,
)
from repro.compress.pipeline import (
    CompressionResult,
    NeuralCompressor,
    compression_ratio,
)

__all__ = [
    "delta_encode",
    "delta_decode",
    "PackedBits",
    "pack_bitstring",
    "rice_encode",
    "rice_decode",
    "rice_encode_packed",
    "rice_decode_packed",
    "optimal_rice_parameter",
    "optimal_rice_parameters",
    "CompressionResult",
    "NeuralCompressor",
    "compression_ratio",
]
