"""Delta + Rice compression pipeline with power accounting.

Chains the predictive and entropy stages per channel and reports the
compression ratio, which scales the Eq. 9 communication power:

    P_comm_compressed = T_sensing / ratio * Eb + P_codec

The per-sample codec cost is charged as a configurable number of
ALU-op-equivalents at MAC energy — the "additional computational steps"
Section 6.2 holds against standard compression.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.tech import TECH_45NM, TechnologyNode
from repro.compress.delta import delta_decode, delta_encode
from repro.compress.rice import (
    PackedBits,
    optimal_rice_parameter,
    optimal_rice_parameters,
    pack_bitstring,
    rice_decode_packed,
    rice_encode_packed,
)
from repro.obs.metrics import inc, observe
from repro.obs.trace import span


def compression_ratio(raw_bits: int, compressed_bits: int) -> float:
    """Raw over compressed size (> 1 means the codec helped)."""
    if raw_bits <= 0 or compressed_bits <= 0:
        raise ValueError("bit counts must be positive")
    return raw_bits / compressed_bits


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of compressing one multi-channel block.

    Attributes:
        raw_bits: size of the uncompressed block (d bits per sample).
        compressed_bits: total encoded size including per-channel k
            parameters.
        rice_parameters: chosen k per channel.
        ratio: raw / compressed.
    """

    raw_bits: int
    compressed_bits: int
    rice_parameters: tuple[int, ...]
    ratio: float


class NeuralCompressor:
    """Per-channel delta + Rice codec for digitized neural blocks.

    Args:
        sample_bits: ADC bitwidth d of the raw samples.
        ops_per_sample: ALU operations charged per encoded sample when
            estimating codec power (shift/compare/accumulate steps).
    """

    #: Bits spent transmitting each channel's Rice parameter.
    K_HEADER_BITS = 5

    def __init__(self, sample_bits: int = 10,
                 ops_per_sample: float = 4.0) -> None:
        if sample_bits < 1:
            raise ValueError("sample_bits must be >= 1")
        if ops_per_sample < 0:
            raise ValueError("ops_per_sample must be non-negative")
        self.sample_bits = sample_bits
        self.ops_per_sample = ops_per_sample

    def analyze(self, codes: np.ndarray) -> CompressionResult:
        """Measure compressed size of a (channels, samples) block.

        All channels are analyzed in one vectorized pass: the optimal
        Rice parameter and exact encoded size are computed for every
        channel x candidate-k pair at once (see
        :func:`repro.compress.rice.optimal_rice_parameters`).
        """
        codes = np.atleast_2d(np.asarray(codes))
        raw_bits = codes.size * self.sample_bits
        with span("compress.analyze", channels=len(codes),
                  samples=codes.shape[-1]):
            deltas = delta_encode(codes)
            ks, bits = optimal_rice_parameters(deltas)
            parameters = ks.tolist()
            total = int(bits.sum()) + self.K_HEADER_BITS * len(codes)
        ratio = compression_ratio(raw_bits, total)
        inc("compress.blocks_analyzed")
        inc("compress.raw_bits", raw_bits)
        inc("compress.compressed_bits", total)
        observe("compress.ratio", ratio)
        return CompressionResult(
            raw_bits=raw_bits, compressed_bits=total,
            rice_parameters=tuple(parameters),
            ratio=ratio)

    def encode_channel(self, channel: np.ndarray,
                       ) -> tuple[PackedBits, int]:
        """Encode one channel; returns (packed bit stream, rice
        parameter)."""
        deltas = delta_encode(channel)
        k = optimal_rice_parameter(deltas)
        return rice_encode_packed(deltas, k), k

    def decode_channel(self, bits: PackedBits | str, k: int,
                       n_samples: int) -> np.ndarray:
        """Lossless inverse of :meth:`encode_channel`.

        Accepts either a :class:`~repro.compress.rice.PackedBits` stream
        (the production format) or a legacy '0'/'1' string.
        """
        if isinstance(bits, str):
            bits = pack_bitstring(bits)
        deltas = rice_decode_packed(bits, k, n_samples)
        return delta_decode(deltas)

    def codec_power_w(self, sample_rate_hz: float, n_channels: int,
                      tech: TechnologyNode = TECH_45NM) -> float:
        """Power of running the codec at the NI sampling rate [W].

        Each sample costs ``ops_per_sample`` ALU operations charged at the
        technology's per-MAC energy — a deliberate overestimate (an adder
        is cheaper than a MAC) that keeps the Section 6.2 comparison
        honest.
        """
        if sample_rate_hz <= 0 or n_channels <= 0:
            raise ValueError("rate and channel count must be positive")
        ops_per_second = self.ops_per_sample * sample_rate_hz * n_channels
        return ops_per_second * tech.energy_per_mac_j
