"""Spiking neural network (SNN) substrate — the paper's stated extension.

Section 7 ("In the future, we plan to ... explore additional computational
models, such as SNNs") and the Hueber et al. benchmark motivate an
event-driven alternative to MAC-based DNNs: leaky integrate-and-fire (LIF)
neurons whose synapses only do work when a presynaptic spike arrives, so
the energy unit is the *synaptic operation* (SOP — an add, no multiply)
and total cost scales with activity instead of model size.

The module provides a functional LIF simulation (rate-coded inputs,
multi-layer), exact SOP counting from the simulation, an analytical
expected-SOP model, and a power estimate comparable to Eq. 13.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.tech import TECH_45NM, TechnologyNode

#: Energy of one synaptic operation relative to a full MAC: an accumulate
#: without the multiplier (Hueber et al. charge SNN ops at a fraction of a
#: MAC; 0.3 is a conservative middle of their range).
SOP_ENERGY_FRACTION = 0.3

#: Energy of one neuron membrane update relative to a full MAC (leak
#: multiply + compare + conditional reset).
NEURON_UPDATE_FRACTION = 1.0


class LIFLayer:
    """A fully connected layer of leaky integrate-and-fire neurons.

    Membrane dynamics per timestep:
        v <- leak * v + W @ spikes_in
        spike out where v >= threshold, then reset those v to 0.

    Args:
        in_features / out_features: connectivity shape.
        leak: membrane retention per step, in [0, 1).
        threshold: firing threshold.
        rng: weight initialization (positive-skewed to keep activity
            flowing); omit for shape-only analysis.
    """

    def __init__(self, in_features: int, out_features: int,
                 leak: float = 0.9, threshold: float = 1.0,
                 rng: np.random.Generator | None = None) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer dimensions must be positive")
        if not 0.0 <= leak < 1.0:
            raise ValueError("leak must lie in [0, 1)")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.leak = leak
        self.threshold = threshold
        self.weight: np.ndarray | None = None
        if rng is not None:
            scale = 2.0 * threshold / in_features
            self.weight = scale * np.abs(
                rng.standard_normal((out_features, in_features)))
        self._membrane: np.ndarray | None = None

    @property
    def materialized(self) -> bool:
        """True once the synapse matrix exists."""
        return self.weight is not None

    def reset_state(self, batch: int = 1) -> None:
        """Zero the membrane potentials."""
        self._membrane = np.zeros((batch, self.out_features))

    def step(self, spikes_in: np.ndarray) -> tuple[np.ndarray, int]:
        """Advance one timestep.

        Args:
            spikes_in: (batch, in_features) binary spikes.

        Returns:
            (binary output spikes, synaptic operations performed).
        """
        if not self.materialized:
            raise RuntimeError("LIF layer is shape-only; build with an rng")
        spikes_in = np.asarray(spikes_in)
        if self._membrane is None or \
                self._membrane.shape[0] != spikes_in.shape[0]:
            self.reset_state(spikes_in.shape[0])
        # SOPs: each input spike touches every postsynaptic neuron.
        sops = int(spikes_in.sum()) * self.out_features
        self._membrane = (self.leak * self._membrane
                          + spikes_in @ self.weight.T)
        fired = self._membrane >= self.threshold
        self._membrane = np.where(fired, 0.0, self._membrane)
        return fired.astype(np.int8), sops


@dataclass(frozen=True)
class SnnRunResult:
    """Outcome of simulating a spiking network.

    Attributes:
        output_rates: (batch, out_features) firing rates in [0, 1].
        total_sops: synaptic operations across all layers and steps.
        total_neuron_updates: membrane updates across all layers/steps.
        timesteps: simulation length.
    """

    output_rates: np.ndarray
    total_sops: int
    total_neuron_updates: int
    timesteps: int


class SpikingNetwork:
    """A feed-forward stack of LIF layers with rate-coded inputs."""

    def __init__(self, layers: list[LIFLayer], name: str = "snn") -> None:
        if not layers:
            raise ValueError("a spiking network needs at least one layer")
        for upstream, downstream in zip(layers, layers[1:]):
            if upstream.out_features != downstream.in_features:
                raise ValueError(
                    f"layer mismatch: {upstream.out_features} -> "
                    f"{downstream.in_features}")
        self.layers = list(layers)
        self.name = name

    @property
    def in_features(self) -> int:
        """Input width."""
        return self.layers[0].in_features

    @property
    def out_features(self) -> int:
        """Output width."""
        return self.layers[-1].out_features

    @property
    def n_synapses(self) -> int:
        """Total synapse count (the SNN 'model size')."""
        return sum(layer.in_features * layer.out_features
                   for layer in self.layers)

    @property
    def n_neurons(self) -> int:
        """Total neuron count."""
        return sum(layer.out_features for layer in self.layers)

    def run(self, rates: np.ndarray, timesteps: int,
            rng: np.random.Generator) -> SnnRunResult:
        """Simulate rate-coded inference.

        Args:
            rates: (batch, in_features) input intensities in [0, 1],
                Bernoulli-sampled into spikes each step.
            timesteps: steps per inference (the rate-code window).
            rng: spike-sampling generator.
        """
        rates = np.asarray(rates, dtype=float)
        if rates.ndim != 2 or rates.shape[1] != self.in_features:
            raise ValueError(
                f"expected (batch, {self.in_features}) rates")
        if np.any((rates < 0) | (rates > 1)):
            raise ValueError("input rates must lie in [0, 1]")
        if timesteps <= 0:
            raise ValueError("timesteps must be positive")
        batch = rates.shape[0]
        for layer in self.layers:
            layer.reset_state(batch)
        out_accum = np.zeros((batch, self.out_features))
        total_sops = 0
        for _ in range(timesteps):
            spikes = (rng.random(rates.shape) < rates).astype(np.int8)
            for layer in self.layers:
                spikes, sops = layer.step(spikes)
                total_sops += sops
            out_accum += spikes
        updates = self.n_neurons * timesteps * batch
        return SnnRunResult(output_rates=out_accum / timesteps,
                            total_sops=total_sops,
                            total_neuron_updates=updates,
                            timesteps=timesteps)

    def expected_sops(self, mean_input_rate: float, timesteps: int,
                      layer_activity: float = 0.1) -> float:
        """Analytical expected SOPs for one inference.

        Layer 1 sees the input rate; deeper layers are assumed to fire at
        ``layer_activity`` (the sparse regime SNNs are built for).
        """
        if not 0.0 <= mean_input_rate <= 1.0:
            raise ValueError("mean input rate must lie in [0, 1]")
        total = 0.0
        rate = mean_input_rate
        for layer in self.layers:
            total += (rate * layer.in_features * layer.out_features
                      * timesteps)
            rate = layer_activity
        return total

    def energy_per_inference_j(self, total_sops: float, timesteps: int,
                               tech: TechnologyNode = TECH_45NM) -> float:
        """Energy of one rate-coded inference [J]."""
        sop_energy = SOP_ENERGY_FRACTION * tech.energy_per_mac_j
        update_energy = NEURON_UPDATE_FRACTION * tech.energy_per_mac_j
        return (total_sops * sop_energy
                + self.n_neurons * timesteps * update_energy)

    def power_w(self, total_sops: float, timesteps: int,
                inference_rate_hz: float,
                tech: TechnologyNode = TECH_45NM) -> float:
        """Average power when inferring at a given rate [W]."""
        if inference_rate_hz <= 0:
            raise ValueError("inference rate must be positive")
        return (self.energy_per_inference_j(total_sops, timesteps, tech)
                * inference_rate_hz)


def build_speech_snn(n_channels: int,
                     rng: np.random.Generator | None = None,
                     n_outputs: int = 40) -> SpikingNetwork:
    """An SNN counterpart of the speech workload (paper Section 7).

    Width scales with n like the MLP's, but inference cost scales with
    spiking *activity*, which is what makes SNNs attractive for implants.
    """
    if n_channels <= 0:
        raise ValueError("n_channels must be positive")
    hidden = max(64, n_channels)
    layers = [
        LIFLayer(n_channels, hidden, rng=rng),
        LIFLayer(hidden, max(32, n_channels // 4), rng=rng),
        LIFLayer(max(32, n_channels // 4), n_outputs, rng=rng),
    ]
    return SpikingNetwork(layers, name=f"speech-snn-{n_channels}ch")
