"""Sequential network container and the Eq. 10 fMAC function.

``fmac(network)`` walks the layer stack with shape inference and returns the
per-layer (MACseq, #MACop) lists of Eq. 10 — the interface the accelerator
scheduler (:mod:`repro.accel.schedule`) consumes.
"""

from __future__ import annotations

import numpy as np

from repro.dnn.layers import Layer
from repro.dnn.macs import LayerMacs
from repro.obs.metrics import inc, metrics_enabled
from repro.obs.trace import span


class Network:
    """An ordered stack of layers with a fixed input shape.

    Args:
        layers: the layer sequence.
        input_shape: shape of one sample (no batch dimension), e.g.
            ``(512,)`` for a flat MLP input or ``(4, 1024)`` for conv input.
        name: display name used in reports.
    """

    def __init__(self, layers: list[Layer], input_shape: tuple[int, ...],
                 name: str = "network") -> None:
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.layers = list(layers)
        self.input_shape = tuple(input_shape)
        self.name = name
        self._total_macs: int | None = None
        # Validate shape compatibility eagerly so errors surface at build.
        self._shapes = [self.input_shape]
        for layer in self.layers:
            self._shapes.append(layer.output_shape(self._shapes[-1]))

    @property
    def output_shape(self) -> tuple[int, ...]:
        """Shape of one output sample."""
        return self._shapes[-1]

    @property
    def layer_input_shapes(self) -> list[tuple[int, ...]]:
        """Input shape seen by each layer."""
        return self._shapes[:-1]

    @property
    def output_values(self) -> int:
        """Number of scalar values per output sample (n_out of Eq. 8)."""
        size = 1
        for dim in self.output_shape:
            size *= dim
        return size

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run a batch through the network."""
        expected = (x.shape[0],) + self.input_shape
        if x.shape != expected:
            raise ValueError(
                f"{self.name} expects batches of shape {expected[1:]}, got "
                f"{x.shape[1:]}")
        if metrics_enabled():
            inc("dnn.forward_passes")
            inc("dnn.samples_processed", x.shape[0])
            inc("dnn.macs_executed", self.total_macs * x.shape[0])
        with span("dnn.forward", network=self.name, batch=x.shape[0]):
            for layer in self.layers:
                x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Back-propagate a loss gradient through all layers."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def mac_profiles(self) -> list[LayerMacs]:
        """Per-layer MAC profiles for *compute* layers only (Eq. 10).

        Activation/reshape layers are skipped — they carry no MAC work and
        the paper's layer index i in Eq. 10-15 counts MAC layers.
        """
        profiles = []
        for layer, shape in zip(self.layers, self.layer_input_shapes):
            profile = layer.mac_profile(shape)
            if profile.is_compute:
                profiles.append(profile)
        return profiles

    @property
    def total_macs(self) -> int:
        """Total accumulate steps for one inference (cached; the layer
        stack is fixed after construction)."""
        if self._total_macs is None:
            self._total_macs = sum(p.total_macs
                                   for p in self.mac_profiles())
        return self._total_macs

    @property
    def n_parameters(self) -> int:
        """Total trainable parameters (the paper's 'model size' proxy)."""
        return sum(layer.n_parameters for layer in self.layers)

    @property
    def n_compute_layers(self) -> int:
        """Number of MAC-bearing layers (N of Eq. 10)."""
        return len(self.mac_profiles())

    def tail(self, n_compute_layers: int,
             name: str | None = None) -> "Network":
        """The sub-network after the n-th compute layer — the wearable's
        share when the DNN is partitioned (Section 6.1).

        Complements :meth:`head`: ``head(i)`` and ``tail(i)`` compose back
        to the full network (the trailing activation of the head is the
        boundary; the tail starts at the next compute layer).

        Raises:
            ValueError: if the index is out of range or the tail would be
                empty.
        """
        if not 1 <= n_compute_layers < self.n_compute_layers:
            raise ValueError(
                f"tail split {n_compute_layers} outside "
                f"[1, {self.n_compute_layers - 1}]")
        head = self.head(n_compute_layers)
        start = len(head.layers)
        return Network(self.layers[start:], self._shapes[start],
                       name=name or f"{self.name}[{n_compute_layers}:]")

    def compute_layer_output_values(self) -> list[int]:
        """Output value counts after each compute layer.

        Entry i is the number of scalar values a split after the (i+1)-th
        compute layer would have to transmit — the quantity the DNN
        partitioning analysis (Section 6.1) compares against the
        1024-channel transceiver rate.
        """
        sizes = []
        for layer, in_shape, out_shape in zip(self.layers, self._shapes[:-1],
                                              self._shapes[1:]):
            if layer.mac_profile(in_shape).is_compute:
                size = 1
                for dim in out_shape:
                    size *= dim
                sizes.append(size)
        return sizes

    def zero_gradients(self) -> None:
        """Reset accumulated parameter gradients."""
        for layer in self.layers:
            for grad in layer.gradients:
                grad[...] = 0.0

    def head(self, n_compute_layers: int,
             name: str | None = None) -> "Network":
        """The sub-network up to and including the n-th compute layer.

        This is the on-implant part after DNN partitioning (Section 6.1):
        compute layer indices are 1-based; trailing non-compute layers
        (activations) attached to the chosen compute layer are included.

        Raises:
            ValueError: if the index is out of range.
        """
        if not 1 <= n_compute_layers <= self.n_compute_layers:
            raise ValueError(
                f"split index {n_compute_layers} outside "
                f"[1, {self.n_compute_layers}]")
        kept: list[Layer] = []
        seen = 0
        for layer, shape in zip(self.layers, self.layer_input_shapes):
            is_compute = layer.mac_profile(shape).is_compute
            if is_compute and seen == n_compute_layers:
                break
            kept.append(layer)
            if is_compute:
                seen += 1
        # Include any immediately following non-compute layers (activation).
        idx = len(kept)
        while idx < len(self.layers):
            layer = self.layers[idx]
            if layer.mac_profile(self._shapes[idx]).is_compute:
                break
            kept.append(layer)
            idx += 1
        return Network(kept, self.input_shape,
                       name=name or f"{self.name}[:{n_compute_layers}]")


def fmac(network: Network) -> tuple[list[int], list[int]]:
    """Eq. 10: ``[MACseq_i], [#MACop_i] = fMAC(n, DNN)``.

    Returns the two parallel lists for the network's compute layers.
    """
    profiles = network.mac_profiles()
    return ([p.mac_seq for p in profiles], [p.mac_ops for p in profiles])
