"""The paper's two BCI workloads: speech-synthesis MLP and DN-CNN.

Paper Section 5.3 evaluates a multi-layer perceptron and a DenseNet-style
convolutional network "trained for speech synthesis using ECoG neural data"
(Berezutskaya et al.), originally designed for 128 channels at 2 kHz with a
40-label spectral output.  The exact published layer shapes are not in the
paper; the architectures here are shape-equivalent reconstructions
(DESIGN.md substitution 3) whose base sizes are calibrated so the Fig. 10
feasibility crossovers land near the paper's ~1800 (MLP) / ~1400 (DN-CNN)
channel counts.

Alpha scaling (Section 5.3, "Scaling Factor"): with
``alpha = input size / original input size = n / 128``, layer widths scale
linearly with n and network depth grows with ``log2(alpha)`` extra hidden
layers — width growth alone already makes total MACs quadratic in n, the
super-linear growth the paper requires, while logarithmic depth growth
keeps the model family trainable.

Architecture notes relevant to partitioning (Section 6.1):

* The MLP narrows to an ``n // 4`` bottleneck after its second compute
  layer; that is the earliest layer whose output can be streamed within a
  1024-channel transceiver's data rate (for n <= 4096), so layer reduction
  helps the MLP.
* The DN-CNN's feature maps are all wider than 1024 values until the final
  40-label layer, so no useful split exists — matching the paper's finding
  that the DN-CNN gains nothing from partitioning.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dnn.layers import AvgPool1D, Conv1D, Dense, Flatten, ReLU, Tanh
from repro.dnn.network import Network

#: Original workload parameters (paper Section 5.3).
SPEECH_BASE_CHANNELS = 128
SPEECH_BASE_SAMPLING_HZ = 2_000.0
SPEECH_OUTPUT_LABELS = 40

#: Input window length in samples per channel.
SPEECH_WINDOW = 2


def alpha_scaling_factor(n_channels: int,
                         base_channels: int = SPEECH_BASE_CHANNELS) -> float:
    """alpha = input size / original input size (Section 5.3)."""
    if n_channels <= 0 or base_channels <= 0:
        raise ValueError("channel counts must be positive")
    return n_channels / base_channels


def _extra_depth(alpha: float) -> int:
    """Extra hidden layers contributed by depth scaling: ~log2(alpha)."""
    if alpha < 1.0:
        return 0
    return max(0, round(math.log2(alpha)))


def build_speech_mlp(n_channels: int,
                     rng: np.random.Generator | None = None,
                     window: int = SPEECH_WINDOW,
                     n_outputs: int = SPEECH_OUTPUT_LABELS) -> Network:
    """The speech-synthesis MLP scaled to ``n_channels``.

    Structure (widths in units of n = n_channels):
    ``Dense(window*n -> 2n)`` -> ``Dense(2n -> n/4)`` [bottleneck]
    -> ``Dense(n/4 -> n)`` -> ``log2(alpha)`` x ``Dense(n -> n)``
    -> ``Dense(n -> 40)``, ReLU between hidden layers, Tanh head.

    Args:
        n_channels: NI channel count feeding the network.
        rng: materializes weights when given; omit for shape-only analysis.
        window: samples per channel in the input frame.
        n_outputs: output labels (40 speech frequencies in the paper).
    """
    if n_channels <= 0:
        raise ValueError("n_channels must be positive")
    n = n_channels
    alpha = alpha_scaling_factor(n)
    bottleneck = max(16, n // 4)
    widths = [window * n, 2 * n, bottleneck, n]
    widths += [n] * _extra_depth(alpha)
    widths.append(n_outputs)

    layers = []
    for i in range(len(widths) - 1):
        layers.append(Dense(widths[i], widths[i + 1], rng=rng))
        is_last = i == len(widths) - 2
        layers.append(Tanh() if is_last else ReLU())
    return Network(layers, input_shape=(window * n,),
                   name=f"speech-mlp-{n}ch")


def build_speech_dncnn(n_channels: int,
                       rng: np.random.Generator | None = None,
                       window: int = SPEECH_WINDOW,
                       n_outputs: int = SPEECH_OUTPUT_LABELS,
                       kernel_size: int = 7) -> Network:
    """The DenseNet-style speech CNN (DN-CNN) scaled to ``n_channels``.

    Convolutions run across the channel axis (length n), treating the
    time window as input channels, densely increasing feature counts
    (4 -> 8 -> 16 -> 16...), followed by pooling and a dense head.

    Args:
        n_channels: NI channel count (the convolution axis length).
        rng: materializes weights when given; omit for shape-only analysis.
        window: input time window, used as conv input channels.
        n_outputs: output labels.
        kernel_size: conv receptive field (odd; 'same' padding).
    """
    if n_channels <= 0:
        raise ValueError("n_channels must be positive")
    if kernel_size % 2 != 1:
        raise ValueError("kernel_size must be odd for 'same' padding")
    n = n_channels
    alpha = alpha_scaling_factor(n)
    pad = kernel_size // 2

    layers: list = [
        Conv1D(window, 8, kernel_size, padding=pad, rng=rng), ReLU(),
        Conv1D(8, 16, kernel_size, padding=pad, rng=rng), ReLU(),
        Conv1D(16, 16, kernel_size, padding=pad, rng=rng), ReLU(),
    ]
    for _ in range(_extra_depth(alpha)):
        layers += [Conv1D(16, 16, kernel_size, padding=pad, rng=rng), ReLU()]

    # Pool by 4 where the length allows it, then the dense head.
    pooled = n
    for pool in (4, 2):
        if n % pool == 0:
            layers.append(AvgPool1D(pool))
            pooled = n // pool
            break
    layers.append(Flatten())
    head_in = 16 * pooled
    layers += [
        Dense(head_in, 2 * n, rng=rng), ReLU(),
        Dense(2 * n, n, rng=rng), ReLU(),
        Dense(n, n_outputs, rng=rng), Tanh(),
    ]
    return Network(layers, input_shape=(window, n),
                   name=f"speech-dncnn-{n}ch")
