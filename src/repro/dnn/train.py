"""Minimal SGD training loop for the NumPy networks.

The MINDFUL analysis never trains — it consumes layer shapes — but the
example applications demonstrate the substrate end-to-end by fitting small
instances of the speech workloads on synthetic data.  Mean-squared error
plus plain mini-batch SGD is sufficient for that purpose.
"""

from __future__ import annotations

import numpy as np

from repro.dnn.network import Network


def mse_loss(prediction: np.ndarray,
             target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean-squared-error loss and its gradient w.r.t. the prediction.

    Returns:
        (loss value, gradient array of the same shape as prediction).
    """
    if prediction.shape != target.shape:
        raise ValueError(
            f"shape mismatch: {prediction.shape} vs {target.shape}")
    diff = prediction - target
    loss = float(np.mean(diff ** 2))
    grad = 2.0 * diff / diff.size
    return loss, grad


def cross_entropy_loss(probabilities: np.ndarray,
                       labels: np.ndarray,
                       eps: float = 1e-12) -> tuple[float, np.ndarray]:
    """Categorical cross-entropy over softmax outputs.

    Args:
        probabilities: (batch, n_classes) softmax outputs.
        labels: integer class labels of shape (batch,) or one-hot rows of
            shape (batch, n_classes).
        eps: numerical floor inside the log.

    Returns:
        (mean loss, gradient w.r.t. the probabilities).  When the network
        ends in a :class:`~repro.dnn.layers.Softmax`, back-propagating
        this gradient through it reproduces the classic (p - y)/batch.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    if probabilities.ndim != 2:
        raise ValueError("probabilities must be (batch, n_classes)")
    batch, n_classes = probabilities.shape
    labels = np.asarray(labels)
    if labels.ndim == 1:
        if labels.shape[0] != batch:
            raise ValueError("label count must match the batch")
        one_hot = np.zeros_like(probabilities)
        if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
            raise ValueError("labels out of class range")
        one_hot[np.arange(batch), labels.astype(int)] = 1.0
    elif labels.shape == probabilities.shape:
        one_hot = labels.astype(float)
    else:
        raise ValueError("labels must be (batch,) ints or one-hot rows")
    clipped = np.clip(probabilities, eps, 1.0)
    loss = float(-np.sum(one_hot * np.log(clipped)) / batch)
    grad = -(one_hot / clipped) / batch
    return loss, grad


def sgd_step(network: Network, learning_rate: float) -> None:
    """Apply one gradient step to all materialized parameters."""
    if learning_rate <= 0:
        raise ValueError("learning rate must be positive")
    for layer in network.layers:
        for param, grad in zip(layer.parameters, layer.gradients):
            param -= learning_rate * grad


def sgd_train(network: Network,
              features: np.ndarray,
              targets: np.ndarray,
              rng: np.random.Generator,
              epochs: int = 10,
              batch_size: int = 32,
              learning_rate: float = 0.05) -> list[float]:
    """Train a network with mini-batch SGD on MSE.

    Args:
        network: a *materialized* network (layers built with an rng).
        features: (n_samples, *input_shape) inputs.
        targets: (n_samples, *output_shape) regression targets.
        rng: shuffling generator.
        epochs: passes over the data.
        batch_size: mini-batch size.
        learning_rate: SGD step size.

    Returns:
        Mean epoch losses, one per epoch.

    Raises:
        ValueError: on mismatched sample counts or empty data.
    """
    if len(features) != len(targets):
        raise ValueError("features and targets must have equal length")
    if len(features) == 0:
        raise ValueError("cannot train on empty data")
    n = len(features)
    history = []
    for _ in range(epochs):
        order = rng.permutation(n)
        epoch_losses = []
        for start in range(0, n, batch_size):
            idx = order[start:start + batch_size]
            network.zero_gradients()
            prediction = network.forward(features[idx])
            loss, grad = mse_loss(prediction, targets[idx])
            network.backward(grad)
            sgd_step(network, learning_rate)
            epoch_losses.append(loss)
        history.append(float(np.mean(epoch_losses)))
    return history
