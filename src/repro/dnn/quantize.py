"""Post-training fixed-point quantization of networks.

The Fig. 9 accelerator synthesizes an 8-bit datatype; this module provides
the software side of that choice: symmetric per-tensor quantization of a
trained network's weights (and optionally a fixed-point activation
constraint), plus degradation measurement so the examples can show how
many bits the BCI workloads actually need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dnn.layers import Conv1D, Dense
from repro.dnn.network import Network


def quantize_tensor(tensor: np.ndarray, bits: int) -> np.ndarray:
    """Symmetric uniform quantization to ``bits`` (sign included).

    The scale maps the tensor's absolute maximum onto the largest code.

    Raises:
        ValueError: for bit widths below 2.
    """
    if bits < 2:
        raise ValueError("need at least 2 bits (sign + magnitude)")
    tensor = np.asarray(tensor, dtype=float)
    peak = np.max(np.abs(tensor))
    if peak == 0:
        return tensor.copy()
    levels = 2 ** (bits - 1) - 1
    scale = peak / levels
    return np.round(tensor / scale) * scale


def quantize_network(network: Network, bits: int) -> int:
    """Quantize all materialized weights in place.

    Returns:
        Number of layers quantized.

    Raises:
        ValueError: when the network has no materialized weights.
    """
    touched = 0
    for layer in network.layers:
        if isinstance(layer, (Dense, Conv1D)) and layer.materialized:
            layer.weight[...] = quantize_tensor(layer.weight, bits)
            layer.bias[...] = quantize_tensor(layer.bias, bits)
            touched += 1
    if touched == 0:
        raise ValueError("network has no materialized weights to quantize")
    return touched


@dataclass(frozen=True)
class QuantizationReport:
    """Effect of one quantization level on a network's outputs.

    Attributes:
        bits: weight bit width.
        output_rmse: RMS difference vs the float network's outputs.
        output_rms: RMS magnitude of the float outputs (for scale).
    """

    bits: int
    output_rmse: float
    output_rms: float

    @property
    def relative_error(self) -> float:
        """RMSE normalized by output scale."""
        if self.output_rms == 0:
            return 0.0
        return self.output_rmse / self.output_rms


def quantization_sweep(build_network, inputs: np.ndarray,
                       bit_widths: tuple[int, ...] = (4, 6, 8, 12, 16),
                       ) -> list[QuantizationReport]:
    """Measure output degradation across weight bit widths.

    Args:
        build_network: zero-argument factory returning a fresh
            *materialized* network (a factory, because quantization is
            in-place and each width needs pristine weights).
        inputs: (batch, *input_shape) probe batch.
        bit_widths: widths to evaluate.

    Returns:
        One report per width, in the given order.
    """
    reference_net = build_network()
    reference = reference_net.forward(inputs)
    rms = float(np.sqrt(np.mean(reference ** 2)))
    reports = []
    for bits in bit_widths:
        net = build_network()
        quantize_network(net, bits)
        outputs = net.forward(inputs)
        rmse = float(np.sqrt(np.mean((outputs - reference) ** 2)))
        reports.append(QuantizationReport(bits=bits, output_rmse=rmse,
                                          output_rms=rms))
    return reports
