"""Neural-network layers with forward/backward passes and MAC profiles.

Shape conventions:

* Dense operates on ``(batch, features)``.
* Conv1D / AvgPool1D operate on ``(batch, channels, length)``.
* Flatten bridges the two.

Every layer reports its :class:`~repro.dnn.macs.LayerMacs` profile given an
input shape, which is how :func:`repro.dnn.network.fmac` realizes Eq. 10
from actual architectures instead of hand-entered constants.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.dnn.macs import NO_MACS, LayerMacs, fmac_conv1d, fmac_dense


class Layer(ABC):
    """Base class for all layers."""

    @abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output, caching what backward needs."""

    @abstractmethod
    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Propagate the loss gradient, accumulating parameter gradients."""

    @abstractmethod
    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Output shape (excluding batch) for a given input shape."""

    def mac_profile(self, input_shape: tuple[int, ...]) -> LayerMacs:
        """MAC profile for a given input shape; default: no MAC work."""
        del input_shape
        return NO_MACS

    @property
    def parameters(self) -> list[np.ndarray]:
        """Trainable parameter arrays (empty for stateless layers)."""
        return []

    @property
    def gradients(self) -> list[np.ndarray]:
        """Gradients matching :attr:`parameters` order."""
        return []

    @property
    def n_parameters(self) -> int:
        """Total trainable scalar count."""
        return sum(p.size for p in self.parameters)


class Dense(Layer):
    """Fully connected layer: ``y = x @ W.T + b``.

    Args:
        in_features: input width.
        out_features: output width.
        rng: generator for He-style initialization; zeros if omitted
            (useful when the layer is only used for MAC accounting).
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None) -> None:
        _check_positive(in_features=in_features, out_features=out_features)
        self.in_features = in_features
        self.out_features = out_features
        self.weight: np.ndarray | None = None
        self.bias: np.ndarray | None = None
        self.grad_weight: np.ndarray | None = None
        self.grad_bias: np.ndarray | None = None
        if rng is not None:
            self.materialize(rng)
        self._x: np.ndarray | None = None

    def materialize(self, rng: np.random.Generator) -> None:
        """Allocate and He-initialize the weights.

        Layers built without an rng stay shape-only (zero memory), which is
        what the MINDFUL analysis uses — MAC accounting at n = 8192 channels
        would otherwise allocate multi-gigabyte matrices.
        """
        scale = np.sqrt(2.0 / self.in_features)
        self.weight = scale * rng.standard_normal(
            (self.out_features, self.in_features))
        self.bias = np.zeros(self.out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)

    @property
    def materialized(self) -> bool:
        """True once the weight arrays exist."""
        return self.weight is not None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.materialized:
            raise RuntimeError("Dense layer is shape-only; call "
                               "materialize(rng) before forward")
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expects (batch, {self.in_features}), got {x.shape}")
        self._x = x
        return x @ self.weight.T + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.grad_weight += grad.T @ self._x
        self.grad_bias += grad.sum(axis=0)
        return grad @ self.weight

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if input_shape != (self.in_features,):
            raise ValueError(
                f"Dense({self.in_features}->{self.out_features}) cannot take "
                f"input shape {input_shape}")
        return (self.out_features,)

    def mac_profile(self, input_shape: tuple[int, ...]) -> LayerMacs:
        self.output_shape(input_shape)
        return fmac_dense(self.in_features, self.out_features)

    @property
    def parameters(self) -> list[np.ndarray]:
        if not self.materialized:
            return []
        return [self.weight, self.bias]

    @property
    def gradients(self) -> list[np.ndarray]:
        if not self.materialized:
            return []
        return [self.grad_weight, self.grad_bias]

    @property
    def n_parameters(self) -> int:
        return self.in_features * self.out_features + self.out_features


def _scatter_cols(grad_cols: np.ndarray, padded_len: int) -> np.ndarray:
    """col2im fold: scatter-add column gradients back onto the input.

    Vectorized production path: each padded input position ``i``
    receives ``grad_cols[:, i - k, :, k]`` summed over tap ``k``.
    Padding the output-position axis by ``kernel_size - 1`` on each side
    turns those anti-diagonals into the main diagonals of length-``k``
    sliding windows (tap axis reversed), which one einsum reduces in the
    same ascending-``k`` order as the reference loop — the sums match
    it bit for bit (``tests/dnn/test_layers.py``).

    Args:
        grad_cols: (batch, out_len, in_channels, kernel_size) gradient
            w.r.t. the im2col columns.
        padded_len: padded input length ``out_len + kernel_size - 1``.

    Returns:
        (batch, in_channels, padded_len) gradient w.r.t. the padded
        input.
    """
    kernel_size = grad_cols.shape[-1]
    g = grad_cols.transpose(0, 2, 1, 3)  # (batch, ch, out_len, k)
    edge = kernel_size - 1
    padded = np.pad(g, ((0, 0), (0, 0), (edge, edge), (0, 0)))
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, kernel_size, axis=2)[..., ::-1]
    return np.einsum("bcimm->bci", windows)


def _scatter_cols_reference(grad_cols: np.ndarray,
                            padded_len: int) -> np.ndarray:
    """Original per-tap loop, kept as the parity oracle for
    :func:`_scatter_cols` (``tests/dnn/test_layers.py``)."""
    batch, out_len, in_channels, kernel_size = grad_cols.shape
    grad_x = np.zeros((batch, in_channels, padded_len))
    for k in range(kernel_size):
        grad_x[:, :, k:k + out_len] += grad_cols[:, :, :, k].transpose(
            0, 2, 1)
    return grad_x


class Conv1D(Layer):
    """1-D convolution with stride 1 via im2col.

    Args:
        in_channels: input channel count.
        out_channels: output channel count.
        kernel_size: receptive field length.
        padding: symmetric zero padding; ``kernel_size // 2`` keeps length
            for odd kernels.
        rng: generator for initialization (zeros if omitted).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 padding: int = 0,
                 rng: np.random.Generator | None = None) -> None:
        _check_positive(in_channels=in_channels, out_channels=out_channels,
                        kernel_size=kernel_size)
        if padding < 0:
            raise ValueError("padding must be non-negative")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.padding = padding
        self.weight: np.ndarray | None = None
        self.bias: np.ndarray | None = None
        self.grad_weight: np.ndarray | None = None
        self.grad_bias: np.ndarray | None = None
        if rng is not None:
            self.materialize(rng)
        self._cols: np.ndarray | None = None
        self._in_length = 0

    def materialize(self, rng: np.random.Generator) -> None:
        """Allocate and He-initialize the kernels (see Dense.materialize)."""
        fan_in = self.in_channels * self.kernel_size
        self.weight = np.sqrt(2.0 / fan_in) * rng.standard_normal(
            (self.out_channels, self.in_channels, self.kernel_size))
        self.bias = np.zeros(self.out_channels)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)

    @property
    def materialized(self) -> bool:
        """True once the kernel arrays exist."""
        return self.weight is not None

    def _out_length(self, in_length: int) -> int:
        out = in_length + 2 * self.padding - self.kernel_size + 1
        if out <= 0:
            raise ValueError(
                f"kernel {self.kernel_size} too large for input length "
                f"{in_length} with padding {self.padding}")
        return out

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.materialized:
            raise RuntimeError("Conv1D layer is shape-only; call "
                               "materialize(rng) before forward")
        x = np.asarray(x, dtype=float)
        if x.ndim != 3 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv1D expects (batch, {self.in_channels}, length), got "
                f"{x.shape}")
        batch, _, length = x.shape
        out_len = self._out_length(length)
        if self.padding:
            x = np.pad(x, ((0, 0), (0, 0), (self.padding, self.padding)))
        # im2col: (batch, out_len, in_ch * k)
        windows = np.lib.stride_tricks.sliding_window_view(
            x, self.kernel_size, axis=2)  # (batch, ch, out_len, k)
        cols = windows.transpose(0, 2, 1, 3).reshape(
            batch, out_len, self.in_channels * self.kernel_size)
        self._cols = cols
        self._in_length = length
        w = self.weight.reshape(self.out_channels, -1)
        out = cols @ w.T + self.bias  # (batch, out_len, out_ch)
        return out.transpose(0, 2, 1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cols is None:
            raise RuntimeError("backward called before forward")
        batch, _, out_len = grad.shape
        g = grad.transpose(0, 2, 1)  # (batch, out_len, out_ch)
        w = self.weight.reshape(self.out_channels, -1)
        self.grad_weight += (
            g.reshape(-1, self.out_channels).T
            @ self._cols.reshape(-1, w.shape[1])
        ).reshape(self.weight.shape)
        self.grad_bias += g.sum(axis=(0, 1))
        grad_cols = g @ w  # (batch, out_len, in_ch * k)
        grad_cols = grad_cols.reshape(batch, out_len, self.in_channels,
                                      self.kernel_size)
        padded_len = self._in_length + 2 * self.padding
        grad_x = _scatter_cols(grad_cols, padded_len)
        if self.padding:
            grad_x = grad_x[:, :, self.padding:-self.padding]
        return grad_x

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 2 or input_shape[0] != self.in_channels:
            raise ValueError(
                f"Conv1D({self.in_channels}ch) cannot take input shape "
                f"{input_shape}")
        return (self.out_channels, self._out_length(input_shape[1]))

    def mac_profile(self, input_shape: tuple[int, ...]) -> LayerMacs:
        _, out_len = self.output_shape(input_shape)
        return fmac_conv1d(self.in_channels, self.out_channels,
                           self.kernel_size, out_len)

    @property
    def parameters(self) -> list[np.ndarray]:
        if not self.materialized:
            return []
        return [self.weight, self.bias]

    @property
    def gradients(self) -> list[np.ndarray]:
        if not self.materialized:
            return []
        return [self.grad_weight, self.grad_bias]

    @property
    def n_parameters(self) -> int:
        return (self.in_channels * self.out_channels * self.kernel_size
                + self.out_channels)


class ReLU(Layer):
    """Rectified linear activation (the PE's activation unit, Fig. 9)."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad * self._mask

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape


class Tanh(Layer):
    """Hyperbolic-tangent activation (used by the regression heads)."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad * (1.0 - self._out ** 2)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape


class Softmax(Layer):
    """Row-wise softmax — the probability head of classification DNNs.

    Section 5.3: "the output is typically a vector of probabilities, one
    for each label in a fixed set."  Pairs with
    :func:`repro.dnn.train.cross_entropy_loss`; when used together the
    loss gradient shortcut (p - y) is applied there, and this layer's
    backward implements the full Jacobian for standalone use.
    """

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        shifted = x - np.max(x, axis=-1, keepdims=True)
        exp = np.exp(shifted)
        self._out = exp / exp.sum(axis=-1, keepdims=True)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        p = self._out
        dot = np.sum(grad * p, axis=-1, keepdims=True)
        return p * (grad - dot)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape


class Flatten(Layer):
    """Reshape (batch, channels, length) -> (batch, channels * length)."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad.reshape(self._shape)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,)


class AvgPool1D(Layer):
    """Non-overlapping average pooling along the length axis."""

    def __init__(self, pool_size: int) -> None:
        _check_positive(pool_size=pool_size)
        self.pool_size = pool_size
        self._in_length = 0

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError("AvgPool1D expects (batch, channels, length)")
        batch, channels, length = x.shape
        if length % self.pool_size != 0:
            raise ValueError(
                f"length {length} not divisible by pool {self.pool_size}")
        self._in_length = length
        return x.reshape(batch, channels, length // self.pool_size,
                         self.pool_size).mean(axis=3)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        expanded = np.repeat(grad, self.pool_size, axis=2)
        return expanded / self.pool_size

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        channels, length = input_shape
        if length % self.pool_size != 0:
            raise ValueError(
                f"length {length} not divisible by pool {self.pool_size}")
        return (channels, length // self.pool_size)


def _check_positive(**values: int) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")
