"""MAC accounting: the (MACseq, #MACop) decomposition of Eq. 10 and Fig. 8.

The paper decomposes a DNN layer's arithmetic into independent
multiply-accumulate *operations* (``#MACop``), each a *sequence* of
``MACseq`` accumulate steps.  All MACop in one layer are independent and
share the same MACseq, which is what lets the accelerator time-multiplex
them over ``MAChw`` physical units (Eq. 11).

Conventions (matching Fig. 8):

* matrix-vector / dense layer  (W: out x in):
  ``#MACop = out`` independent dot products, ``MACseq = in``.
* 1-D convolution (in_ch, out_ch, kernel K, output length L):
  ``#MACop = out_ch * L`` independent output values,
  ``MACseq = K * in_ch`` accumulate steps per output.

Fig. 8's two worked examples are exposed verbatim as
:func:`fmac_matmul_example` and :func:`fmac_conv_example` so the tests can
pin the paper's numbers (4/3 for the matmul, 4/8 for the conv).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LayerMacs:
    """The MAC profile of a single DNN layer.

    Attributes:
        mac_seq: accumulation steps per MACop (``MACseq`` in Eq. 10).
        mac_ops: number of independent MACop (``#MACop`` in Eq. 10).
    """

    mac_seq: int
    mac_ops: int

    def __post_init__(self) -> None:
        if self.mac_seq < 0 or self.mac_ops < 0:
            raise ValueError("MAC counts must be non-negative")

    @property
    def total_macs(self) -> int:
        """Total accumulate steps in the layer (mac_seq * mac_ops)."""
        return self.mac_seq * self.mac_ops

    @property
    def is_compute(self) -> bool:
        """True when the layer performs MAC work at all."""
        return self.total_macs > 0


#: Profile of a layer without MAC work (activations, reshapes, pooling).
NO_MACS = LayerMacs(mac_seq=0, mac_ops=0)


def fmac_dense(in_features: int, out_features: int) -> LayerMacs:
    """MAC profile of a dense (matrix-vector) layer."""
    _check_positive(in_features=in_features, out_features=out_features)
    return LayerMacs(mac_seq=in_features, mac_ops=out_features)


def fmac_conv1d(in_channels: int, out_channels: int, kernel_size: int,
                output_length: int) -> LayerMacs:
    """MAC profile of a 1-D convolution layer."""
    _check_positive(in_channels=in_channels, out_channels=out_channels,
                    kernel_size=kernel_size, output_length=output_length)
    return LayerMacs(mac_seq=kernel_size * in_channels,
                     mac_ops=out_channels * output_length)


def fmac_matmul_example() -> LayerMacs:
    """Fig. 8, top: A(4x3) @ B(3x4) => #MACop = 4, MACseq = rows_B = 3.

    (The paper treats each row of A as one MACop streaming across B's
    columns; the accumulate depth per output element is rows_B.)
    """
    rows_a, rows_b = 4, 3
    return LayerMacs(mac_seq=rows_b, mac_ops=rows_a)


def fmac_conv_example() -> LayerMacs:
    """Fig. 8, bottom: conv with 2 input channels, 1 output channel,
    kernel size 4, output size 4 => #MACop = 4, MACseq = 8."""
    in_channels, out_channels, kernel, out_len = 2, 1, 4, 4
    return LayerMacs(mac_seq=kernel * in_channels,
                     mac_ops=out_channels * out_len)


def _check_positive(**values: int) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")
