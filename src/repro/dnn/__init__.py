"""Pure-NumPy deep-learning substrate with exact MAC accounting.

The MINDFUL computation analysis (paper Section 5.3) needs, for every DNN
layer, the pair (MACseq, #MACop) of Eq. 10 — the accumulation depth and the
number of independent multiply-accumulate sequences.  Rather than hard-code
those numbers, this package implements a small but real neural-network
library (dense / conv / activation layers with forward *and* backward
passes), derives the MAC profile from the actual layer shapes, and provides
builders for the paper's two workloads: the speech-synthesis MLP and
DenseNet-style CNN (DN-CNN) of Berezutskaya et al., plus the alpha-scaling
transform that grows them with channel count.
"""

from repro.dnn.macs import (
    LayerMacs,
    fmac_dense,
    fmac_conv1d,
    fmac_matmul_example,
    fmac_conv_example,
)
from repro.dnn.layers import (
    Layer,
    Dense,
    Conv1D,
    ReLU,
    Tanh,
    Softmax,
    Flatten,
    AvgPool1D,
)
from repro.dnn.network import Network, fmac
from repro.dnn.models import (
    SPEECH_BASE_CHANNELS,
    SPEECH_BASE_SAMPLING_HZ,
    SPEECH_OUTPUT_LABELS,
    alpha_scaling_factor,
    build_speech_mlp,
    build_speech_dncnn,
)
from repro.dnn.train import cross_entropy_loss, mse_loss, sgd_train
from repro.dnn.snn import (
    LIFLayer,
    SnnRunResult,
    SpikingNetwork,
    build_speech_snn,
)
from repro.dnn.graph import (
    GraphCut,
    best_cut,
    build_dataflow_graph,
    enumerate_cuts,
)
from repro.dnn.quantize import (
    QuantizationReport,
    quantization_sweep,
    quantize_network,
    quantize_tensor,
)

__all__ = [
    "LayerMacs",
    "fmac_dense",
    "fmac_conv1d",
    "fmac_matmul_example",
    "fmac_conv_example",
    "Layer",
    "Dense",
    "Conv1D",
    "ReLU",
    "Tanh",
    "Softmax",
    "Flatten",
    "AvgPool1D",
    "Network",
    "fmac",
    "SPEECH_BASE_CHANNELS",
    "SPEECH_BASE_SAMPLING_HZ",
    "SPEECH_OUTPUT_LABELS",
    "alpha_scaling_factor",
    "build_speech_mlp",
    "build_speech_dncnn",
    "cross_entropy_loss",
    "mse_loss",
    "sgd_train",
    "LIFLayer",
    "SnnRunResult",
    "SpikingNetwork",
    "build_speech_snn",
    "GraphCut",
    "best_cut",
    "build_dataflow_graph",
    "enumerate_cuts",
    "QuantizationReport",
    "quantization_sweep",
    "quantize_network",
    "quantize_tensor",
]
