"""DNN dataflow graph: partitioning as a graph-cut problem (networkx).

Section 6.1 splits a *sequential* network by scanning prefixes, which is
a special case of a general problem: in a DNN dataflow DAG, an
implant/wearable partition is a cut whose crossing edges carry the
activations that must be transmitted.  This module builds that graph for
any :class:`~repro.dnn.network.Network`, annotates nodes with compute cost
and edges with activation size, and solves the partition by enumerating
topological cuts — the exact machinery branching architectures (true
DenseNets, multi-stream decoders) would need, degenerating to the paper's
prefix scan for sequential stacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.dnn.network import Network

#: Node ids for the synthetic endpoints.
SOURCE = "source"
SINK = "sink"


def build_dataflow_graph(network: Network) -> nx.DiGraph:
    """Dataflow DAG of a network's compute layers.

    Nodes: ``source`` (the NI), one node per compute layer (``layer_i``,
    1-based, with ``macs`` and ``mac_seq``/``mac_ops`` attributes), and
    ``sink`` (the transmitter).  Edges carry ``values`` — the activation
    count that would cross an implant/wearable boundary cutting them.
    """
    graph = nx.DiGraph()
    profiles = network.mac_profiles()
    sizes = network.compute_layer_output_values()
    input_values = 1
    for dim in network.input_shape:
        input_values *= dim

    graph.add_node(SOURCE, macs=0)
    graph.add_node(SINK, macs=0)
    previous = SOURCE
    previous_values = input_values
    for index, (profile, size) in enumerate(zip(profiles, sizes), start=1):
        node = f"layer_{index}"
        graph.add_node(node, macs=profile.total_macs,
                       mac_seq=profile.mac_seq, mac_ops=profile.mac_ops)
        graph.add_edge(previous, node, values=previous_values)
        previous = node
        previous_values = size
    graph.add_edge(previous, SINK, values=previous_values)
    return graph


@dataclass(frozen=True)
class GraphCut:
    """An implant/wearable partition of the dataflow graph.

    Attributes:
        implant_nodes: node ids on the implant side (includes source).
        crossing_values: activation values crossing the cut.
        implant_macs: MAC work retained on the implant.
    """

    implant_nodes: frozenset[str]
    crossing_values: int
    implant_macs: int


def enumerate_cuts(graph: nx.DiGraph) -> list[GraphCut]:
    """All downward-closed cuts of the dataflow DAG.

    A valid partition keeps a *downward-closed* set of nodes on the
    implant (every predecessor of an implant node is also on the
    implant).  For a sequential chain these are exactly the paper's
    prefixes; for a DAG they are the antichains' down-sets, enumerated
    here via topological prefixes of every linear extension — which for
    the class of graphs we build (series chains, and small fan-out
    blocks) is tractable and exact.
    """
    order = list(nx.topological_sort(graph))
    cuts = []
    seen: set[frozenset[str]] = set()
    # Grow downward-closed sets by adding nodes whose predecessors are in.
    frontier = [frozenset({SOURCE})]
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        if SINK not in current:
            cuts.append(_cut_from_set(graph, current))
        for node in order:
            if node in current:
                continue
            if all(pred in current for pred in graph.predecessors(node)):
                candidate = current | {node}
                if candidate not in seen and SINK not in candidate:
                    frontier.append(candidate)
    return cuts


def _cut_from_set(graph: nx.DiGraph,
                  implant_nodes: frozenset[str]) -> GraphCut:
    crossing = sum(data["values"]
                   for u, v, data in graph.edges(data=True)
                   if u in implant_nodes and v not in implant_nodes)
    macs = sum(graph.nodes[node]["macs"] for node in implant_nodes)
    return GraphCut(implant_nodes=implant_nodes,
                    crossing_values=crossing, implant_macs=macs)


def best_cut(graph: nx.DiGraph, max_values: int = 1024) -> GraphCut:
    """Minimum-implant-MACs cut whose crossing traffic fits the budget.

    This is the graph generalization of Section 6.1's rule: among cuts
    with ``crossing_values <= max_values``, keep the least compute on the
    implant.  Falls back to the full-on-implant cut (crossing = final
    outputs) when no admissible interior cut exists — that cut always
    qualifies if the final output fits, mirroring the DN-CNN case.

    Raises:
        ValueError: if not even the full network's output fits the budget.
    """
    cuts = enumerate_cuts(graph)
    admissible = [cut for cut in cuts if cut.crossing_values <= max_values]
    if not admissible:
        raise ValueError(
            f"no cut transmits <= {max_values} values — even the final "
            "output exceeds the transmission budget")
    return min(admissible, key=lambda cut: cut.implant_macs)


def prefix_cut_equivalence(network: Network,
                           max_values: int = 1024) -> tuple[int | None, int]:
    """Cross-check the graph cut against the sequential prefix scan.

    Returns:
        (equivalent prefix index or None for source-only/full,
         implant MACs of the best cut).
    """
    graph = build_dataflow_graph(network)
    cut = best_cut(graph, max_values)
    layer_ids = sorted(
        (int(node.split("_")[1]) for node in cut.implant_nodes
         if node.startswith("layer_")))
    prefix = layer_ids[-1] if layer_ids else None
    return prefix, cut.implant_macs
