"""Benchmark history and the perf-trajectory regression gate.

``benchmarks/test_bench_perf.py`` measures honest before/after numbers
for every vectorized kernel, but a single ``BENCH_perf.json`` snapshot
cannot tell whether *this* commit made a kernel slower than the last
few.  This module keeps the trajectory: every benchmark run appends one
line to ``results/bench_history.jsonl`` — keyed by git SHA and the run
configuration — and :func:`check_regressions` compares the newest run's
per-kernel timings against a rolling baseline of prior runs with the
same configuration, failing the CI ``bench-gate`` job when a kernel got
more than 20 % slower.

The baseline is the *median* of the last ``window`` matching runs, so a
single noisy historical sample cannot poison the gate, and runs under a
different configuration (``quick`` smoke vs full, different CPU count)
never compare against each other — a laptop run cannot fail CI's gate.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.obs.manifest import git_sha
from repro.obs.metrics import percentile
from repro.units import to_ms

__all__ = [
    "DEFAULT_HISTORY_PATH",
    "DEFAULT_THRESHOLD",
    "DEFAULT_WINDOW",
    "append_history",
    "check_regressions",
    "history_record",
    "load_history",
    "render_gate",
]

#: Where the trajectory ledger lives (one JSON object per line).
DEFAULT_HISTORY_PATH = Path("results") / "bench_history.jsonl"

#: A kernel more than this much slower than its baseline fails the gate.
DEFAULT_THRESHOLD = 0.20

#: Rolling-baseline width: median of the last N comparable runs.
DEFAULT_WINDOW = 5


def history_record(entries: Iterable[dict[str, Any]],
                   quick: bool,
                   cpus: int,
                   sha: str | None = None) -> dict[str, Any]:
    """One history line for a benchmark run.

    Args:
        entries: the ``BENCH_perf.json`` entry dicts (``name``,
            ``after_s``, ``speedup``, ...); only the production-path
            timing is tracked — the gate watches the code that ships.
        quick: whether this was a ``REPRO_BENCH_QUICK`` smoke run.
        cpus: host CPU count (parallel-engine timings scale with it).
        sha: commit id; defaults to the checkout's HEAD.

    Entries tagged ``"gated": true`` (e.g. the parallel-engine pairs
    measured on a single-CPU host, where ``jobs=4`` cannot beat
    serial) keep their honest numbers in the history but are excluded
    from gate baselines and never fail the gate themselves.
    """
    kernels: dict[str, dict[str, Any]] = {}
    for entry in entries:
        record = {"after_s": float(entry["after_s"]),
                  "speedup": round(float(entry["speedup"]), 4)}
        if entry.get("gated"):
            record["gated"] = True
        kernels[entry["name"]] = record
    return {
        "sha": sha if sha is not None else (git_sha() or "unknown"),
        "config": {"quick": bool(quick), "cpus": int(cpus)},
        "kernels": kernels,
    }


def append_history(record: dict[str, Any],
                   path: Path | str = DEFAULT_HISTORY_PATH) -> Path:
    """Append one run record to the history ledger (creating it)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_history(path: Path | str = DEFAULT_HISTORY_PATH,
                 ) -> list[dict[str, Any]]:
    """All history records, oldest first; missing file is empty history."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    with path.open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: bad history line: "
                                 f"{error}") from None
    return records


def _baseline_s(history: list[dict[str, Any]], kernel: str,
                config: dict[str, Any], window: int) -> float | None:
    """Median ``after_s`` of the last ``window`` same-config samples.

    Gated samples never enter a baseline: a timing recorded on a host
    that could not exercise the kernel honestly (single-CPU parallel
    runs) must not become the bar later runs are held to.
    """
    samples = [record["kernels"][kernel]["after_s"]
               for record in history
               if record.get("config") == config
               and kernel in record.get("kernels", {})
               and not record["kernels"][kernel].get("gated")]
    if not samples:
        return None
    return percentile(samples[-window:], 50)


def check_regressions(current: dict[str, Any],
                      history: list[dict[str, Any]],
                      threshold: float = DEFAULT_THRESHOLD,
                      window: int = DEFAULT_WINDOW) -> dict[str, Any]:
    """Compare one run against the rolling baseline of its predecessors.

    Args:
        current: the run's :func:`history_record` (not yet appended, or
            the last appended line — it is excluded from its own
            baseline by identity, not position, so pass the exact
            object loaded from the ledger when re-checking).
        history: prior records (:func:`load_history` order).
        threshold: fractional slowdown that fails (0.20 = 20 %).
        window: rolling-baseline width.

    Returns:
        A JSON-able report: per-kernel rows (``current_s``,
        ``baseline_s``, ``ratio``, ``status``) plus ``ok`` — False when
        any kernel regressed.  Kernels without a comparable baseline
        report ``no-baseline`` and never fail the gate (the first run
        on a new host must pass).  Kernels the run itself tagged
        ``gated`` report ``gated`` and are skipped outright — no
        comparison, no baseline contribution.
    """
    prior = [record for record in history if record is not current]
    rows = []
    failed = 0
    for kernel in sorted(current.get("kernels", {})):
        info = current["kernels"][kernel]
        current_s = info["after_s"]
        if info.get("gated"):
            rows.append({"kernel": kernel, "current_s": current_s,
                         "baseline_s": None, "ratio": None,
                         "status": "gated"})
            continue
        baseline = _baseline_s(prior, kernel, current.get("config"),
                               window)
        if baseline is None or baseline <= 0:
            rows.append({"kernel": kernel, "current_s": current_s,
                         "baseline_s": None, "ratio": None,
                         "status": "no-baseline"})
            continue
        ratio = current_s / baseline
        status = "ok" if ratio <= 1.0 + threshold else "regression"
        if status == "regression":
            failed += 1
        rows.append({"kernel": kernel, "current_s": current_s,
                     "baseline_s": baseline, "ratio": round(ratio, 4),
                     "status": status})
    return {"threshold": threshold, "window": window,
            "config": current.get("config"), "rows": rows,
            "n_regressions": failed, "ok": failed == 0}


def render_gate(report: dict[str, Any]) -> str:
    """Text verdict of :func:`check_regressions`, one line per kernel."""
    lines = []
    for row in report["rows"]:
        if row["baseline_s"] is None:
            note = ("gated on this host" if row["status"] == "gated"
                    else "no baseline yet")
            lines.append(f"  {row['kernel']:>24}: "
                         f"{to_ms(row['current_s']):9.3f} ms "
                         f"({note})")
            continue
        lines.append(f"  {row['kernel']:>24}: "
                     f"{to_ms(row['current_s']):9.3f} ms vs "
                     f"{to_ms(row['baseline_s']):9.3f} ms baseline "
                     f"({row['ratio']:.2f}x)  [{row['status']}]")
    verdict = ("PASS" if report["ok"]
               else f"FAIL: {report['n_regressions']} kernel(s) more "
                    f"than {report['threshold']:.0%} slower")
    header = (f"bench gate (window={report['window']}, "
              f"threshold={report['threshold']:.0%}, "
              f"config={json.dumps(report['config'], sort_keys=True)})")
    return "\n".join([header, *lines, verdict])
