"""Per-run safety-envelope dashboard (``python -m repro obs report``).

Renders one markdown (or HTML) dashboard for a run's output directory,
answering the question the paper's system-level design perspective keeps
asking: *is this design point still inside every safety envelope?*

Verdicts are sourced from the run's own artifacts and the repo's
physical models — never re-stated numbers:

* **Power budget** (Eq. 3): each ``fig4.csv`` design re-assessed through
  :func:`repro.thermal.budget.assess` against the 40 mW/cm^2 limit.
* **Thermal rise**: the same designs' power densities pushed through the
  Pennes perfusion model
  (:meth:`repro.thermal.model.TissueThermalModel.steady_state_rise_k`)
  and compared to the safe ``SAFE_TEMPERATURE_RISE_K`` window.
* **Link BER/goodput**: the ``fig7.csv`` feasibility sweep (QAM
  efficiency at the paper's BER target) plus the ARQ goodput ratio the
  default packet geometry sustains at that BER
  (:func:`repro.link.protocol.effective_goodput`).

The dashboard also aggregates fleet-style run statistics: p50/p95/p99 of
duration and peak RSS over every run manifest found in the given session
directories, using the nearest-rank :func:`repro.obs.metrics.percentile`.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.link.budget import DEFAULT_BER
from repro.link.packetizer import Packetizer
from repro.link.protocol import effective_goodput, expected_transmissions
from repro.obs.metrics import SUMMARY_PERCENTILES, percentile
from repro.thermal.budget import assess as assess_power
from repro.thermal.model import TissueThermalModel
from repro.units import SAFE_TEMPERATURE_RISE_K, mm2, mw, to_mw

__all__ = ["build_dashboard", "fleet_stats", "load_csv_rows",
           "render_html", "render_markdown", "safety_envelopes"]

#: Upper edge of the paper's safe heating window (Section 3.2: 1-2 degC).
#: Below SAFE_TEMPERATURE_RISE_K is unconditionally safe; between the
#: two the dashboard warns; above fails.
UPPER_TEMPERATURE_RISE_K = 2.0


def _to_mb(n_bytes: float) -> float:
    """Bytes to megabytes for display; no repro.units helper covers bytes."""
    return n_bytes / 1e6  # lint: ignore[units]


def load_csv_rows(path: Path | str) -> list[dict[str, str]]:
    """Rows of one results CSV as string dicts ([] when absent)."""
    path = Path(path)
    if not path.exists():
        return []
    with path.open("r", newline="", encoding="utf-8") as handle:
        return list(csv.DictReader(handle))


def _power_envelope(rows: list[dict[str, str]]) -> dict[str, Any]:
    """Eq. 3 power-density verdict over the fig4 design points."""
    worst_margin_mw = None
    worst_name = None
    n_safe = 0
    for row in rows:
        report = assess_power(mw(float(row["power_mw"])),
                              mm2(float(row["area_mm2"])))
        n_safe += int(report.safe)
        margin_mw = to_mw(report.margin_w)
        if worst_margin_mw is None or margin_mw < worst_margin_mw:
            worst_margin_mw, worst_name = margin_mw, row["name"]
    return {
        "envelope": "power_budget",
        "limit": "40 mW/cm^2 (Eq. 3)",
        "n_designs": len(rows),
        "n_within": n_safe,
        "worst_case": worst_name,
        "worst_margin_mw": (round(worst_margin_mw, 3)
                            if worst_margin_mw is not None else None),
        "verdict": "PASS" if rows and n_safe == len(rows) else
                   ("NO-DATA" if not rows else "FAIL"),
    }


def _thermal_envelope(rows: list[dict[str, str]]) -> dict[str, Any]:
    """Pennes-model temperature-rise verdict over the same designs."""
    model = TissueThermalModel()
    worst_rise = None
    worst_name = None
    n_within = 0
    n_window = 0
    for row in rows:
        density_w_m2 = (mw(float(row["power_mw"]))
                        / mm2(float(row["area_mm2"])))
        rise = model.steady_state_rise_k(density_w_m2)
        n_within += int(rise <= SAFE_TEMPERATURE_RISE_K)
        n_window += int(rise <= UPPER_TEMPERATURE_RISE_K)
        if worst_rise is None or rise > worst_rise:
            worst_rise, worst_name = rise, row["name"]
    if not rows:
        verdict = "NO-DATA"
    elif n_within == len(rows):
        verdict = "PASS"
    elif n_window == len(rows):
        # Inside the paper's 1-2 degC safe window but above the
        # conservative 1 K line: acceptable, flagged.
        verdict = "WARN"
    else:
        verdict = "FAIL"
    return {
        "envelope": "thermal_rise",
        "limit": f"dT <= {SAFE_TEMPERATURE_RISE_K:g} K "
                 f"(warn to {UPPER_TEMPERATURE_RISE_K:g} K)",
        "n_designs": len(rows),
        "n_within": n_within,
        "worst_case": worst_name,
        "worst_rise_k": (round(worst_rise, 3)
                         if worst_rise is not None else None),
        "verdict": verdict,
    }


def _link_envelope(rows: list[dict[str, str]]) -> dict[str, Any]:
    """BER-target feasibility and ARQ goodput verdict.

    Feasibility comes from the run's fig7 sweep (is at least one QAM
    order realizable per SoC at today's efficiency); the goodput ratio
    is the fraction of raw rate delivered as payload at the paper's BER
    target with the default packet geometry — it must stay above the
    pure framing efficiency minus a 1 % retransmission allowance.
    """
    socs: dict[str, bool] = {}
    for row in rows:
        feasible = row["feasible"].strip().lower() == "true"
        socs[row["soc"]] = socs.get(row["soc"], False) or feasible
    packetizer = Packetizer()
    payload_bits = packetizer.payload_bytes * 8
    overhead_bits = (Packetizer.HEADER_BYTES + Packetizer.CRC_BYTES) * 8
    goodput_ratio = effective_goodput(1.0, DEFAULT_BER, payload_bits,
                                      overhead_bits)
    framing_ratio = payload_bits / (payload_bits + overhead_bits)
    retx = expected_transmissions(DEFAULT_BER,
                                  payload_bits + overhead_bits)
    goodput_ok = goodput_ratio >= framing_ratio * 0.99
    # The verdict is the link's own safety property: the ARQ penalty at
    # the BER target.  Per-SoC feasibility is reported context — the
    # paper itself finds some designs unrealizable at today's QAM
    # efficiency, which is a result, not a telemetry failure.
    return {
        "envelope": "link_ber_goodput",
        "limit": f"BER <= {DEFAULT_BER:g}, ARQ penalty < 1%",
        "n_designs": len(socs),
        "n_within": sum(socs.values()),
        "worst_case": next((name for name, ok in sorted(socs.items())
                            if not ok), None),
        "goodput_ratio": round(goodput_ratio, 4),
        "expected_transmissions": round(retx, 4),
        "verdict": "NO-DATA" if not socs else
                   ("PASS" if goodput_ok else "FAIL"),
    }


def safety_envelopes(output_dir: Path | str) -> list[dict[str, Any]]:
    """All envelope verdicts for one run's output directory."""
    output_dir = Path(output_dir)
    fig4_rows = load_csv_rows(output_dir / "fig4.csv")
    fig7_rows = load_csv_rows(output_dir / "fig7.csv")
    return [_power_envelope(fig4_rows), _thermal_envelope(fig4_rows),
            _link_envelope(fig7_rows)]


# -- fleet aggregation -----------------------------------------------------

def fleet_stats(session_dirs: Sequence[Path | str]) -> dict[str, Any]:
    """Percentile aggregates over every run manifest in the sessions.

    Scans each directory for ``*.manifest.json`` files (one per saved
    experiment artifact) and reports nearest-rank p50/p95/p99 of run
    duration and peak RSS across the whole fleet of runs.
    """
    durations: list[float] = []
    rss: list[float] = []
    n_manifests = 0
    for session in session_dirs:
        for path in sorted(Path(session).glob("*.manifest.json")):
            try:
                manifest = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            n_manifests += 1
            if manifest.get("duration_s") is not None:
                durations.append(float(manifest["duration_s"]))
            if manifest.get("peak_rss_bytes") is not None:
                rss.append(float(manifest["peak_rss_bytes"]))

    def summarize(values: list[float]) -> dict[str, float] | None:
        if not values:
            return None
        return {f"p{pct}": percentile(values, pct)
                for pct in SUMMARY_PERCENTILES}

    return {"n_sessions": len(session_dirs), "n_manifests": n_manifests,
            "duration_s": summarize(durations),
            "peak_rss_bytes": summarize(rss)}


# -- dashboard assembly ----------------------------------------------------

def build_dashboard(output_dir: Path | str,
                    session_dirs: Iterable[Path | str] = (),
                    ) -> dict[str, Any]:
    """The full dashboard as JSON-able data (envelopes + fleet stats)."""
    sessions = [Path(output_dir), *map(Path, session_dirs)]
    return {
        "output_dir": str(output_dir),
        "envelopes": safety_envelopes(output_dir),
        "fleet": fleet_stats(sessions),
    }


def _verdict_cell(verdict: str) -> str:
    mark = {"PASS": "&#9989;", "FAIL": "&#10060;"}.get(verdict, "&#9888;")
    return f"{mark} {verdict}"


def render_markdown(dashboard: dict[str, Any]) -> str:
    """The dashboard as a markdown document."""
    lines = [f"# Safety-envelope dashboard — `{dashboard['output_dir']}`",
             "",
             "## Safety envelopes", "",
             "| envelope | limit | within | worst case | verdict |",
             "|---|---|---|---|---|"]
    for env in dashboard["envelopes"]:
        detail = []
        if env.get("worst_margin_mw") is not None:
            detail.append(f"margin {env['worst_margin_mw']:+.2f} mW")
        if env.get("worst_rise_k") is not None:
            detail.append(f"dT {env['worst_rise_k']:.3f} K")
        if env.get("goodput_ratio") is not None:
            detail.append(f"goodput {env['goodput_ratio']:.4f}")
        worst = env.get("worst_case") or "-"
        if detail:
            worst = f"{worst} ({', '.join(detail)})"
        lines.append(
            f"| {env['envelope']} | {env['limit']} "
            f"| {env['n_within']}/{env['n_designs']} | {worst} "
            f"| {env['verdict']} |")
    fleet = dashboard["fleet"]
    lines += ["", "## Fleet run statistics", "",
              f"{fleet['n_manifests']} run manifest(s) across "
              f"{fleet['n_sessions']} session dir(s).", ""]
    if fleet["duration_s"] or fleet["peak_rss_bytes"]:
        lines += ["| metric | p50 | p95 | p99 |", "|---|---|---|---|"]
        if fleet["duration_s"]:
            p = fleet["duration_s"]
            lines.append(f"| duration_s | {p['p50']:.4f} | {p['p95']:.4f}"
                         f" | {p['p99']:.4f} |")
        if fleet["peak_rss_bytes"]:
            p = fleet["peak_rss_bytes"]
            lines.append(
                f"| peak_rss_mb | {_to_mb(p['p50']):.1f} "
                f"| {_to_mb(p['p95']):.1f} | {_to_mb(p['p99']):.1f} |")
    else:
        lines.append("No manifests with timing data found.")
    verdicts = [env["verdict"] for env in dashboard["envelopes"]]
    if "FAIL" in verdicts:
        overall = "FAIL — check envelopes above"
    elif all(verdict == "PASS" for verdict in verdicts):
        overall = "PASS"
    else:
        overall = "PASS with warnings"
    lines += ["", f"**Overall: {overall}**", ""]
    return "\n".join(lines)


def render_html(dashboard: dict[str, Any]) -> str:
    """The dashboard as a standalone HTML page (no external assets)."""
    def table(headers: list[str], rows: list[list[str]]) -> str:
        head = "".join(f"<th>{cell}</th>" for cell in headers)
        body = "".join(
            "<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>"
            for row in rows)
        return (f"<table><thead><tr>{head}</tr></thead>"
                f"<tbody>{body}</tbody></table>")

    env_rows = []
    for env in dashboard["envelopes"]:
        env_rows.append([env["envelope"], env["limit"],
                         f"{env['n_within']}/{env['n_designs']}",
                         str(env.get("worst_case") or "-"),
                         _verdict_cell(env["verdict"])])
    fleet = dashboard["fleet"]
    fleet_rows = []
    if fleet["duration_s"]:
        p = fleet["duration_s"]
        fleet_rows.append(["duration_s", f"{p['p50']:.4f}",
                           f"{p['p95']:.4f}", f"{p['p99']:.4f}"])
    if fleet["peak_rss_bytes"]:
        p = fleet["peak_rss_bytes"]
        fleet_rows.append(["peak_rss_mb", f"{_to_mb(p['p50']):.1f}",
                           f"{_to_mb(p['p95']):.1f}",
                           f"{_to_mb(p['p99']):.1f}"])
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>Safety-envelope dashboard</title>",
        "<style>body{font-family:sans-serif;margin:2em}"
        "table{border-collapse:collapse;margin:1em 0}"
        "td,th{border:1px solid #999;padding:4px 10px;"
        "text-align:left}</style></head><body>",
        f"<h1>Safety-envelope dashboard — "
        f"{dashboard['output_dir']}</h1>",
        "<h2>Safety envelopes</h2>",
        table(["envelope", "limit", "within", "worst case", "verdict"],
              env_rows),
        f"<h2>Fleet run statistics</h2>"
        f"<p>{fleet['n_manifests']} run manifest(s) across "
        f"{fleet['n_sessions']} session dir(s).</p>",
    ]
    if fleet_rows:
        parts.append(table(["metric", "p50", "p95", "p99"], fleet_rows))
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
