"""Observability substrate: span tracing, metrics, and run manifests.

Every layer of the reproduction pipeline reports into this package:

* :mod:`repro.obs.trace` — nested wall-clock spans (``with span("x"):``),
  thread-safe, exportable as JSON or a rendered text tree.
* :mod:`repro.obs.metrics` — a process-wide registry of named counters,
  gauges, and histograms with snapshot/reset semantics.
* :mod:`repro.obs.manifest` — run provenance (git SHA, interpreter and
  NumPy versions, RNG seed, duration, peak RSS) written alongside every
  experiment CSV.
* :mod:`repro.obs.profile` — hotspot aggregation over recorded spans,
  backing ``python -m repro profile <experiment>``.

Instrumentation is **disabled by default** and the disabled paths are
deliberate no-ops (a flag check and a cached sentinel object), so the hot
paths this package watches stay as fast as the uninstrumented code —
verified by ``benchmarks/test_bench_obs_overhead.py``.
"""

from __future__ import annotations

from repro.obs.manifest import (
    build_manifest,
    current_seed,
    environment_info,
    seeded_rng,
    set_run_seed,
    write_manifest,
)
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    inc,
    metrics_enabled,
    observe,
    set_gauge,
)
from repro.obs.metrics import disable as disable_metrics
from repro.obs.metrics import enable as enable_metrics
from repro.obs.profile import hotspots, render_hotspots
from repro.obs.trace import (
    TRACER,
    Span,
    Tracer,
    span,
    span_from_dict,
    traced,
    tracing_enabled,
)
from repro.obs.trace import disable as disable_tracing
from repro.obs.trace import enable as enable_tracing


def enable_all() -> None:
    """Turn on both tracing and metrics collection."""
    enable_tracing()
    enable_metrics()


def disable_all() -> None:
    """Turn off tracing and metrics (instrumentation becomes no-ops)."""
    disable_tracing()
    disable_metrics()


def reset_all() -> None:
    """Drop all recorded spans and metric values."""
    TRACER.reset()
    REGISTRY.reset()


__all__ = [
    "REGISTRY", "TRACER", "MetricsRegistry", "Span", "Tracer",
    "build_manifest", "current_seed", "disable_all", "disable_metrics",
    "disable_tracing", "enable_all", "enable_metrics", "enable_tracing",
    "environment_info", "hotspots", "inc", "metrics_enabled", "observe",
    "render_hotspots", "reset_all", "seeded_rng", "set_gauge",
    "set_run_seed", "span", "span_from_dict", "traced", "tracing_enabled",
    "write_manifest",
]
