"""Observability substrate: span tracing, metrics, and run manifests.

Every layer of the reproduction pipeline reports into this package:

* :mod:`repro.obs.trace` — nested wall-clock spans (``with span("x"):``),
  thread-safe, exportable as JSON or a rendered text tree.
* :mod:`repro.obs.metrics` — a process-wide registry of named counters,
  gauges, and histograms with snapshot/reset semantics.
* :mod:`repro.obs.manifest` — run provenance (git SHA, interpreter and
  NumPy versions, RNG seed, duration, peak RSS) written alongside every
  experiment CSV.
* :mod:`repro.obs.profile` — hotspot aggregation over recorded spans,
  backing ``python -m repro profile <experiment>``.

Instrumentation is **disabled by default** and the disabled paths are
deliberate no-ops (a flag check and a cached sentinel object), so the hot
paths this package watches stay as fast as the uninstrumented code —
verified by ``benchmarks/test_bench_obs_overhead.py``.
"""

from __future__ import annotations

from repro.obs.events import (
    ENGINE_SCOPE,
    EVENTS,
    Event,
    EventLog,
    driver_scope,
    emit,
    events_enabled,
)
from repro.obs.events import disable as disable_events
from repro.obs.events import enable as enable_events
from repro.obs.manifest import (
    build_manifest,
    current_seed,
    environment_info,
    seeded_rng,
    set_run_seed,
    write_manifest,
)
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    inc,
    metrics_enabled,
    observe,
    set_gauge,
)
from repro.obs.metrics import disable as disable_metrics
from repro.obs.metrics import enable as enable_metrics
from repro.obs.profile import hotspots, render_hotspots
from repro.obs.trace import (
    TRACER,
    Span,
    Tracer,
    span,
    span_from_dict,
    traced,
    tracing_enabled,
)
from repro.obs.trace import disable as disable_tracing
from repro.obs.trace import enable as enable_tracing


def enable_all() -> None:
    """Turn on tracing, metrics, and event-timeline collection."""
    enable_tracing()
    enable_metrics()
    enable_events()


def disable_all() -> None:
    """Turn off tracing, metrics, and events (instrumentation becomes
    no-ops)."""
    disable_tracing()
    disable_metrics()
    disable_events()


def reset_all() -> None:
    """Drop all recorded spans, metric values, and timeline events."""
    TRACER.reset()
    REGISTRY.reset()
    EVENTS.reset()


__all__ = [
    "ENGINE_SCOPE", "EVENTS", "Event", "EventLog", "REGISTRY", "TRACER",
    "MetricsRegistry", "Span", "Tracer",
    "build_manifest", "current_seed", "disable_all", "disable_events",
    "disable_metrics", "disable_tracing", "driver_scope", "emit",
    "enable_all", "enable_events", "enable_metrics", "enable_tracing",
    "environment_info", "events_enabled", "hotspots", "inc",
    "metrics_enabled", "observe", "render_hotspots", "reset_all",
    "seeded_rng", "set_gauge", "set_run_seed", "span", "span_from_dict",
    "traced", "tracing_enabled", "write_manifest",
]
