"""Hotspot aggregation over recorded spans.

Collapses a span forest into per-name totals (calls, total time, self
time) and renders the top-N — the report behind
``python -m repro profile <experiment>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.obs.trace import Span
from repro.units import to_ms

__all__ = ["Hotspot", "hotspots", "render_hotspots"]


@dataclass
class Hotspot:
    """Aggregate timing for all spans sharing one name.

    Attributes:
        name: the span name.
        calls: number of spans recorded under it.
        total_s: summed wall-clock duration (includes children).
        self_s: summed duration minus child time — the ranking key.
    """

    name: str
    calls: int = 0
    total_s: float = 0.0
    self_s: float = 0.0


def hotspots(roots: Iterable[Span], top_n: int | None = None,
             ) -> list[Hotspot]:
    """Aggregate a span forest by name, ranked by self time.

    Args:
        roots: top-level spans (e.g. ``TRACER.roots``).
        top_n: truncate to the N hottest names (None = all).
    """
    table: dict[str, Hotspot] = {}
    for root in roots:
        for node in root.walk():
            spot = table.get(node.name)
            if spot is None:
                spot = table[node.name] = Hotspot(node.name)
            spot.calls += 1
            spot.total_s += node.duration_s
            spot.self_s += node.self_time_s
    ranked = sorted(table.values(), key=lambda s: s.self_s, reverse=True)
    return ranked[:top_n] if top_n is not None else ranked


def render_hotspots(spots: list[Hotspot]) -> str:
    """Render hotspots as an aligned text table with a share column."""
    if not spots:
        return "(no spans recorded)"
    total_self = sum(s.self_s for s in spots) or 1.0
    name_w = max(len("span"), max(len(s.name) for s in spots))
    lines = [f"{'span'.ljust(name_w)}  {'calls':>6}  {'self':>10}  "
             f"{'total':>10}  {'share':>6}",
             f"{'-' * name_w}  {'-' * 6}  {'-' * 10}  {'-' * 10}  "
             f"{'-' * 6}"]
    for spot in spots:
        share = spot.self_s / total_self * 100.0
        lines.append(
            f"{spot.name.ljust(name_w)}  {spot.calls:>6d}  "
            f"{to_ms(spot.self_s):>8.1f}ms  {to_ms(spot.total_s):>8.1f}ms  "
            f"{share:>5.1f}%")
    return "\n".join(lines)
