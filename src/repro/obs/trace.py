"""Span tracer: nested wall-clock timing with attributes.

Usage — context manager (the common form)::

    from repro.obs import span

    with span("fig5.sweep", socs=8) as sp:
        ...
        sp.set(rows=len(rows))

or decorator::

    @traced("link.measure_ber")
    def measure_ber(...): ...

Spans nest per thread (each thread keeps its own open-span stack; roots
from every thread land in one shared, locked list), and the recorded
forest exports as JSON-able dicts (:meth:`Tracer.to_dicts`) or a rendered
text tree (:meth:`Tracer.render_tree`).

Tracing is disabled by default.  When disabled, :func:`span` returns a
cached no-op context manager — one flag check and zero allocations — so
instrumented hot paths cost essentially nothing (see
``benchmarks/test_bench_obs_overhead.py``).
"""

from __future__ import annotations

import functools
import json
import sys
import threading
import time

from repro.obs.events import emit as _emit_event
from repro.obs.events import events_enabled as _events_enabled
from repro.units import to_ms, to_us
from typing import Any, Callable, Iterable

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None


def _peak_rss_bytes() -> int | None:
    """Current peak RSS (bytes), or None where unavailable."""
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    return peak if sys.platform == "darwin" else peak * 1024

__all__ = ["Span", "Tracer", "TRACER", "span", "span_from_dict", "traced",
           "enable", "disable", "tracing_enabled"]


class Span:
    """One timed region: name, attributes, duration, and children.

    Spans are created by :func:`span` / :meth:`Tracer.start`; user code
    only reads them (after the run) or calls :meth:`set` inside the
    ``with`` block to attach attributes.
    """

    __slots__ = ("name", "attrs", "start_s", "end_s", "children",
                 "thread_name", "rss_delta_bytes", "_rss_start",
                 "_tracer")

    def __init__(self, name: str, attrs: dict[str, Any],
                 tracer: "Tracer") -> None:
        self.name = name
        self.attrs = attrs
        self.start_s = 0.0
        self.end_s = 0.0
        self.children: list[Span] = []
        self.thread_name = threading.current_thread().name
        self.rss_delta_bytes: int | None = None
        self._rss_start: int | None = None
        self._tracer = tracer

    @property
    def duration_s(self) -> float:
        """Wall-clock duration (0.0 while the span is still open)."""
        return max(0.0, self.end_s - self.start_s)

    @property
    def self_time_s(self) -> float:
        """Duration not attributed to child spans."""
        return max(0.0, self.duration_s
                   - sum(c.duration_s for c in self.children))

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        if _events_enabled():
            _emit_event("span_start", self.name, **self.attrs)
        self._rss_start = _peak_rss_bytes()
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.end_s = time.perf_counter()
        rss_end = _peak_rss_bytes()
        if rss_end is not None and self._rss_start is not None:
            # Peak RSS is monotonic: a positive delta means this span
            # pushed the process to a new high-water mark.
            self.rss_delta_bytes = rss_end - self._rss_start
        if _events_enabled():
            _emit_event("span_end", self.name, **self.attrs)
        self._tracer._pop(self)
        return False

    def to_dict(self) -> dict[str, Any]:
        """JSON-able representation of this span and its subtree."""
        record: dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration_s,
            "self_time_s": self.self_time_s,
            "thread": self.thread_name,
        }
        if self.rss_delta_bytes:
            record["rss_delta_bytes"] = self.rss_delta_bytes
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self.children:
            record["children"] = [c.to_dict() for c in self.children]
        return record

    def walk(self) -> Iterable["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {to_ms(self.duration_s):.3f} ms, "
                f"{len(self.children)} children)")


class _NoopSpan:
    """Shared do-nothing stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class Tracer:
    """Thread-safe collector of span forests.

    Each thread nests spans on its own stack; completed root spans are
    appended to a shared list under a lock.  One process-wide instance
    (:data:`TRACER`) backs the module-level :func:`span` helper; separate
    instances can be created for isolated collection (tests do this).
    """

    def __init__(self) -> None:
        self._roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- span lifecycle (called by Span.__enter__/__exit__) ---------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, node: Span) -> None:
        self._stack().append(node)

    def _pop(self, node: Span) -> None:
        stack = self._stack()
        # Tolerate out-of-order exits (e.g. a generator finalized late):
        # drop everything above the span being closed.
        while stack:
            top = stack.pop()
            if top is node:
                break
        if stack:
            stack[-1].children.append(node)
        else:
            with self._lock:
                self._roots.append(node)

    # -- public API -------------------------------------------------------

    def start(self, name: str, **attrs: Any) -> Span:
        """Open a new span (use as ``with tracer.start("x"): ...``)."""
        return Span(name, attrs, self)

    def reset(self) -> None:
        """Discard all completed and open spans."""
        with self._lock:
            self._roots.clear()
        self._local = threading.local()

    def adopt(self, roots: Iterable[Span]) -> None:
        """Append externally recorded root spans to this tracer's forest.

        Used by the parallel experiment engine to merge span trees
        rebuilt (via :func:`span_from_dict`) from worker-process exports
        into the parent trace.
        """
        with self._lock:
            self._roots.extend(roots)

    @property
    def roots(self) -> list[Span]:
        """Completed top-level spans, in completion order."""
        with self._lock:
            return list(self._roots)

    def span_count(self) -> int:
        """Total number of recorded spans across all roots."""
        return sum(1 for root in self.roots for _ in root.walk())

    def to_dicts(self) -> list[dict[str, Any]]:
        """The whole recorded forest as JSON-able dicts."""
        return [root.to_dict() for root in self.roots]

    def to_json(self, indent: int | None = 2) -> str:
        """The whole recorded forest serialized to JSON."""
        return json.dumps(self.to_dicts(), indent=indent, default=str)

    def render_tree(self) -> str:
        """Render the span forest as an indented text tree with timings."""
        lines: list[str] = []
        for root in self.roots:
            self._render(root, prefix="", is_last=True, is_root=True,
                         lines=lines)
        return "\n".join(lines) if lines else "(no spans recorded)"

    def _render(self, node: Span, prefix: str, is_last: bool,
                is_root: bool, lines: list[str]) -> None:
        if is_root:
            head, child_prefix = "", ""
        else:
            head = prefix + ("`- " if is_last else "|- ")
            child_prefix = prefix + ("   " if is_last else "|  ")
        attrs = ""
        if node.attrs:
            inner = ", ".join(f"{k}={v}" for k, v in node.attrs.items())
            attrs = f"  ({inner})"
        lines.append(f"{head}{node.name}  {_fmt_duration(node.duration_s)}"
                     f"{attrs}")
        for i, child in enumerate(node.children):
            self._render(child, child_prefix,
                         is_last=(i == len(node.children) - 1),
                         is_root=False, lines=lines)


def _fmt_duration(seconds: float) -> str:
    """Human-scale duration: '3.21 s', '14.5 ms', or '87.0 us'."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{to_ms(seconds):.1f} ms"
    return f"{to_us(seconds):.1f} us"


#: The process-wide tracer behind :func:`span`.
TRACER = Tracer()

_enabled = False


def enable() -> None:
    """Start recording spans process-wide."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Stop recording; :func:`span` reverts to the no-op fast path."""
    global _enabled
    _enabled = False


def tracing_enabled() -> bool:
    """True while spans are being recorded."""
    return _enabled


def span(name: str, **attrs: Any):
    """Open a span on the global tracer (no-op while tracing is disabled).

    Returns a context manager either way; the disabled path returns a
    cached sentinel whose ``set`` / ``__enter__`` / ``__exit__`` do
    nothing.
    """
    if not _enabled:
        return _NOOP
    return Span(name, attrs, TRACER)


def span_from_dict(record: dict[str, Any],
                   tracer: Tracer | None = None) -> Span:
    """Rebuild a :class:`Span` subtree from its :meth:`Span.to_dict` form.

    The inverse of the JSON export, up to the information the export
    keeps: absolute start/end times are not preserved (only durations),
    so rebuilt spans report the right ``duration_s`` / ``self_time_s``
    but are not aligned on the original clock.  Used to adopt spans
    recorded in worker processes into the parent tracer
    (:meth:`Tracer.adopt`).
    """
    node = Span(record["name"], dict(record.get("attrs", {})),
                tracer or TRACER)
    node.start_s = 0.0
    node.end_s = float(record.get("duration_s", 0.0))
    node.thread_name = record.get("thread", node.thread_name)
    node.rss_delta_bytes = record.get("rss_delta_bytes")
    node.children = [span_from_dict(child, tracer)
                     for child in record.get("children", [])]
    return node


def traced(name: str | None = None) -> Callable:
    """Decorator form of :func:`span`; span name defaults to the function's
    qualified name."""
    def decorate(func: Callable) -> Callable:
        label = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _enabled:
                return func(*args, **kwargs)
            with Span(label, {}, TRACER):
                return func(*args, **kwargs)

        return wrapper
    return decorate
