"""Telemetry timeline: one deterministic event stream per run.

The event log unifies what the other ``repro.obs`` substrates record —
span open/close (:mod:`repro.obs.trace`), metric updates
(:mod:`repro.obs.metrics`), fault injections and recoveries
(:mod:`repro.fault.injector`), cache hits/misses (:mod:`repro.cache`),
and parallel result-transport records (:mod:`repro.perf.parallel`,
kind ``transport``) — into a single ordered timeline that serializes
as JSONL (``events.jsonl`` next to the run's CSVs).

Determinism is the design constraint: events are ordered by a monotonic
sequence number, never wall clock, and carry no timestamps, durations,
PIDs, or memory numbers.  For a fixed seed the timeline of a run is
therefore *byte-identical* across repetitions — serial or
``run_all(jobs=N)`` — which is what makes run-vs-run diffing
(:mod:`repro.obs.analyze`) trustworthy.

Every event is tagged with the experiment driver it belongs to
(:func:`driver_scope`, entered by ``repro.experiments.run_module`` and
the cached runner).  Events emitted outside any driver — the engine's
own spans, pool bookkeeping — carry the empty driver tag and are
excluded from run-vs-run diffs by default, because the serial and
parallel engines legitimately differ there.

Parallel runs merge deterministically: each worker exports its event
block with its payload, and the parent adopts the blocks in driver
submission order (:meth:`EventLog.adopt`), reassigning sequence numbers
so the merged timeline is gapless and byte-stable for a fixed seed.

Collection is disabled by default; :func:`emit` is a no-op (one module
flag check) until :func:`enable` is called, preserving the <5 %
disabled-instrumentation budget enforced by
``benchmarks/test_bench_obs_overhead.py``.  Span and metric events are
emitted *by* the trace and metrics substrates, inside their own enabled
paths — so a timeline needs tracing and metrics on too.  Use
``repro.obs.enable_all()`` (or the CLI's ``--events``, which implies
``--trace --metrics``) rather than :func:`enable` alone.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = ["Event", "EventLog", "EVENTS", "emit", "enable", "disable",
           "events_enabled", "driver_scope", "current_driver",
           "ENGINE_SCOPE"]

#: Driver tag of events emitted outside any experiment driver.
ENGINE_SCOPE = ""

#: Event kinds the timeline records.
KINDS = ("span_start", "span_end", "metric", "fault", "cache",
         "transport")


@dataclass(frozen=True)
class Event:
    """One timeline entry.

    Attributes:
        seq: monotonic position in the run's timeline (0-based, gapless).
        driver: experiment id the event belongs to ("" = engine scope).
        kind: event category ("span_start", "span_end", "metric",
            "fault", "cache", "transport").
        name: what it concerns (span name, metric name, fault
            ``domain.kind``, cache operation).
        attrs: JSON-able, *deterministic* specifics — values derived
            from inputs and seeds only, never from the clock or the
            host.
    """

    seq: int
    driver: str
    kind: str
    name: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able representation (attr keys sorted for stability)."""
        return {"seq": self.seq, "driver": self.driver, "kind": self.kind,
                "name": self.name,
                "attrs": dict(sorted(self.attrs.items()))}

    def to_jsonl(self) -> str:
        """The event's canonical single-line JSON form."""
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


class EventLog:
    """Thread-safe, append-only event collector with driver tagging.

    One process-wide instance (:data:`EVENTS`) backs the module-level
    :func:`emit`; isolated instances can be created for tests.
    """

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._lock = threading.Lock()
        self._driver = ENGINE_SCOPE

    # -- emission ---------------------------------------------------------

    def emit(self, kind: str, name: str, /, **attrs: Any) -> Event:
        """Append one event under the current driver scope.

        ``kind`` and ``name`` are positional-only so attrs may reuse
        those words (e.g. the ``cache.put`` span's ``kind=`` attr).
        """
        with self._lock:
            event = Event(seq=len(self._events), driver=self._driver,
                          kind=kind, name=name, attrs=attrs)
            self._events.append(event)
        return event

    @contextmanager
    def scope(self, driver: str) -> Iterator[None]:
        """Tag events emitted inside the block with ``driver``.

        Reentrant: nested scopes restore the enclosing tag on exit (the
        cached runner wraps :func:`repro.experiments.run_module`, which
        scopes the same driver again).
        """
        previous = self._driver
        self._driver = driver
        try:
            yield
        finally:
            self._driver = previous

    # -- access / lifecycle ----------------------------------------------

    @property
    def events(self) -> list[Event]:
        """The recorded timeline, in sequence order."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def reset(self) -> None:
        """Drop every recorded event and leave driver scope."""
        with self._lock:
            self._events.clear()
            self._driver = ENGINE_SCOPE

    # -- serialization / merge -------------------------------------------

    def to_dicts(self) -> list[dict[str, Any]]:
        """The whole timeline as JSON-able dicts."""
        return [event.to_dict() for event in self.events]

    def to_jsonl(self) -> str:
        """Canonical JSONL text (one event per line, trailing newline).

        Byte-stable for a fixed seed: events carry no clocks, and
        sequence numbers are assignment-ordered.
        """
        lines = [event.to_jsonl() for event in self.events]
        return "\n".join(lines) + "\n" if lines else ""

    def write_jsonl(self, path: Path | str) -> Path:
        """Write the timeline to ``path`` and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path

    def export_tail(self, start: int) -> list[dict[str, Any]]:
        """Events from position ``start`` onward as JSON-able dicts.

        With :meth:`truncate`, this is the capture primitive the DAG
        scheduler uses: snapshot ``len(log)`` before a stage, export
        the stage's block after it, truncate, and re-:meth:`adopt` the
        blocks in canonical order at the end of the graph — so every
        valid dispatch order serializes to the same timeline.
        """
        with self._lock:
            return [event.to_dict() for event in self._events[start:]]

    def truncate(self, start: int) -> int:
        """Drop events from position ``start`` onward; returns how many
        were removed (see :meth:`export_tail`)."""
        with self._lock:
            removed = max(len(self._events) - start, 0)
            del self._events[start:]
            return removed

    def adopt(self, records: Iterable[dict[str, Any]]) -> int:
        """Append externally recorded events, reassigning sequence
        numbers.

        The parallel engine calls this once per worker payload, in
        driver submission order, so the merged timeline is identical
        run-to-run regardless of completion order.  Returns the number
        of events adopted.
        """
        adopted = 0
        with self._lock:
            for record in records:
                self._events.append(Event(
                    seq=len(self._events),
                    driver=record.get("driver", ENGINE_SCOPE),
                    kind=record["kind"],
                    name=record["name"],
                    attrs=dict(record.get("attrs", {}))))
                adopted += 1
        return adopted


#: The process-wide event log behind :func:`emit`.
EVENTS = EventLog()

_enabled = False


def enable() -> None:
    """Start recording events process-wide."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Stop recording; :func:`emit` reverts to the no-op fast path."""
    global _enabled
    _enabled = False


def events_enabled() -> bool:
    """True while :func:`emit` records into :data:`EVENTS`."""
    return _enabled


def emit(kind: str, name: str, /, **attrs: Any) -> None:
    """Record one event on the global log; no-op while disabled."""
    if _enabled:
        EVENTS.emit(kind, name, **attrs)


@contextmanager
def driver_scope(driver: str) -> Iterator[None]:
    """Tag events emitted inside the block with ``driver`` (reentrant;
    cheap no-op pass-through when collection is disabled)."""
    if not _enabled:
        yield
        return
    with EVENTS.scope(driver):
        yield


def current_driver() -> str:
    """The driver tag events are currently emitted under."""
    return EVENTS._driver
