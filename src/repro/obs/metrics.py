"""Metrics registry: named counters, gauges, and histograms.

One process-wide :data:`REGISTRY` collects everything the instrumented
layers emit — ``link.mc_symbols_simulated``, ``dnn.macs_executed``,
``compress.ratio``, ... — with :meth:`MetricsRegistry.snapshot` /
:meth:`MetricsRegistry.reset` semantics so a CLI run (or a benchmark
session) can scope its own window of observation.

The module-level helpers :func:`inc`, :func:`set_gauge`, and
:func:`observe` are the instrumentation surface used inside hot paths:
they check one module flag and return immediately while metrics are
disabled (the default), so the instrumented code pays essentially nothing
until someone asks for numbers.  Direct method calls on a registry
instance always record, independent of the flag — that is the path the
benchmark harness uses to build its manifest.
"""

from __future__ import annotations

import threading
from typing import Any, Sequence

from repro.obs.events import emit as _emit_event
from repro.obs.events import events_enabled as _events_enabled

__all__ = ["MetricsRegistry", "REGISTRY", "inc", "set_gauge", "observe",
           "enable", "disable", "metrics_enabled", "percentile"]

#: Cap on raw values retained per histogram (protects long runs).
_HISTOGRAM_CAP = 4096

#: Percentiles reported by every histogram summary.
SUMMARY_PERCENTILES = (50, 95, 99)


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of a non-empty sample.

    The nearest-rank method returns an actual observed value (no
    interpolation), so summaries stay exact and deterministic for
    integer-valued metrics.

    Raises:
        ValueError: on an empty sample or a percentile outside [0, 100].
    """
    if not values:
        raise ValueError("percentile of empty sample")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(values)
    if pct == 0.0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * pct // 100))  # ceil without floats
    return ordered[int(rank) - 1]


class _Histogram:
    """Streaming summary plus a bounded sample of raw values."""

    __slots__ = ("count", "total", "min", "max", "values")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if len(self.values) < _HISTOGRAM_CAP:
            self.values.append(value)

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0}
        summary = {
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count,
            "min": self.min,
            "max": self.max,
        }
        # Percentiles come from the retained sample (exact up to the
        # retention cap; the streaming moments above are always exact).
        for pct in SUMMARY_PERCENTILES:
            summary[f"p{pct}"] = percentile(self.values, pct)
        return summary


class MetricsRegistry:
    """Thread-safe store of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = _Histogram()
            hist.observe(value)

    def counter(self, name: str) -> float:
        """Current value of a counter (0.0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def snapshot(self) -> dict[str, Any]:
        """All current values as one JSON-able dict."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {name: hist.summary() for name, hist
                               in sorted(self._histograms.items())},
            }

    def reset(self) -> None:
        """Drop every metric."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def export_state(self) -> dict[str, Any]:
        """Full registry state for cross-process transfer.

        Unlike :meth:`snapshot` (a human-facing summary), the export
        keeps each histogram's streaming moments *and* its retained raw
        samples so a parent process can merge it losslessly with
        :meth:`merge_state`.
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {"count": hist.count, "total": hist.total,
                           "min": hist.min, "max": hist.max,
                           "values": list(hist.values)}
                    for name, hist in self._histograms.items()},
            }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold a worker's :meth:`export_state` into this registry.

        Counters add, gauges take the incoming value (last writer wins,
        matching serial semantics), and histograms merge their streaming
        moments; retained raw samples are concatenated up to the
        per-histogram cap.
        """
        with self._lock:
            for name, value in state.get("counters", {}).items():
                self._counters[name] = (self._counters.get(name, 0.0)
                                        + value)
            self._gauges.update(state.get("gauges", {}))
            for name, incoming in state.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = _Histogram()
                hist.count += incoming["count"]
                hist.total += incoming["total"]
                hist.min = min(hist.min, incoming["min"])
                hist.max = max(hist.max, incoming["max"])
                room = _HISTOGRAM_CAP - len(hist.values)
                if room > 0:
                    hist.values.extend(incoming["values"][:room])

    def render(self) -> str:
        """Snapshot rendered as aligned ``name  value`` lines."""
        snap = self.snapshot()
        lines: list[str] = []
        entries: list[tuple[str, str]] = []
        for name, value in snap["counters"].items():
            entries.append((name, _fmt_number(value)))
        for name, value in snap["gauges"].items():
            entries.append((name, _fmt_number(value)))
        for name, summary in snap["histograms"].items():
            if summary["count"]:
                entries.append(
                    (name, f"n={summary['count']} "
                           f"mean={_fmt_number(summary['mean'])} "
                           f"min={_fmt_number(summary['min'])} "
                           f"max={_fmt_number(summary['max'])}"))
            else:
                entries.append((name, "n=0"))
        if not entries:
            return "(no metrics recorded)"
        width = max(len(name) for name, _ in entries)
        for name, text in entries:
            lines.append(f"{name.ljust(width)}  {text}")
        return "\n".join(lines)


def _fmt_number(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


#: The process-wide registry behind the module-level helpers.
REGISTRY = MetricsRegistry()

_enabled = False


def enable() -> None:
    """Start recording through the module-level helpers."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Make the module-level helpers no-ops again (the default)."""
    global _enabled
    _enabled = False


def metrics_enabled() -> bool:
    """True while the module-level helpers record into :data:`REGISTRY`."""
    return _enabled


def inc(name: str, value: float = 1.0) -> None:
    """Increment a counter on the global registry; no-op when disabled."""
    if _enabled:
        REGISTRY.inc(name, value)
        if _events_enabled():
            _emit_event("metric", name, op="inc", value=value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the global registry; no-op when disabled."""
    if _enabled:
        REGISTRY.set_gauge(name, value)
        if _events_enabled():
            _emit_event("metric", name, op="gauge", value=value)


def observe(name: str, value: float) -> None:
    """Record a histogram sample on the global registry; no-op when
    disabled."""
    if _enabled:
        REGISTRY.observe(name, value)
        if _events_enabled():
            _emit_event("metric", name, op="observe", value=value)
