"""Trace analytics over the event timeline (``python -m repro obs``).

Consumes the ``events.jsonl`` files written by ``--events`` runs
(:mod:`repro.obs.events`) and answers the questions a run log should:
where did the work go (:func:`rollup`), what was the longest dependency
chain (:func:`critical_path`), and what changed between two runs
(:func:`diff_runs`).

Everything here is deterministic by construction: analytics are computed
from event *structure* (span nesting, event counts), never from wall
clock, so for a fixed seed every report is byte-identical across
repetitions — the property that makes run-vs-run diffing (cold vs warm
cache, serial vs ``--jobs 4``, baseline vs fault plan) trustworthy.  An
optional timed mode (:func:`critical_path_spans`) reads recorded span
durations from a ``trace.json`` instead, trading byte-stability for
wall-clock attribution.

Engine-scope events (driver tag ``""``) are excluded from diffs by
default: the serial and parallel engines legitimately record different
spans (``experiments.run_all`` vs ``experiments.run_parallel``), and
including them would report spurious deltas between runs whose actual
experiment work is identical.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.obs.events import ENGINE_SCOPE

__all__ = [
    "build_span_tree",
    "critical_path",
    "critical_path_spans",
    "diff_runs",
    "filter_events",
    "load_events",
    "render_critical_path",
    "render_diff",
    "render_rollup",
    "render_summary",
    "rollup",
    "split_by_driver",
    "summarize",
]

#: Label used for engine-scope events in human-readable reports.
ENGINE_LABEL = "<engine>"


def load_events(path: Path | str) -> list[dict[str, Any]]:
    """Parse one ``events.jsonl`` file into event dicts (seq order)."""
    path = Path(path)
    events = []
    with path.open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{number}: not valid JSONL: {error}") from None
    return events


def split_by_driver(
        events: Iterable[dict[str, Any]]) -> dict[str, list[dict[str, Any]]]:
    """Group events by driver tag, preserving first-appearance order of
    drivers and seq order within each."""
    streams: dict[str, list[dict[str, Any]]] = {}
    for event in events:
        streams.setdefault(event.get("driver", ENGINE_SCOPE),
                           []).append(event)
    return streams


def filter_events(events: Iterable[dict[str, Any]],
                  driver: str | None = None,
                  kind: str | None = None,
                  name: str | None = None) -> list[dict[str, Any]]:
    """Select events by driver tag, kind, and/or name substring."""
    selected = []
    for event in events:
        if driver is not None and event.get("driver") != driver:
            continue
        if kind is not None and event.get("kind") != kind:
            continue
        if name is not None and name not in event.get("name", ""):
            continue
        selected.append(event)
    return selected


# -- span-tree reconstruction ---------------------------------------------

def build_span_tree(stream: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Rebuild the span nesting of one driver's event stream.

    Returns root nodes ``{name, children, self_events, total_events}``
    where ``self_events`` counts non-span events recorded directly under
    the span and ``total_events`` includes everything nested below it.
    Non-span events outside any open span are dropped (they belong to no
    stage).  Unmatched ``span_end`` events are tolerated — a stream
    sliced by driver tag can only lose *engine* spans, but defensiveness
    is cheap.
    """
    roots: list[dict[str, Any]] = []
    stack: list[dict[str, Any]] = []
    for event in stream:
        kind = event.get("kind")
        if kind == "span_start":
            node = {"name": event["name"], "children": [],
                    "self_events": 0, "total_events": 0}
            (stack[-1]["children"] if stack else roots).append(node)
            stack.append(node)
        elif kind == "span_end":
            if stack:
                stack.pop()
        elif stack:
            stack[-1]["self_events"] += 1
    for root in roots:
        _fill_totals(root)
    return roots


def _fill_totals(node: dict[str, Any]) -> int:
    """Post-order total: own events plus everything nested (each child
    span also counts as one unit of work, so empty spans still weigh)."""
    total = node["self_events"]
    for child in node["children"]:
        total += 1 + _fill_totals(child)
    node["total_events"] = total
    return total


def rollup(events: Iterable[dict[str, Any]],
           include_engine: bool = True) -> list[dict[str, Any]]:
    """Per-stage self/total rollup across the whole timeline.

    Returns one row per ``(driver, span name)``: call count, total
    events under the span, and self events (total minus nested stages)
    — the structural analogue of a profiler's total/self time, and
    byte-stable for a fixed seed.
    """
    rows: list[dict[str, Any]] = []
    for driver, stream in split_by_driver(events).items():
        if driver == ENGINE_SCOPE and not include_engine:
            continue
        stats: dict[str, dict[str, int]] = {}

        def visit(node: dict[str, Any]) -> None:
            entry = stats.setdefault(node["name"],
                                     {"calls": 0, "total": 0, "self": 0})
            entry["calls"] += 1
            entry["total"] += node["total_events"]
            entry["self"] += node["self_events"]
            for child in node["children"]:
                visit(child)

        for root in build_span_tree(stream):
            visit(root)
        for name, entry in stats.items():
            rows.append({"driver": driver or ENGINE_LABEL, "span": name,
                         "calls": entry["calls"],
                         "total_events": entry["total"],
                         "self_events": entry["self"]})
    rows.sort(key=lambda row: (-row["total_events"], row["driver"],
                               row["span"]))
    return rows


# -- critical path ---------------------------------------------------------

def critical_path(events: Iterable[dict[str, Any]],
                  driver: str | None = None) -> list[dict[str, Any]]:
    """The heaviest span chain of the timeline, by structural weight.

    Starting from the heaviest root span (of the requested driver, or of
    the heaviest driver when omitted), descend into the heaviest child at
    every level; ties break toward the earlier span, so the path is
    deterministic.  Each step reports its driver, span name, total and
    self event counts, and its share of the run's driver-scoped events.
    """
    events = list(events)
    streams = split_by_driver(events)
    candidates: list[tuple[str, dict[str, Any]]] = []
    for tag, stream in streams.items():
        if driver is not None and tag != driver:
            continue
        if driver is None and tag == ENGINE_SCOPE:
            continue
        for root in build_span_tree(stream):
            candidates.append((tag, root))
    if not candidates:
        return []
    run_total = sum(1 + root["total_events"] for _, root in candidates)
    tag, node = max(candidates,
                    key=lambda item: item[1]["total_events"])
    path = []
    while True:
        share = (100.0 * (1 + node["total_events"]) / run_total
                 if run_total else 0.0)
        path.append({"driver": tag or ENGINE_LABEL, "span": node["name"],
                     "total_events": node["total_events"],
                     "self_events": node["self_events"],
                     "share_pct": round(share, 2)})
        if not node["children"]:
            return path
        node = max(node["children"],
                   key=lambda child: child["total_events"])


def critical_path_spans(
        span_records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Timed critical path over recorded ``trace.json`` spans.

    The wall-clock counterpart of :func:`critical_path`: descends into
    the child with the largest recorded duration.  Durations vary run to
    run, so this mode is *not* byte-stable — use it for attribution, not
    regression baselines.
    """
    if not span_records:
        return []

    def duration(record: dict[str, Any]) -> float:
        return float(record.get("duration_s") or 0.0)

    node = max(span_records, key=duration)
    total = sum(duration(record) for record in span_records)
    path = []
    while True:
        own = duration(node)
        children = node.get("children") or []
        self_s = own - sum(duration(child) for child in children)
        path.append({"span": node["name"], "total_s": round(own, 6),
                     "self_s": round(max(self_s, 0.0), 6),
                     "share_pct": round(100.0 * own / total, 2)
                     if total else 0.0})
        if not children:
            return path
        node = max(children, key=duration)


# -- run-vs-run diff -------------------------------------------------------

def _signature(event: dict[str, Any]) -> str:
    """Canonical identity of one event, independent of its absolute
    timeline position (serial and parallel runs interleave engine events
    differently, shifting every seq)."""
    return json.dumps({"kind": event.get("kind"),
                       "name": event.get("name"),
                       "attrs": event.get("attrs", {})}, sort_keys=True,
                      default=str)


def diff_runs(events_a: Iterable[dict[str, Any]],
              events_b: Iterable[dict[str, Any]],
              include_engine: bool = False) -> dict[str, Any]:
    """Structural diff of two runs' timelines, grouped by driver.

    For each driver the two event sequences are compared
    position-independently (signatures of kind/name/attrs): signatures
    whose multiplicity changed are reported as added/removed, and a
    driver whose multiset matches but whose order differs is flagged
    ``reordered``.  Engine-scope events are excluded unless
    ``include_engine`` — the serial and parallel engines legitimately
    record different bookkeeping spans.

    Returns a JSON-able report; ``equal`` is True exactly when no driver
    shows any delta.
    """
    streams_a = split_by_driver(events_a)
    streams_b = split_by_driver(events_b)
    drivers = list(streams_a)
    drivers.extend(tag for tag in streams_b if tag not in streams_a)
    report: dict[str, Any] = {"drivers": {}, "n_deltas": 0}
    for tag in drivers:
        if tag == ENGINE_SCOPE and not include_engine:
            continue
        seq_a = [_signature(event) for event in streams_a.get(tag, [])]
        seq_b = [_signature(event) for event in streams_b.get(tag, [])]
        if seq_a == seq_b:
            continue
        counts: dict[str, int] = {}
        for signature in seq_a:
            counts[signature] = counts.get(signature, 0) - 1
        for signature in seq_b:
            counts[signature] = counts.get(signature, 0) + 1
        added = sorted(signature for signature, delta in counts.items()
                       for _ in range(max(delta, 0)))
        removed = sorted(signature for signature, delta in counts.items()
                         for _ in range(max(-delta, 0)))
        entry = {"added": [json.loads(signature) for signature in added],
                 "removed": [json.loads(signature)
                             for signature in removed],
                 "reordered": not added and not removed}
        report["drivers"][tag or ENGINE_LABEL] = entry
        report["n_deltas"] += len(added) + len(removed) + int(
            entry["reordered"])
    report["equal"] = report["n_deltas"] == 0
    return report


# -- summaries and reporters ----------------------------------------------

def summarize(events: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Per-driver event census: one row per driver with counts by kind."""
    rows = []
    for tag, stream in split_by_driver(events).items():
        counts: dict[str, int] = {}
        for event in stream:
            kind = event.get("kind", "?")
            counts[kind] = counts.get(kind, 0) + 1
        rows.append({"driver": tag or ENGINE_LABEL, "events": len(stream),
                     "spans": counts.get("span_start", 0),
                     "metrics": counts.get("metric", 0),
                     "faults": counts.get("fault", 0),
                     "cache": counts.get("cache", 0)})
    return rows


def _format_rows(rows: list[dict[str, Any]]) -> str:
    from repro.experiments.report import format_table
    if not rows:
        return "(no events)"
    return format_table(rows, list(rows[0]))


def render_summary(events: Iterable[dict[str, Any]]) -> str:
    """Text report of :func:`summarize`."""
    return _format_rows(summarize(events))


def render_rollup(events: Iterable[dict[str, Any]],
                  include_engine: bool = True,
                  top_n: int | None = None) -> str:
    """Text report of :func:`rollup` (heaviest stages first)."""
    rows = rollup(events, include_engine=include_engine)
    if top_n is not None:
        rows = rows[:top_n]
    return _format_rows(rows)


def render_critical_path(path: list[dict[str, Any]]) -> str:
    """Text report of a critical path, one indented step per level."""
    if not path:
        return "(no spans recorded)"
    lines = []
    for depth, step in enumerate(path):
        label = step.get("span", "?")
        if "total_events" in step:
            detail = (f"total={step['total_events']} "
                      f"self={step['self_events']} "
                      f"share={step['share_pct']:.1f}%")
            if depth == 0:
                label = f"{step['driver']}:{label}"
        else:
            detail = (f"total={step['total_s']:.4f}s "
                      f"self={step['self_s']:.4f}s "
                      f"share={step['share_pct']:.1f}%")
        lines.append(f"{'  ' * depth}{label}  [{detail}]")
    return "\n".join(lines)


def render_diff(report: dict[str, Any]) -> str:
    """Text report of :func:`diff_runs`."""
    if report["equal"]:
        return "runs are equivalent: 0 deltas"
    lines = [f"runs differ: {report['n_deltas']} delta(s)"]
    for tag, entry in report["drivers"].items():
        if entry["reordered"]:
            lines.append(f"  {tag}: same events, different order")
            continue
        lines.append(f"  {tag}: +{len(entry['added'])} "
                     f"-{len(entry['removed'])}")
        for event in entry["added"][:5]:
            lines.append(f"    + {event['kind']} {event['name']} "
                         f"{json.dumps(event['attrs'], sort_keys=True)}")
        for event in entry["removed"][:5]:
            lines.append(f"    - {event['kind']} {event['name']} "
                         f"{json.dumps(event['attrs'], sort_keys=True)}")
        hidden = (max(len(entry["added"]) - 5, 0)
                  + max(len(entry["removed"]) - 5, 0))
        if hidden:
            lines.append(f"    ... {hidden} more")
    return "\n".join(lines)
