"""Run manifests: provenance written alongside every experiment artifact.

A manifest answers "what produced this CSV?": the git commit, interpreter
and NumPy versions, the RNG seed (if one was set), wall-clock duration,
and peak resident memory.  ``ExperimentResult.save_csv`` writes one
``<name>.manifest.json`` next to each ``<name>.csv``; the benchmark
harness writes one ``bench_manifest.json`` per session.

The module also owns the process-wide *run seed*: ``repro evaluate
--seed N`` calls :func:`set_run_seed`, stochastic code asks
:func:`seeded_rng` for a generator, and every manifest records the seed
it ran under.
"""

from __future__ import annotations

import functools
import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any

__all__ = ["build_manifest", "current_seed", "environment_info",
           "git_sha", "peak_rss_bytes", "seeded_rng", "set_run_seed",
           "write_manifest"]

#: Manifest schema version (bump when the field set changes).
SCHEMA_VERSION = 1

_run_seed: int | None = None


def set_run_seed(seed: int | None) -> None:
    """Set (or clear) the process-wide RNG seed recorded in manifests."""
    global _run_seed
    _run_seed = seed


def current_seed() -> int | None:
    """The seed set by :func:`set_run_seed`, or None."""
    return _run_seed


def seeded_rng(seed: int | None = None) -> "Any":
    """A NumPy generator honoring the run seed (or an explicit one).

    Returns ``np.random.default_rng(seed)`` when ``seed`` is given — the
    sanctioned constructor for derived substreams
    (:func:`repro.perf.seeds.derive_stream_seed`) — and
    ``np.random.default_rng(current_seed())`` otherwise: reproducible
    when a seed was set via ``--seed``/:func:`set_run_seed`, fresh
    entropy if not.
    """
    import numpy as np
    return np.random.default_rng(seed if seed is not None else _run_seed)


@functools.lru_cache(maxsize=1)
def git_sha() -> str | None:
    """The repository HEAD commit, or None outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5.0, check=False)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def peak_rss_bytes() -> int | None:
    """Peak resident set size of this process, or None if unavailable."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    return peak if sys.platform == "darwin" else peak * 1024


def environment_info() -> dict[str, Any]:
    """Interpreter / library / platform identity for provenance."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": platform.platform(),
    }


def build_manifest(name: str,
                   seed: int | None = None,
                   duration_s: float | None = None,
                   extra: dict[str, Any] | None = None) -> dict[str, Any]:
    """Assemble one run manifest.

    Args:
        name: artifact id the manifest describes ("fig5", "bench", ...).
        seed: RNG seed the run used; defaults to the process run seed.
        duration_s: wall-clock duration of the run, if measured.
        extra: additional JSON-able fields merged at the top level.
    """
    manifest: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "created_unix_s": time.time(),
        "seed": seed if seed is not None else _run_seed,
        "duration_s": duration_s,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    manifest.update(environment_info())
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: Path | str, manifest: dict[str, Any]) -> Path:
    """Write a manifest dict as JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, default=str,
                               sort_keys=True) + "\n")
    return path
