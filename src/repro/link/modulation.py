"""Modulation schemes: bit <-> symbol mapping and per-scheme BER theory.

Each scheme knows its bits/symbol, can modulate a bit array into complex
baseband symbols normalized to unit average energy per *bit*, demodulate
noisy symbols back to bits, and report its theoretical BER at a given Eb/N0.
The Monte-Carlo channel in :mod:`repro.link.channel` uses these to validate
the closed forms used by the MINDFUL power analysis.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.link.ber import ber_bpsk, ber_mqam, ber_ook


class Modulation(ABC):
    """A digital modulation scheme over complex AWGN baseband."""

    #: Number of bits carried per transmitted symbol.
    bits_per_symbol: int = 1

    @property
    def name(self) -> str:
        """Human-readable scheme name."""
        return type(self).__name__

    @abstractmethod
    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map a 0/1 bit array to complex symbols with unit energy per bit."""

    @abstractmethod
    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        """Hard-decision demodulation back to a 0/1 bit array."""

    @abstractmethod
    def theoretical_ber(self, ebn0_linear: float) -> float:
        """Closed-form (or standard approximate) BER at a linear Eb/N0."""

    def _require_multiple(self, n_bits: int) -> None:
        if n_bits % self.bits_per_symbol != 0:
            raise ValueError(
                f"{self.name} needs bit counts divisible by "
                f"{self.bits_per_symbol}, got {n_bits}")


class OOK(Modulation):
    """On-off keying: the energy-efficient scheme of implanted SoCs (5.1)."""

    bits_per_symbol = 1

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        bits = _as_bits(bits)
        # Unit average energy per bit with half the symbols dark:
        # E[|s|^2] = 0.5 * A^2 = 1  =>  A = sqrt(2).
        return bits.astype(complex) * math.sqrt(2.0)

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        threshold = math.sqrt(2.0) / 2.0
        return (np.real(symbols) > threshold).astype(np.int8)

    def theoretical_ber(self, ebn0_linear: float) -> float:
        return ber_ook(ebn0_linear)


class BPSK(Modulation):
    """Antipodal binary phase-shift keying."""

    bits_per_symbol = 1

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        bits = _as_bits(bits)
        return (2.0 * bits - 1.0).astype(complex)

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        return (np.real(symbols) > 0).astype(np.int8)

    def theoretical_ber(self, ebn0_linear: float) -> float:
        return ber_bpsk(ebn0_linear)


class MQAM(Modulation):
    """Gray-mapped square M-QAM (even bits/symbol).

    For odd bits/symbol the paper's analysis still uses the square-QAM BER
    approximation (see :func:`repro.link.ber.ber_mqam`); the symbol-level
    simulator, however, only supports even orders, where the rectangular
    Gray construction is exact.
    """

    def __init__(self, bits_per_symbol: int) -> None:
        if bits_per_symbol < 2 or bits_per_symbol % 2 != 0:
            raise ValueError("symbol-level MQAM requires even "
                             "bits_per_symbol >= 2")
        self.bits_per_symbol = bits_per_symbol
        self._side = 2 ** (bits_per_symbol // 2)
        m = 2 ** bits_per_symbol
        # Average symbol energy of a unit-spacing square constellation is
        # 2(M-1)/3 per complex dimension pair; normalize to Eb = 1.
        self._scale = math.sqrt(3.0 / (2.0 * (m - 1)) * bits_per_symbol)

    @property
    def name(self) -> str:
        return f"{2 ** self.bits_per_symbol}-QAM"

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        bits = _as_bits(bits)
        self._require_multiple(bits.size)
        half = self.bits_per_symbol // 2
        grouped = bits.reshape(-1, self.bits_per_symbol)
        i_levels = _gray_bits_to_level(grouped[:, :half])
        q_levels = _gray_bits_to_level(grouped[:, half:])
        side = self._side
        i_amp = 2.0 * i_levels - (side - 1)
        q_amp = 2.0 * q_levels - (side - 1)
        return self._scale * (i_amp + 1j * q_amp)

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        # Accept any shape (the batched sweep demodulates a whole
        # points x symbols block at once); bits come back flattened in
        # row-major symbol order, exactly as per-row demodulation would
        # concatenate them.
        symbols = np.asarray(symbols).ravel()
        side = self._side
        half = self.bits_per_symbol // 2
        i_levels = _slice_level(np.real(symbols) / self._scale, side)
        q_levels = _slice_level(np.imag(symbols) / self._scale, side)
        i_bits = _level_to_gray_bits(i_levels, half)
        q_bits = _level_to_gray_bits(q_levels, half)
        return np.concatenate([i_bits, q_bits], axis=1).reshape(-1)

    def theoretical_ber(self, ebn0_linear: float) -> float:
        return ber_mqam(ebn0_linear, self.bits_per_symbol)


class QPSK(MQAM):
    """Quadrature PSK, i.e. 4-QAM."""

    def __init__(self) -> None:
        super().__init__(bits_per_symbol=2)

    @property
    def name(self) -> str:
        return "QPSK"


def modulation_for_bits_per_symbol(bits_per_symbol: int) -> Modulation:
    """Factory matching the paper's escalation: 1 bit -> OOK, else M-QAM.

    Odd orders above 1 round up to the next even order for symbol-level use;
    analytical power modeling should call :func:`repro.link.ber.ber_mqam`
    directly with the exact odd order instead.
    """
    if bits_per_symbol < 1:
        raise ValueError("bits_per_symbol must be >= 1")
    if bits_per_symbol == 1:
        return OOK()
    if bits_per_symbol == 2:
        return QPSK()
    if bits_per_symbol % 2 != 0:
        bits_per_symbol += 1
    return MQAM(bits_per_symbol)


def _as_bits(bits: np.ndarray) -> np.ndarray:
    bits = np.asarray(bits)
    if bits.size and not np.isin(bits, (0, 1)).all():
        raise ValueError("bit arrays must contain only 0 and 1")
    return bits.astype(np.int8)


def _gray_bits_to_level(bits: np.ndarray) -> np.ndarray:
    """Rows of Gray-coded bits -> integer levels 0..2^k-1."""
    binary = np.zeros(bits.shape[0], dtype=np.int64)
    acc = np.zeros(bits.shape[0], dtype=np.int64)
    for col in range(bits.shape[1]):
        acc = acc ^ bits[:, col].astype(np.int64)
        binary = (binary << 1) | acc
    return binary


def _level_to_gray_bits(levels: np.ndarray, width: int) -> np.ndarray:
    """Integer levels -> Gray-coded bit rows of the given width."""
    gray = levels ^ (levels >> 1)
    out = np.zeros((levels.size, width), dtype=np.int8)
    for col in range(width):
        out[:, col] = (gray >> (width - 1 - col)) & 1
    return out


def _slice_level(amplitudes: np.ndarray, side: int) -> np.ndarray:
    """Nearest constellation level index for normalized amplitudes."""
    levels = np.round((amplitudes + (side - 1)) / 2.0).astype(np.int64)
    return np.clip(levels, 0, side - 1)
