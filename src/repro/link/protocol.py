"""Link-layer reliability: ARQ retransmission over the noisy RF channel.

Connects the BER theory to the packetizer: a packet of L bits survives an
independent-bit channel with probability (1 - BER)^L, and a stop-and-wait
/ selective-repeat ARQ retransmits failures.  The expected transmission
count per packet is geometric, which inflates both the effective data rate
the transceiver must sustain and the Eq. 9 energy per *delivered* bit —
the hidden cost of running the link at a marginal Eb/N0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.link.channel import AwgnChannel
from repro.link.modulation import Modulation
from repro.link.packetizer import Packet, PacketError, Packetizer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fault.injector import FaultInjector


def packet_success_probability(ber: float, packet_bits: int) -> float:
    """Probability a packet of ``packet_bits`` arrives intact."""
    if not 0.0 <= ber < 1.0:
        raise ValueError("BER must lie in [0, 1)")
    if packet_bits <= 0:
        raise ValueError("packet size must be positive")
    return (1.0 - ber) ** packet_bits


def expected_transmissions(ber: float, packet_bits: int,
                           max_retries: int | None = None) -> float:
    """Mean transmissions per packet under ARQ.

    With unlimited retries the count is geometric: 1/p.  A retry cap
    truncates the distribution (packets may be dropped).
    """
    p = packet_success_probability(ber, packet_bits)
    if p == 0.0:
        return math.inf
    if max_retries is None:
        return 1.0 / p
    q = 1.0 - p
    attempts = max_retries + 1
    # E[min(G, attempts)] for geometric G.
    return (1.0 - q ** attempts) / p


def effective_goodput(raw_rate_bps: float, ber: float,
                      payload_bits: int, overhead_bits: int) -> float:
    """Delivered payload rate after framing overhead and retransmission.

    Args:
        raw_rate_bps: physical-layer bit rate.
        ber: channel bit error rate.
        payload_bits: payload per packet.
        overhead_bits: header + CRC per packet.
    """
    if raw_rate_bps <= 0:
        raise ValueError("raw rate must be positive")
    total = payload_bits + overhead_bits
    retx = expected_transmissions(ber, total)
    if math.isinf(retx):
        return 0.0
    return raw_rate_bps * (payload_bits / total) / retx


def delivered_energy_per_bit(energy_per_bit_j: float, ber: float,
                             payload_bits: int,
                             overhead_bits: int) -> float:
    """Transmit energy per *delivered payload* bit under ARQ."""
    if energy_per_bit_j < 0:
        raise ValueError("energy must be non-negative")
    total = payload_bits + overhead_bits
    retx = expected_transmissions(ber, total)
    if math.isinf(retx):
        return math.inf
    return energy_per_bit_j * retx * total / payload_bits


@dataclass
class ArqSimulationResult:
    """Outcome of a Monte-Carlo ARQ session.

    Attributes:
        packets: logical packets delivered.
        transmissions: physical transmissions used.
        dropped: packets abandoned after the retry cap.
    """

    packets: int
    transmissions: int
    dropped: int

    @property
    def mean_transmissions(self) -> float:
        """Average physical sends per delivered-or-dropped packet."""
        if self.packets + self.dropped == 0:
            return 0.0
        return self.transmissions / (self.packets + self.dropped)


def simulate_arq(codes: np.ndarray,
                 scheme: Modulation,
                 ebn0_db: float,
                 rng: np.random.Generator,
                 payload_bytes: int = 32,
                 sample_bits: int = 10,
                 max_retries: int = 10) -> ArqSimulationResult:
    """Run a CRC-checked ARQ session over a simulated AWGN link.

    Each packet is modulated, pushed through the channel, demodulated,
    and CRC-verified; failures retransmit up to ``max_retries`` times.
    """
    if max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    packetizer = Packetizer(payload_bytes=payload_bytes,
                            sample_bits=sample_bits)
    packets = packetizer.packetize(codes)
    channel = AwgnChannel(ebn0_linear=10 ** (ebn0_db / 10.0), rng=rng)

    delivered = 0
    transmissions = 0
    dropped = 0
    for packet in packets:
        raw = packet.to_bytes()
        bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8))
        # Pad to a whole number of symbols.
        pad = -bits.size % scheme.bits_per_symbol
        padded = np.concatenate([bits, np.zeros(pad, dtype=np.int8)])
        success = False
        for _ in range(max_retries + 1):
            transmissions += 1
            received = scheme.demodulate(
                channel.transmit(scheme.modulate(padded)))
            rebuilt = Packet.from_bytes(
                np.packbits(received[:bits.size]).tobytes())
            if rebuilt.valid and rebuilt.payload == packet.payload:
                success = True
                break
        if success:
            delivered += 1
        else:
            dropped += 1
    return ArqSimulationResult(packets=delivered,
                               transmissions=transmissions,
                               dropped=dropped)


@dataclass
class FaultedArqReport:
    """Outcome of an injector-driven ARQ session.

    Attributes:
        delivered: packets that got through (first try or retry).
        recovered: delivered packets that needed at least one retry.
        dropped: packets abandoned after the retry budget.
        transmissions: physical sends, retries included.
        payload_bits_delivered: payload bits of delivered packets.
        total_bits_sent: every bit pushed onto the air, framing and
            retransmissions included.
    """

    delivered: int
    recovered: int
    dropped: int
    transmissions: int
    payload_bits_delivered: int
    total_bits_sent: int

    @property
    def goodput_fraction(self) -> float:
        """Delivered payload bits per transmitted bit (0 when idle)."""
        if self.total_bits_sent == 0:
            return 0.0
        return self.payload_bits_delivered / self.total_bits_sent

    def delivered_energy_per_bit(self, energy_per_bit_j: float) -> float:
        """Transmit energy per delivered payload bit.

        The faulted-link analogue of :func:`delivered_energy_per_bit`:
        every transmitted bit (framing + retransmissions) costs
        ``energy_per_bit_j``, and only the delivered payload counts.
        Infinite when nothing got through.
        """
        if energy_per_bit_j < 0:
            raise ValueError("energy must be non-negative")
        if self.payload_bits_delivered == 0:
            return math.inf
        return (energy_per_bit_j * self.total_bits_sent
                / self.payload_bits_delivered)

    def to_dict(self) -> dict[str, float]:
        """JSON-able counters plus the derived goodput fraction."""
        return {
            "delivered": self.delivered,
            "recovered": self.recovered,
            "dropped": self.dropped,
            "transmissions": self.transmissions,
            "payload_bits_delivered": self.payload_bits_delivered,
            "total_bits_sent": self.total_bits_sent,
            "goodput_fraction": self.goodput_fraction,
        }


def simulate_arq_with_faults(codes: np.ndarray,
                             injector: "FaultInjector",
                             payload_bytes: int = 32,
                             sample_bits: int = 10,
                             max_retries: int | None = None,
                             ) -> FaultedArqReport:
    """Run a stop-and-wait ARQ session against an injected fault plan.

    Unlike :func:`simulate_arq` (Monte-Carlo AWGN channel), every
    impairment here comes from the injector's seeded plan — drops,
    truncations, and bit flips — so the session replays exactly and
    its recovery counters land in the injector's fault log.

    Args:
        codes: ADC codes to deliver.
        injector: seeded :class:`repro.fault.injector.FaultInjector`.
        payload_bytes: payload per packet.
        sample_bits: ADC bitwidth of the codes.
        max_retries: retry budget per packet; defaults to the plan's
            ``retry.max_retries``.

    Returns:
        A :class:`FaultedArqReport` with goodput and energy accounting.
    """
    if max_retries is None:
        max_retries = injector.plan.retry.max_retries
    if max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    packetizer = Packetizer(payload_bytes=payload_bytes,
                            sample_bits=sample_bits)
    packets = packetizer.packetize(codes)

    delivered = 0
    recovered = 0
    dropped = 0
    transmissions = 0
    payload_bits_delivered = 0
    total_bits_sent = 0
    for index, packet in enumerate(packets):
        raw = packet.to_bytes()
        packet_bits = 8 * len(raw)
        success = False
        attempts_used = 0
        for attempt in range(max_retries + 1):
            attempts_used = attempt + 1
            transmissions += 1
            total_bits_sent += packet_bits
            damaged = injector.perturb_packet(
                raw, target=f"packet:{index}:try{attempt}")
            if damaged is None:
                continue
            try:
                rebuilt = Packet.from_bytes(damaged)
            except PacketError:
                continue
            if rebuilt.valid and rebuilt.payload == packet.payload:
                success = True
                break
        if success:
            delivered += 1
            payload_bits_delivered += 8 * len(packet.payload)
            if attempts_used > 1:
                recovered += 1
                injector.record_recovered(
                    "link", target=f"packet:{index}",
                    attempts=attempts_used)
        else:
            dropped += 1
            injector.record_failed("link", target=f"packet:{index}",
                                   attempts=attempts_used)
    return FaultedArqReport(delivered=delivered, recovered=recovered,
                            dropped=dropped, transmissions=transmissions,
                            payload_bits_delivered=payload_bits_delivered,
                            total_bits_sent=total_bits_sent)
