"""Packetization of digitized neural frames for wireless transmission.

In the communication-centric dataflow (paper Fig. 3, Section 3.1) the only
on-implant computation is "digitize and packetize".  This module is that
stage: frames of ADC codes are split into fixed-payload packets carrying a
sequence number and CRC-16 so the wearable can detect loss and corruption.
The overhead ratio it reports feeds the effective-throughput accounting in
the streaming example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: CRC-16/CCITT-FALSE polynomial.
_CRC16_POLY = 0x1021
_CRC16_INIT = 0xFFFF


def crc16(data: bytes) -> int:
    """CRC-16/CCITT-FALSE over a byte string."""
    crc = _CRC16_INIT
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _CRC16_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


@dataclass(frozen=True)
class Packet:
    """One framed unit of neural payload.

    Attributes:
        sequence: monotonically increasing packet counter (wraps at 2^16).
        payload: raw payload bytes.
        checksum: CRC-16 over sequence (big-endian) plus payload.
    """

    sequence: int
    payload: bytes
    checksum: int

    @property
    def valid(self) -> bool:
        """True when the checksum matches the contents."""
        header = self.sequence.to_bytes(2, "big")
        return crc16(header + self.payload) == self.checksum

    def to_bytes(self) -> bytes:
        """Serialize as header | payload | CRC."""
        return (self.sequence.to_bytes(2, "big") + self.payload
                + self.checksum.to_bytes(2, "big"))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Packet":
        """Parse a serialized packet (no payload-length framing here; the
        caller supplies exactly one packet's bytes)."""
        if len(raw) < 4:
            raise ValueError("packet too short")
        sequence = int.from_bytes(raw[:2], "big")
        checksum = int.from_bytes(raw[-2:], "big")
        return cls(sequence=sequence, payload=raw[2:-2], checksum=checksum)


class Packetizer:
    """Splits digitized frames into CRC-framed packets.

    Args:
        payload_bytes: payload size per packet; the header+CRC add 4 bytes.
        sample_bits: ADC bitwidth of the codes being packed (samples are
            packed as signed two's-complement into ceil(bits/8) bytes each —
            a simple byte-aligned packing; sub-byte packing would only shift
            the constant overhead factor).
    """

    HEADER_BYTES = 2
    CRC_BYTES = 2

    def __init__(self, payload_bytes: int = 256,
                 sample_bits: int = 10) -> None:
        if payload_bytes <= 0:
            raise ValueError("payload size must be positive")
        if sample_bits < 1 or sample_bits > 32:
            raise ValueError("sample_bits must be in [1, 32]")
        self.payload_bytes = payload_bytes
        self.sample_bits = sample_bits
        self.bytes_per_sample = (sample_bits + 7) // 8
        self._sequence = 0

    @property
    def overhead_ratio(self) -> float:
        """Framing bytes per payload byte."""
        return (self.HEADER_BYTES + self.CRC_BYTES) / self.payload_bytes

    def packetize(self, codes: np.ndarray) -> list[Packet]:
        """Pack a block of ADC codes into packets.

        Args:
            codes: integer array of any shape; flattened in C order.

        Returns:
            Packets covering all samples; the final packet may be short.
        """
        flat = np.asarray(codes).reshape(-1)
        raw = _codes_to_bytes(flat, self.bytes_per_sample)
        packets = []
        for start in range(0, len(raw), self.payload_bytes):
            payload = raw[start:start + self.payload_bytes]
            header = self._sequence.to_bytes(2, "big")
            packets.append(Packet(sequence=self._sequence, payload=payload,
                                  checksum=crc16(header + payload)))
            self._sequence = (self._sequence + 1) & 0xFFFF
        return packets

    def depacketize(self, packets: list[Packet]) -> np.ndarray:
        """Reassemble ADC codes from valid packets.

        Raises:
            ValueError: if any packet fails its CRC or sequence numbers are
                not contiguous (mod 2^16).
        """
        if not packets:
            return np.array([], dtype=np.int32)
        expected = packets[0].sequence
        chunks = []
        for packet in packets:
            if not packet.valid:
                raise ValueError(f"packet {packet.sequence} failed CRC")
            if packet.sequence != expected:
                raise ValueError(
                    f"sequence gap: expected {expected}, got "
                    f"{packet.sequence}")
            expected = (expected + 1) & 0xFFFF
            chunks.append(packet.payload)
        return _bytes_to_codes(b"".join(chunks), self.bytes_per_sample,
                               self.sample_bits)


def _codes_to_bytes(codes: np.ndarray, bytes_per_sample: int) -> bytes:
    width = 8 * bytes_per_sample
    unsigned = (codes.astype(np.int64) & ((1 << width) - 1))
    out = bytearray()
    for value in unsigned:
        out += int(value).to_bytes(bytes_per_sample, "big")
    return bytes(out)


def _bytes_to_codes(raw: bytes, bytes_per_sample: int,
                    sample_bits: int) -> np.ndarray:
    if len(raw) % bytes_per_sample != 0:
        raise ValueError("byte stream length is not a whole number of samples")
    n = len(raw) // bytes_per_sample
    width = 8 * bytes_per_sample
    codes = np.empty(n, dtype=np.int64)
    for i in range(n):
        chunk = raw[i * bytes_per_sample:(i + 1) * bytes_per_sample]
        value = int.from_bytes(chunk, "big")
        # Sign-extend from the storage width.
        if value >= 1 << (width - 1):
            value -= 1 << width
        codes[i] = value
    del sample_bits
    return codes.astype(np.int32)
