"""Packetization of digitized neural frames for wireless transmission.

In the communication-centric dataflow (paper Fig. 3, Section 3.1) the only
on-implant computation is "digitize and packetize".  This module is that
stage: frames of ADC codes are split into fixed-payload packets carrying a
sequence number and CRC-16 so the wearable can detect loss and corruption.
The overhead ratio it reports feeds the effective-throughput accounting in
the streaming example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: CRC-16/CCITT-FALSE polynomial.
_CRC16_POLY = 0x1021
_CRC16_INIT = 0xFFFF


class PacketError(ValueError):
    """Malformed serialized packet (too short to hold header + CRC).

    Subclasses :class:`ValueError` so pre-existing callers that caught
    the old untyped error keep working.
    """


def crc16(data: bytes) -> int:
    """CRC-16/CCITT-FALSE over a byte string."""
    crc = _CRC16_INIT
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _CRC16_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


@dataclass(frozen=True)
class Packet:
    """One framed unit of neural payload.

    Attributes:
        sequence: monotonically increasing packet counter (wraps at 2^16).
        payload: raw payload bytes.
        checksum: CRC-16 over sequence (big-endian) plus payload.
    """

    sequence: int
    payload: bytes
    checksum: int

    @property
    def valid(self) -> bool:
        """True when the checksum matches the contents."""
        header = self.sequence.to_bytes(2, "big")
        return crc16(header + self.payload) == self.checksum

    def to_bytes(self) -> bytes:
        """Serialize as header | payload | CRC."""
        return (self.sequence.to_bytes(2, "big") + self.payload
                + self.checksum.to_bytes(2, "big"))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Packet":
        """Parse a serialized packet (no payload-length framing here; the
        caller supplies exactly one packet's bytes).

        Raises:
            PacketError: when ``raw`` cannot hold a header plus CRC
                (truncated on the wire, for instance).
        """
        if len(raw) < Packetizer.HEADER_BYTES + Packetizer.CRC_BYTES:
            raise PacketError(
                f"packet too short: {len(raw)} bytes, need at least "
                f"{Packetizer.HEADER_BYTES + Packetizer.CRC_BYTES}")
        sequence = int.from_bytes(raw[:2], "big")
        checksum = int.from_bytes(raw[-2:], "big")
        return cls(sequence=sequence, payload=raw[2:-2], checksum=checksum)


@dataclass
class StreamLossReport:
    """What a lossy reassembly had to discard or repair.

    Attributes:
        received: raw packets offered to the receiver.
        accepted: packets that parsed and passed CRC.
        crc_failures: packets rejected by checksum.
        malformed: packets too short to parse at all.
        duplicates: CRC-valid packets discarded as repeated sequences.
        reordered: accepted packets that arrived out of order.
        missing: sequence slots absent between the first and last
            accepted packet (dropped on the wire).
        trailing_bytes_dropped: payload tail discarded because it did
            not contain a whole number of samples.
    """

    received: int = 0
    accepted: int = 0
    crc_failures: int = 0
    malformed: int = 0
    duplicates: int = 0
    reordered: int = 0
    missing: int = 0
    trailing_bytes_dropped: int = 0

    def to_dict(self) -> dict[str, int]:
        """JSON-able counters (for manifests and fault logs)."""
        return {key: int(value)
                for key, value in sorted(vars(self).items())}


@dataclass
class _AcceptedPacket:
    offset: int
    payload: bytes = field(repr=False)


class Packetizer:
    """Splits digitized frames into CRC-framed packets.

    Args:
        payload_bytes: payload size per packet; the header+CRC add 4 bytes.
        sample_bits: ADC bitwidth of the codes being packed (samples are
            packed as signed two's-complement into ceil(bits/8) bytes each —
            a simple byte-aligned packing; sub-byte packing would only shift
            the constant overhead factor).
    """

    HEADER_BYTES = 2
    CRC_BYTES = 2

    def __init__(self, payload_bytes: int = 256,
                 sample_bits: int = 10) -> None:
        if payload_bytes <= 0:
            raise ValueError("payload size must be positive")
        if sample_bits < 1 or sample_bits > 32:
            raise ValueError("sample_bits must be in [1, 32]")
        self.payload_bytes = payload_bytes
        self.sample_bits = sample_bits
        self.bytes_per_sample = (sample_bits + 7) // 8
        self._sequence = 0

    @property
    def overhead_ratio(self) -> float:
        """Framing bytes per payload byte."""
        return (self.HEADER_BYTES + self.CRC_BYTES) / self.payload_bytes

    def packetize(self, codes: np.ndarray) -> list[Packet]:
        """Pack a block of ADC codes into packets.

        Args:
            codes: integer array of any shape; flattened in C order.

        Returns:
            Packets covering all samples; the final packet may be short.
        """
        flat = np.asarray(codes).reshape(-1)
        raw = _codes_to_bytes(flat, self.bytes_per_sample)
        packets = []
        for start in range(0, len(raw), self.payload_bytes):
            payload = raw[start:start + self.payload_bytes]
            header = self._sequence.to_bytes(2, "big")
            packets.append(Packet(sequence=self._sequence, payload=payload,
                                  checksum=crc16(header + payload)))
            self._sequence = (self._sequence + 1) & 0xFFFF
        return packets

    def depacketize(self, packets: list[Packet]) -> np.ndarray:
        """Reassemble ADC codes from valid packets.

        Raises:
            ValueError: if any packet fails its CRC or sequence numbers are
                not contiguous (mod 2^16).
        """
        if not packets:
            return np.array([], dtype=np.int32)
        expected = packets[0].sequence
        chunks = []
        for packet in packets:
            if not packet.valid:
                raise ValueError(f"packet {packet.sequence} failed CRC")
            if packet.sequence != expected:
                raise ValueError(
                    f"sequence gap: expected {expected}, got "
                    f"{packet.sequence}")
            expected = (expected + 1) & 0xFFFF
            chunks.append(packet.payload)
        return _bytes_to_codes(b"".join(chunks), self.bytes_per_sample,
                               self.sample_bits)

    def depacketize_lossy(
            self, raw_packets: list[bytes],
    ) -> tuple[np.ndarray, StreamLossReport]:
        """Best-effort reassembly of a damaged packet stream.

        The fault-tolerant counterpart of :meth:`depacketize`: never
        raises.  Malformed and CRC-failing packets are discarded,
        survivors are re-sorted by sequence offset from the first
        accepted packet (mod 2^16, so wraparound streams reorder
        correctly), duplicates are dropped, and a trailing partial
        sample is truncated.

        Args:
            raw_packets: serialized packets as received (possibly
                dropped, reordered, truncated, or bit-flipped).

        Returns:
            ``(codes, report)``: the samples recovered in order, and
            the loss accounting.
        """
        report = StreamLossReport(received=len(raw_packets))
        accepted: list[_AcceptedPacket] = []
        first_seq: int | None = None
        for raw in raw_packets:
            try:
                packet = Packet.from_bytes(raw)
            except PacketError:
                report.malformed += 1
                continue
            if not packet.valid:
                report.crc_failures += 1
                continue
            if first_seq is None:
                first_seq = packet.sequence
            offset = (packet.sequence - first_seq) & 0xFFFF
            accepted.append(_AcceptedPacket(offset=offset,
                                            payload=packet.payload))
        report.reordered = sum(
            1 for earlier, later in zip(accepted, accepted[1:])
            if later.offset < earlier.offset)
        accepted.sort(key=lambda item: item.offset)
        unique: list[_AcceptedPacket] = []
        for item in accepted:
            if unique and item.offset == unique[-1].offset:
                report.duplicates += 1
                continue
            unique.append(item)
        report.accepted = len(unique)
        if unique:
            span_slots = unique[-1].offset - unique[0].offset + 1
            report.missing = span_slots - len(unique)
        raw = b"".join(item.payload for item in unique)
        remainder = len(raw) % self.bytes_per_sample
        if remainder:
            report.trailing_bytes_dropped = remainder
            raw = raw[:len(raw) - remainder]
        codes = _bytes_to_codes(raw, self.bytes_per_sample,
                                self.sample_bits)
        return codes, report


def _codes_to_bytes(codes: np.ndarray, bytes_per_sample: int) -> bytes:
    width = 8 * bytes_per_sample
    unsigned = (codes.astype(np.int64) & ((1 << width) - 1))
    out = bytearray()
    for value in unsigned:
        out += int(value).to_bytes(bytes_per_sample, "big")
    return bytes(out)


def _bytes_to_codes(raw: bytes, bytes_per_sample: int,
                    sample_bits: int) -> np.ndarray:
    if len(raw) % bytes_per_sample != 0:
        raise ValueError("byte stream length is not a whole number of samples")
    n = len(raw) // bytes_per_sample
    width = 8 * bytes_per_sample
    codes = np.empty(n, dtype=np.int64)
    for i in range(n):
        chunk = raw[i * bytes_per_sample:(i + 1) * bytes_per_sample]
        value = int.from_bytes(chunk, "big")
        # Sign-extend from the storage width.
        if value >= 1 << (width - 1):
            value -= 1 << width
        codes[i] = value
    del sample_bits
    return codes.astype(np.int32)
