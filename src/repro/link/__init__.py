"""Wireless RF communication substrate.

Implements the paper's communication models (Sections 5.1-5.2): analytical
bit-error-rate theory for OOK / PSK / M-QAM, the "QAM equation" solver that
derives the required Eb/N0 for a target BER, the transcutaneous link budget
(path loss + tissue margin + receiver noise), energy-per-bit and Eq. 9
communication power, a Monte-Carlo AWGN channel to validate the closed
forms, and a CRC-framed packetizer for the streaming substrate.
"""

from repro.link.ber import (
    q_function,
    ber_bpsk,
    ber_ook,
    ber_mqam,
    required_ebn0,
    shannon_ebn0_limit_db,
)
from repro.link.modulation import (
    Modulation,
    OOK,
    BPSK,
    QPSK,
    MQAM,
    modulation_for_bits_per_symbol,
)
from repro.link.budget import (
    LinkBudget,
    transmit_energy_per_bit,
    communication_power,
)
from repro.link.channel import (AwgnChannel, measure_ber,
                                measure_ber_grid, measure_ber_sweep)
from repro.link.packetizer import Packet, Packetizer, crc16
from repro.link.wpt import InductiveLink
from repro.link.protocol import (
    ArqSimulationResult,
    delivered_energy_per_bit,
    effective_goodput,
    expected_transmissions,
    packet_success_probability,
    simulate_arq,
)

__all__ = [
    "q_function",
    "ber_bpsk",
    "ber_ook",
    "ber_mqam",
    "required_ebn0",
    "shannon_ebn0_limit_db",
    "Modulation",
    "OOK",
    "BPSK",
    "QPSK",
    "MQAM",
    "modulation_for_bits_per_symbol",
    "LinkBudget",
    "transmit_energy_per_bit",
    "communication_power",
    "AwgnChannel",
    "measure_ber",
    "measure_ber_grid",
    "measure_ber_sweep",
    "Packet",
    "Packetizer",
    "crc16",
    "InductiveLink",
    "ArqSimulationResult",
    "delivered_energy_per_bit",
    "effective_goodput",
    "expected_transmissions",
    "packet_success_probability",
    "simulate_arq",
]
