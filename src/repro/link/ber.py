"""Bit-error-rate theory: closed-form BER curves and Eb/N0 inversion.

This is the paper's "QAM equation" (Section 5.2): for each modulation order
we can compute the BER at a given Eb/N0, and — by numerical inversion — the
Eb/N0 required to hit a target BER (the paper uses BER = 1e-6).  Standard
references: Goldsmith, *Wireless Communications*; Rappaport (both cited by
the paper).

Formulas (coherent detection over AWGN, Gray mapping):

* BPSK:        BER = Q(sqrt(2 Eb/N0))
* OOK (coherent, on-off): BER = Q(sqrt(Eb/N0))
* M-QAM (square or cross, b = log2 M bits/symbol, approximate):

      BER ~= (4 / b) * (1 - 1/sqrt(M)) * Q( sqrt(3 b / (M - 1) * Eb/N0) )

  The same expression is the standard approximation for cross constellations
  at odd b; it is what link-budget practice uses.
"""

from __future__ import annotations

import math

from scipy.optimize import brentq
from scipy.special import erfc

from repro.obs.metrics import inc


def q_function(x: float) -> float:
    """Gaussian tail probability Q(x) = P(N(0,1) > x)."""
    return 0.5 * erfc(x / math.sqrt(2.0))


def ber_bpsk(ebn0_linear: float) -> float:
    """BER of coherent BPSK over AWGN."""
    _check_ebn0(ebn0_linear)
    return q_function(math.sqrt(2.0 * ebn0_linear))


def ber_ook(ebn0_linear: float) -> float:
    """BER of coherent on-off keying (unipolar 2-ASK) over AWGN.

    OOK pays 3 dB versus antipodal BPSK because only half the symbols carry
    energy: BER = Q(sqrt(Eb/N0)).
    """
    _check_ebn0(ebn0_linear)
    return q_function(math.sqrt(ebn0_linear))


def ber_mqam(ebn0_linear: float, bits_per_symbol: int) -> float:
    """Approximate BER of Gray-mapped M-QAM over AWGN.

    Args:
        ebn0_linear: Eb/N0 as a linear power ratio.
        bits_per_symbol: b = log2(M); b = 1 degenerates to BPSK.

    Raises:
        ValueError: for non-positive Eb/N0 or bits_per_symbol < 1.
    """
    _check_ebn0(ebn0_linear)
    if bits_per_symbol < 1:
        raise ValueError("bits_per_symbol must be >= 1")
    if bits_per_symbol == 1:
        return ber_bpsk(ebn0_linear)
    b = bits_per_symbol
    m = 2 ** b
    coeff = (4.0 / b) * (1.0 - 1.0 / math.sqrt(m))
    arg = math.sqrt(3.0 * b / (m - 1.0) * ebn0_linear)
    return min(0.5, coeff * q_function(arg))


def required_ebn0(target_ber: float,
                  bits_per_symbol: int = 1,
                  scheme: str = "qam") -> float:
    """Invert a BER curve: linear Eb/N0 needed to achieve ``target_ber``.

    Args:
        target_ber: target bit error rate in (0, 0.5).
        bits_per_symbol: modulation order exponent (QAM only).
        scheme: one of "qam", "bpsk", "ook".

    Returns:
        Required Eb/N0 as a linear ratio.

    Raises:
        ValueError: for out-of-range targets or unknown schemes.
    """
    if not 0.0 < target_ber < 0.5:
        raise ValueError("target BER must lie in (0, 0.5)")
    if scheme == "qam":
        curve = lambda x: ber_mqam(x, bits_per_symbol)  # noqa: E731
    elif scheme == "bpsk":
        curve = ber_bpsk
    elif scheme == "ook":
        curve = ber_ook
    else:
        raise ValueError(f"unknown scheme {scheme!r}")

    inc("link.ebn0_inversions")
    lo, hi = 1e-6, 1e-6
    # Grow the bracket until the BER at `hi` is below target.
    while curve(hi) > target_ber:
        hi *= 2.0
        if hi > 1e12:
            raise ValueError("failed to bracket required Eb/N0")
    return brentq(lambda x: curve(x) - target_ber, lo, hi, xtol=1e-9,
                  rtol=1e-12)


def shannon_ebn0_limit_db(spectral_efficiency: float) -> float:
    """Minimum Eb/N0 [dB] at a given spectral efficiency (bit/s/Hz).

    From C = B log2(1 + S/N): Eb/N0 >= (2^eta - 1) / eta.  As eta -> 0 this
    approaches -1.59 dB; it grows without bound as eta rises — the paper's
    "Shannon's limit suggests ... diminishing returns" argument (Section 5.1).
    """
    if spectral_efficiency <= 0:
        raise ValueError("spectral efficiency must be positive")
    ratio = (2.0 ** spectral_efficiency - 1.0) / spectral_efficiency
    return 10.0 * math.log10(ratio)


def _check_ebn0(ebn0_linear: float) -> None:
    if ebn0_linear <= 0:
        raise ValueError("Eb/N0 must be positive (linear ratio)")
