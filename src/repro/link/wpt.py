"""Wireless power transfer (WPT) model — Section 8 future consideration.

"Wireless power transfer is increasingly used to power implants, but it
raises questions about power efficiency and heat generation."  The subtle
point for the MINDFUL budget: power the implant *wastes* while receiving
(rectifier, regulator, coil losses dissipated on the implant side) heats
the same tissue the 40 mW/cm^2 limit protects, so the budget must cover

    P_dissipated = P_soc + P_soc * (1 - eta_implant) / eta_implant

i.e. the *effective* power an implant may spend on useful work shrinks by
its receive-chain efficiency.  This module models a two-coil inductive
link and exposes that effective-budget correction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class InductiveLink:
    """A two-coil inductive power link through tissue.

    Attributes:
        coupling: coil coupling coefficient k in (0, 1).
        q_transmit: loaded quality factor of the external coil.
        q_receive: loaded quality factor of the implanted coil.
        rectifier_efficiency: AC->DC conversion efficiency on the implant.
        regulator_efficiency: DC->DC regulation efficiency on the implant.
    """

    coupling: float = 0.05
    q_transmit: float = 100.0
    q_receive: float = 30.0
    rectifier_efficiency: float = 0.80
    regulator_efficiency: float = 0.85

    def __post_init__(self) -> None:
        if not 0.0 < self.coupling < 1.0:
            raise ValueError("coupling must lie in (0, 1)")
        if self.q_transmit <= 0 or self.q_receive <= 0:
            raise ValueError("quality factors must be positive")
        for eff in (self.rectifier_efficiency, self.regulator_efficiency):
            if not 0.0 < eff <= 1.0:
                raise ValueError("efficiencies must lie in (0, 1]")

    @property
    def link_efficiency(self) -> float:
        """Optimal coil-to-coil efficiency of a two-coil link.

        Standard result: with x = k^2 Qt Qr,
        eta = x / (1 + sqrt(1 + x))^2.
        """
        x = self.coupling ** 2 * self.q_transmit * self.q_receive
        return x / (1.0 + math.sqrt(1.0 + x)) ** 2

    @property
    def implant_chain_efficiency(self) -> float:
        """Receive-side efficiency (rectifier x regulator) — the losses
        that dissipate *inside the body*."""
        return self.rectifier_efficiency * self.regulator_efficiency

    @property
    def end_to_end_efficiency(self) -> float:
        """Wall-power to regulated-implant-supply efficiency."""
        return self.link_efficiency * self.implant_chain_efficiency

    def transmit_power_for(self, load_w: float) -> float:
        """External power needed to deliver ``load_w`` to the implant."""
        if load_w < 0:
            raise ValueError("load must be non-negative")
        return load_w / self.end_to_end_efficiency

    def implant_dissipation(self, load_w: float) -> float:
        """Heat dissipated on the implant side while delivering a load.

        The useful load itself also turns into heat; receive-chain losses
        add on top:  P_heat = load + load * (1 - eta_rx) / eta_rx.
        """
        if load_w < 0:
            raise ValueError("load must be non-negative")
        eta = self.implant_chain_efficiency
        return load_w / eta

    def effective_budget(self, thermal_budget_w: float) -> float:
        """Largest useful implant load fitting a thermal budget.

        Inverts :meth:`implant_dissipation`: load = budget * eta_rx.

        Raises:
            ValueError: for non-positive budgets.
        """
        if thermal_budget_w <= 0:
            raise ValueError("thermal budget must be positive")
        return thermal_budget_w * self.implant_chain_efficiency
