"""Transcutaneous link budget: from BER target to transmit energy per bit.

This module turns the paper's QAM parameters (Section 5.2: BER = 1e-6, path
loss = 60 dB, margin = 20 dB) into the transmit energy per bit Eb that
Eq. 9 consumes:

    P_comm(n) = T_comm(n) * Eb                                   (Eq. 9)

Derivation.  The receiver needs Eb_rx = (Eb/N0)_req * N0 at its input, where
N0 = k * T * NF is the thermal noise density (DESIGN.md substitution 6:
NF = 7 dB at body temperature reproduces the paper's Fig. 7 aggregates;
the resulting 1-bit/symbol transmit energy of ~24 pJ/bit at 100 %
efficiency is consistent with the paper's 50 pJ/bit OOK example once a
realistic implementation efficiency is folded in).
Radiated energy must exceed that by the path loss and the tissue margin, and
the transmitter burns 1/efficiency more than it radiates:

    Eb_tx = (Eb/N0)_req * N0 * 10^((PL + margin)/10) / efficiency

"Efficiency" here is the paper's *QAM efficiency* knob: the end-to-end power
efficiency of the transmitter implementation (~15 % achievable today for
biomedical QAM, per the paper's Section 5.2 evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.link.ber import required_ebn0
from repro.units import db_to_linear, thermal_noise_density

#: Paper's nominal QAM-equation parameters (Section 5.2, Evaluation).
DEFAULT_BER = 1e-6
DEFAULT_PATH_LOSS_DB = 60.0
DEFAULT_MARGIN_DB = 20.0

#: Receiver noise figure calibrated so the Fig. 7 aggregates reproduce:
#: with NF = 7 dB the SoCs realizable at today's ~15 % QAM efficiency
#: average 2x the 1024-channel standard at 20 % efficiency and ~4x at
#: 100 % — the paper's headline numbers (DESIGN.md substitution 6).
DEFAULT_NOISE_FIGURE_DB = 7.0


@dataclass(frozen=True)
class LinkBudget:
    """End-to-end budget of the implant-to-wearable RF link.

    Attributes:
        target_ber: bit error rate the modulation must achieve.
        path_loss_db: free-space + tissue attenuation between antennas.
        margin_db: additional safety margin for biological variability.
        noise_figure_db: receiver noise figure folded into N0.
        temperature_k: receiver physical temperature (body temperature).
    """

    target_ber: float = DEFAULT_BER
    path_loss_db: float = DEFAULT_PATH_LOSS_DB
    margin_db: float = DEFAULT_MARGIN_DB
    noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB
    temperature_k: float = 310.0

    def __post_init__(self) -> None:
        if not 0.0 < self.target_ber < 0.5:
            raise ValueError("target BER must lie in (0, 0.5)")
        if self.path_loss_db < 0 or self.margin_db < 0:
            raise ValueError("losses must be non-negative in dB")

    @property
    def noise_density_w_per_hz(self) -> float:
        """Effective one-sided noise density N0 at the receiver."""
        return thermal_noise_density(self.temperature_k,
                                     self.noise_figure_db)

    @property
    def total_loss_linear(self) -> float:
        """Linear attenuation the radiated signal must overcome."""
        return db_to_linear(self.path_loss_db + self.margin_db)

    def required_receive_energy_per_bit(self, bits_per_symbol: int,
                                        scheme: str = "qam") -> float:
        """Energy per bit needed at the receiver input [J]."""
        ebn0 = required_ebn0(self.target_ber, bits_per_symbol, scheme)
        return ebn0 * self.noise_density_w_per_hz

    def transmit_energy_per_bit(self, bits_per_symbol: int = 1,
                                efficiency: float = 1.0,
                                scheme: str = "qam") -> float:
        """Transmit (DC) energy per bit [J] including implementation losses.

        Args:
            bits_per_symbol: modulation order exponent b (M = 2^b).
            efficiency: end-to-end transmitter efficiency in (0, 1].
            scheme: BER curve family ("qam", "bpsk", "ook").

        Raises:
            ValueError: for efficiency outside (0, 1].
        """
        if not 0.0 < efficiency <= 1.0:
            raise ValueError("efficiency must lie in (0, 1]")
        rx = self.required_receive_energy_per_bit(bits_per_symbol, scheme)
        return rx * self.total_loss_linear / efficiency


def transmit_energy_per_bit(bits_per_symbol: int = 1,
                            efficiency: float = 1.0,
                            budget: LinkBudget | None = None,
                            scheme: str = "qam") -> float:
    """Convenience wrapper over :meth:`LinkBudget.transmit_energy_per_bit`."""
    return (budget or LinkBudget()).transmit_energy_per_bit(
        bits_per_symbol, efficiency, scheme)


def communication_power(throughput_bps: float,
                        energy_per_bit_j: float) -> float:
    """Eq. 9: P_comm = T_comm * Eb [W].

    Raises:
        ValueError: on negative throughput or energy.
    """
    if throughput_bps < 0:
        raise ValueError("throughput must be non-negative")
    if energy_per_bit_j < 0:
        raise ValueError("energy per bit must be non-negative")
    return throughput_bps * energy_per_bit_j
