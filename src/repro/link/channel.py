"""Monte-Carlo AWGN channel used to validate the closed-form BER curves.

The analytical results in :mod:`repro.link.ber` drive every wireless power
number in the MINDFUL evaluation; this simulator is the independent check
that those formulas are implemented correctly (tests compare measured and
theoretical BER at moderate Eb/N0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.stages import cached_stage
from repro.link.modulation import Modulation
from repro.obs.manifest import seeded_rng
from repro.obs.metrics import inc
from repro.obs.trace import span


@dataclass
class AwgnChannel:
    """Complex additive white Gaussian noise channel at a fixed Eb/N0.

    Symbols entering the channel are assumed normalized to unit average
    energy per bit (the convention of :mod:`repro.link.modulation`), so the
    per-complex-dimension noise variance is N0/2 = 1 / (2 * Eb/N0).

    Attributes:
        ebn0_linear: energy-per-bit to noise-density ratio (linear).
        rng: NumPy random generator.
    """

    ebn0_linear: float
    rng: np.random.Generator

    def __post_init__(self) -> None:
        if self.ebn0_linear <= 0:
            raise ValueError("Eb/N0 must be positive")

    def transmit(self, symbols: np.ndarray) -> np.ndarray:
        """Add circularly symmetric Gaussian noise to unit-Eb symbols."""
        n0 = 1.0 / self.ebn0_linear
        sigma = np.sqrt(n0 / 2.0)
        noise = sigma * (self.rng.standard_normal(symbols.shape)
                         + 1j * self.rng.standard_normal(symbols.shape))
        return symbols + noise


@cached_stage("link.measure_ber", rng_arg="rng")
def measure_ber(scheme: Modulation,
                ebn0_db: float,
                n_bits: int,
                rng: np.random.Generator | None = None) -> float:
    """Empirical BER of a modulation scheme over AWGN.

    Memoized under an active stage cache (:mod:`repro.cache.stages`):
    keyed on the scheme, operating point, bit budget, this module's
    source fingerprint, and the generator's pre-call state.

    Args:
        scheme: modulation under test.
        ebn0_db: Eb/N0 operating point in dB.
        n_bits: number of random bits to push through (rounded down to a
            whole number of symbols).
        rng: random generator for both data and noise; defaults to a
            generator honoring the process run seed
            (:func:`repro.obs.manifest.seeded_rng`, i.e. the CLI's
            ``--seed`` flag).

    Returns:
        Fraction of bit errors observed.

    Raises:
        ValueError: if fewer than one symbol's worth of bits is requested.
    """
    if rng is None:
        rng = seeded_rng()
    bits_per_symbol = scheme.bits_per_symbol
    n_bits = (n_bits // bits_per_symbol) * bits_per_symbol
    if n_bits <= 0:
        raise ValueError("need at least one symbol's worth of bits")
    with span("link.measure_ber", ebn0_db=ebn0_db, n_bits=n_bits):
        bits = rng.integers(0, 2, size=n_bits).astype(np.int8)
        symbols = scheme.modulate(bits)
        channel = AwgnChannel(ebn0_linear=10.0 ** (ebn0_db / 10.0),
                              rng=rng)
        received = channel.transmit(symbols)
        decoded = scheme.demodulate(received)
        n_errors = int(np.count_nonzero(decoded != bits))
    inc("link.mc_symbols_simulated", len(symbols))
    inc("link.mc_bits_simulated", n_bits)
    inc("link.mc_bit_errors", n_errors)
    return n_errors / n_bits


@cached_stage("link.measure_ber_sweep", rng_arg="rng")
def measure_ber_sweep(scheme: Modulation,
                      ebn0_db: np.ndarray,
                      n_bits: int,
                      rng: np.random.Generator | None = None,
                      chunk_bits: int = 1 << 20) -> np.ndarray:
    """Empirical BER over a whole Eb/N0 grid in one batched pass.

    Memoized under an active stage cache (:mod:`repro.cache.stages`),
    with the caller's generator fast-forwarded to its post-sweep state
    on a hit so downstream draws match an uncached run exactly.

    Each chunk draws one set of random bits, one modulation pass, and one
    unit-variance noise realization, then evaluates every grid point by
    scaling that noise to the point's N0 — a G-point sweep costs one
    modulation per chunk plus G cheap scale-and-demodulate passes,
    instead of G full Monte-Carlo runs.  Sharing data and noise across
    points is the standard common-random-numbers setup for comparing
    operating points; it intentionally differs from independent
    :func:`measure_ber` calls.

    Args:
        scheme: modulation under test.
        ebn0_db: Eb/N0 grid in dB (any array-like; flattened).
        n_bits: bits pushed through per grid point (rounded down to a
            whole number of symbols).
        rng: random generator; defaults to the process run seed
            (:func:`repro.obs.manifest.seeded_rng`).
        chunk_bits: upper bound on bits in flight at once — caps peak
            memory regardless of ``n_bits``.

    Returns:
        Array of observed bit-error fractions, one per grid point.

    Raises:
        ValueError: if fewer than one symbol's worth of bits is requested
            or the grid is empty.
    """
    if rng is None:
        rng = seeded_rng()
    grid = np.asarray(ebn0_db, dtype=np.float64).ravel()
    if grid.size == 0:
        raise ValueError("need at least one Eb/N0 point")
    bits_per_symbol = scheme.bits_per_symbol
    n_bits = (n_bits // bits_per_symbol) * bits_per_symbol
    if n_bits <= 0:
        raise ValueError("need at least one symbol's worth of bits")
    chunk_bits = max(bits_per_symbol,
                     (chunk_bits // bits_per_symbol) * bits_per_symbol)
    sigmas = np.sqrt(1.0 / (10.0 ** (grid / 10.0)) / 2.0)

    errors = np.zeros(grid.size, dtype=np.int64)
    done = 0
    with span("link.measure_ber_sweep", points=grid.size, n_bits=n_bits,
              chunk_bits=chunk_bits):
        while done < n_bits:
            take = min(chunk_bits, n_bits - done)
            bits = rng.integers(0, 2, size=take).astype(np.int8)
            symbols = scheme.modulate(bits)
            # Component-wise complex assembly: the same two normal
            # draws, in the same order, as ``re + 1j * im`` — but
            # written straight into place instead of through a complex
            # multiply and add (the noise array is the chunk's single
            # biggest temporary).
            unit_noise = np.empty(symbols.shape, dtype=np.complex128)
            unit_noise.real = rng.standard_normal(symbols.shape)
            unit_noise.imag = rng.standard_normal(symbols.shape)
            noisy = np.empty(symbols.shape, dtype=np.complex128)
            for point, sigma in enumerate(sigmas.tolist()):
                # sigma*noise + symbols into the reused scratch buffer:
                # bit-identical to ``symbols + sigma * unit_noise``
                # without two fresh chunk-sized temporaries per point.
                np.multiply(unit_noise, sigma, out=noisy)
                noisy += symbols
                decoded = scheme.demodulate(noisy)
                errors[point] += int(np.count_nonzero(decoded != bits))
            done += take
    inc("link.mc_symbols_simulated", (n_bits // bits_per_symbol) * grid.size)
    inc("link.mc_bits_simulated", n_bits * grid.size)
    inc("link.mc_bit_errors", int(errors.sum()))
    return errors / n_bits


def measure_ber_grid(schemes,
                     ebn0_db: np.ndarray,
                     n_bits: int,
                     seed: int | None = None,
                     chunk_bits: int = 1 << 20) -> np.ndarray:
    """Empirical BER over a whole (scheme x Eb/N0) design grid.

    The whole-grid entry point of the link-budget drivers: one call
    evaluates every modulation scheme over every operating point, each
    scheme in a single batched :func:`measure_ber_sweep` pass.  Every
    scheme draws from its own independent substream derived from the
    base seed and the scheme name
    (:func:`repro.perf.seeds.derive_stream_seed`), so results are
    schedule-independent: evaluating schemes in any order — or one at a
    time — yields bit-identical numbers.

    Args:
        schemes: iterable of :class:`~repro.link.modulation.Modulation`
            instances (each contributes one output row).
        ebn0_db: Eb/N0 grid in dB (any array-like; flattened).
        n_bits: bits pushed through per grid point per scheme.
        seed: base seed for the per-scheme substreams; defaults to the
            process run seed (:func:`repro.obs.manifest.current_seed`,
            i.e. the CLI's ``--seed``).
        chunk_bits: per-sweep memory bound, as in
            :func:`measure_ber_sweep`.

    Returns:
        Array of shape ``(len(schemes), grid size)`` of observed
        bit-error fractions.

    Raises:
        ValueError: if no schemes are given (grid/bit validation happens
            per sweep).
    """
    from repro.obs.manifest import current_seed
    from repro.perf.seeds import derive_stream_seed

    schemes = list(schemes)
    if not schemes:
        raise ValueError("need at least one modulation scheme")
    grid = np.asarray(ebn0_db, dtype=np.float64).ravel()
    base_seed = seed if seed is not None else current_seed()
    measured = np.empty((len(schemes), grid.size), dtype=np.float64)
    with span("link.measure_ber_grid", schemes=len(schemes),
              points=grid.size, n_bits=n_bits):
        for index, scheme in enumerate(schemes):
            rng = seeded_rng(derive_stream_seed(base_seed, "mc",
                                                scheme.name))
            measured[index] = measure_ber_sweep(scheme, grid, n_bits,
                                                rng=rng,
                                                chunk_bits=chunk_bits)
    return measured
