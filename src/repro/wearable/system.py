"""End-to-end BCI system evaluation: implant + RF link + wearable.

Joins the implanted-SoC analysis (Sections 4-6) with the wearable models
into the complete Fig. 1 system under each dataflow:

* ``comm_centric`` — the implant streams raw data; the wearable receives
  it and runs the *entire* DNN.
* ``comp_centric`` — the implant runs the whole DNN; the wearable only
  receives 40 labels.
* ``partitioned``  — Section 6.1: head on the implant, tail on the
  wearable, intermediate activations on the air.

The report pairs the implant's safety verdict (power ratio against
Eq. 3) with the wearable's battery life — the two constraints that
actually decide deployability.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.core.comp_centric import (
    Workload,
    build_workload,
    evaluate_comp_centric,
)
from repro.core.partitioning import evaluate_partitioned
from repro.core.scaling import ScaledSoC
from repro.units import SAFE_POWER_DENSITY
from repro.wearable.platform import WearableBudgetReport, WearablePlatform
from repro.wearable.receiver import Receiver


class Dataflow(enum.Enum):
    """Where the DNN runs (paper Fig. 3 plus the Section 6.1 hybrid)."""

    COMM_CENTRIC = "comm_centric"
    COMP_CENTRIC = "comp_centric"
    PARTITIONED = "partitioned"


@dataclass(frozen=True)
class BciSystem:
    """A complete implant + wearable configuration.

    Attributes:
        soc: the scaled implanted design.
        workload: the decoding DNN.
        dataflow: who runs it.
        receiver: wearable RF receiver.
        platform: wearable compute/battery platform.
    """

    soc: ScaledSoC
    workload: Workload
    dataflow: Dataflow
    receiver: Receiver = Receiver()
    platform: WearablePlatform = WearablePlatform()


@dataclass(frozen=True)
class SystemReport:
    """End-to-end evaluation of one system configuration.

    Attributes:
        dataflow: the evaluated dataflow.
        n_channels: NI channel count.
        air_rate_bps: data rate crossing the skull.
        implant_power_w: total implant power.
        implant_power_ratio: implant power over the Eq. 3 budget.
        wearable: the wearable-side budget report.
    """

    dataflow: Dataflow
    n_channels: int
    air_rate_bps: float
    implant_power_w: float
    implant_power_ratio: float
    wearable: WearableBudgetReport

    @property
    def implant_safe(self) -> bool:
        """Implant within the tissue-safety budget."""
        return self.implant_power_ratio <= 1.0

    @property
    def deployable(self) -> bool:
        """Safe implant and at least a waking day of wearable battery."""
        return self.implant_safe and self.wearable.lifetime_hours >= 16.0


def evaluate_system(system: BciSystem, n_channels: int) -> SystemReport:
    """Evaluate a full BCI system at a channel count.

    Raises:
        ValueError: for non-positive channel counts or streams beyond the
            wearable receiver's bandwidth.
    """
    if n_channels <= 0:
        raise ValueError("channel count must be positive")
    soc = system.soc
    network = build_workload(system.workload, n_channels)
    inference_rate = soc.sampling_hz

    if system.dataflow is Dataflow.COMM_CENTRIC:
        air_rate = soc.sensing_throughput_bps(n_channels)
        implant_power = (soc.sensing_power_w(n_channels)
                         + air_rate * soc.implied_energy_per_bit_j)
        area = (soc.sensing_area_m2(n_channels)
                + soc.non_sensing_area_m2 * n_channels / soc.n_channels)
        wearable_net = network
    elif system.dataflow is Dataflow.COMP_CENTRIC:
        point = evaluate_comp_centric(soc, system.workload, n_channels)
        air_rate = (network.output_values * soc.sample_bits
                    * soc.sampling_hz)
        implant_power = point.total_power_w
        area = soc.sensing_area_m2(n_channels) + soc.non_sensing_area_m2
        wearable_net = None
    else:
        point = evaluate_partitioned(soc, system.workload, n_channels)
        air_rate = (point.transmitted_values * soc.sample_bits
                    * soc.sampling_hz)
        implant_power = point.total_power_w
        area = soc.sensing_area_m2(n_channels) + soc.non_sensing_area_m2
        if point.split_layer is None:
            wearable_net = None  # whole network stayed on the implant
        else:
            wearable_net = network.tail(point.split_layer)

    receive_power = system.receiver.power_w(air_rate)
    if wearable_net is None:
        compute_power = 0.0
    else:
        compute_power = system.platform.compute_power_w(wearable_net,
                                                        inference_rate)
    base = system.platform.base_power_w
    total_wearable = receive_power + compute_power + base
    wearable = WearableBudgetReport(
        receive_power_w=receive_power,
        compute_power_w=compute_power,
        base_power_w=base,
        lifetime_hours=system.platform.battery.lifetime_hours(
            total_wearable),
    )
    budget = area * SAFE_POWER_DENSITY
    ratio = (implant_power / budget if math.isfinite(implant_power)
             else math.inf)
    return SystemReport(
        dataflow=system.dataflow,
        n_channels=n_channels,
        air_rate_bps=air_rate,
        implant_power_w=implant_power,
        implant_power_ratio=ratio,
        wearable=wearable,
    )
