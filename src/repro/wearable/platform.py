"""Wearable compute platform and battery model.

The wearable hosts whatever computation is not on the implant.  Its MACs
run at a mobile-class technology node without a thermal-safety ceiling,
but every joule comes out of a battery — so the figure of merit flips
from power density to battery life.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.schedule import best_schedule
from repro.accel.tech import TECH_12NM, TechnologyNode
from repro.dnn.network import Network
from repro.units import mw


@dataclass(frozen=True)
class BatteryPack:
    """A wearable battery.

    Attributes:
        capacity_wh: energy capacity in watt-hours.
        derating: usable fraction (aging, cutoff voltage).
    """

    capacity_wh: float = 5.0
    derating: float = 0.8

    def __post_init__(self) -> None:
        if self.capacity_wh <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < self.derating <= 1.0:
            raise ValueError("derating must lie in (0, 1]")

    @property
    def usable_energy_j(self) -> float:
        """Deliverable energy [J]."""
        return self.capacity_wh * 3600.0 * self.derating

    def lifetime_hours(self, load_w: float) -> float:
        """Runtime at a constant load [h].

        Raises:
            ValueError: for non-positive loads.
        """
        if load_w <= 0:
            raise ValueError("load must be positive")
        return self.usable_energy_j / load_w / 3600.0


@dataclass(frozen=True)
class WearableBudgetReport:
    """Power/lifetime assessment of a wearable workload.

    Attributes:
        receive_power_w: RF receive chain power.
        compute_power_w: decoder-tail compute power.
        base_power_w: housekeeping (MCU, memory, host link).
        lifetime_hours: battery life under the total load.
    """

    receive_power_w: float
    compute_power_w: float
    base_power_w: float
    lifetime_hours: float

    @property
    def total_power_w(self) -> float:
        """Total wearable load."""
        return (self.receive_power_w + self.compute_power_w
                + self.base_power_w)


@dataclass(frozen=True)
class WearablePlatform:
    """The wearable's compute and housekeeping characteristics.

    Attributes:
        tech: MAC technology node for the hosted decoder tail.
        base_power_w: always-on housekeeping power.
        battery: the energy source.
    """

    tech: TechnologyNode = TECH_12NM
    base_power_w: float = mw(10.0)
    battery: BatteryPack = BatteryPack()

    def __post_init__(self) -> None:
        if self.base_power_w < 0:
            raise ValueError("base power must be non-negative")

    def compute_power_w(self, network: Network,
                        inference_rate_hz: float) -> float:
        """Eq. 13-style bound for hosting a network at a given rate.

        The wearable has no 40 mW/cm^2 ceiling, so any schedule meeting
        the deadline is acceptable; the minimal-unit schedule still gives
        the energy floor.

        Raises:
            ValueError: if even the maximal allocation misses the rate
                (the network is too deep for the deadline).
        """
        if inference_rate_hz <= 0:
            raise ValueError("inference rate must be positive")
        profiles = network.mac_profiles()
        if not profiles:
            return 0.0
        schedule = best_schedule(profiles, 1.0 / inference_rate_hz,
                                 self.tech)
        if schedule is None:
            raise ValueError(
                f"{network.name} cannot meet {inference_rate_hz:.3g} Hz "
                f"even fully parallel on {self.tech.name}")
        return schedule.power_w(self.tech)
