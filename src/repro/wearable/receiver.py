"""Wearable-side RF receiver model.

Receive energy per bit is far below transmit energy (no tissue path to
overcome from the receiver's side — the implant already paid the link
budget), but it is not free: LNA, demodulation, and clock recovery burn a
roughly constant energy per received bit, plus a fixed always-on front-end
floor while the link is up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import gbps, mw, pj


@dataclass(frozen=True)
class Receiver:
    """A wearable RF receive chain.

    Attributes:
        energy_per_bit_j: demodulation/processing energy per bit.
        front_end_power_w: always-on LNA + synthesizer floor.
        max_data_rate_bps: front-end bandwidth limit.
    """

    energy_per_bit_j: float = pj(5.0)
    front_end_power_w: float = mw(2.0)
    max_data_rate_bps: float = gbps(1.0)

    def __post_init__(self) -> None:
        if self.energy_per_bit_j < 0 or self.front_end_power_w < 0:
            raise ValueError("receiver energies must be non-negative")
        if self.max_data_rate_bps <= 0:
            raise ValueError("max data rate must be positive")

    def supports(self, data_rate_bps: float) -> bool:
        """True when the stream fits the receiver's bandwidth."""
        if data_rate_bps < 0:
            raise ValueError("data rate must be non-negative")
        return data_rate_bps <= self.max_data_rate_bps

    def power_w(self, data_rate_bps: float) -> float:
        """Average receive power while taking a stream [W].

        Raises:
            ValueError: for rates beyond the front end's capability.
        """
        if not self.supports(data_rate_bps):
            raise ValueError(
                f"stream of {data_rate_bps:.3g} b/s exceeds receiver "
                f"limit {self.max_data_rate_bps:.3g} b/s")
        return self.front_end_power_w + data_rate_bps * self.energy_per_bit_j
