"""Wearable SoC substrate — the non-implanted half of the BCI (Fig. 1/2).

The implant's counterpart sits outside the skull: it receives the RF
stream, runs whatever computation was offloaded (the DNN tail after
Section 6.1 partitioning, or the whole decoder in communication-centric
systems), and forwards results.  Its constraint is not tissue safety but
the battery: the paper notes wearables enjoy "more relaxed power
constraints", and this package quantifies exactly how relaxed — receiver
power, compute power at wearable-class technology, and battery life.
"""

from repro.wearable.receiver import Receiver
from repro.wearable.platform import (
    BatteryPack,
    WearablePlatform,
    WearableBudgetReport,
)
from repro.wearable.system import BciSystem, SystemReport, evaluate_system

__all__ = [
    "Receiver",
    "BatteryPack",
    "WearablePlatform",
    "WearableBudgetReport",
    "BciSystem",
    "SystemReport",
    "evaluate_system",
]
