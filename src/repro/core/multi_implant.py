"""Multi-implant scaling (the SCALO-style alternative, Sections 5.1/7).

The paper observes that "at larger scales, the naive design is effectively
equivalent to scaling the number of implanted SoCs", and Related Work
cites systems that scale by deploying several implants (SCALO).  This
module makes that alternative explicit: n channels are split across N
identical 1024-channel implants, each individually safe, all sharing one
wearable receiver.

Per-implant physics is easy — each tile is just the anchor design.  The
system-level constraints are what bound N:

* **aggregate wireless bandwidth** — the wearable must receive the sum of
  all tiles' streams within its RF front-end bandwidth;
* **cortical real estate** — total implant area cannot exceed the usable
  cortical surface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.scaling import ScaledSoC
from repro.units import cm2, gbps


#: Usable human cortical surface for subdural tiles (both hemispheres'
#: accessible convexity; the full cortex is ~2500 cm^2 but most is buried
#: in sulci).
DEFAULT_CORTICAL_AREA_M2 = cm2(400.0)

#: Aggregate data rate a single wearable receiver front end can take.
DEFAULT_WEARABLE_BANDWIDTH_BPS = gbps(1.0)


@dataclass(frozen=True)
class MultiImplantSystem:
    """A tiled deployment of identical anchor implants.

    Attributes:
        soc: the per-tile 1024-channel design.
        n_implants: number of tiles deployed.
        wearable_bandwidth_bps: aggregate receive capability.
        cortical_area_m2: available tissue area for tiles.
    """

    soc: ScaledSoC
    n_implants: int
    wearable_bandwidth_bps: float = DEFAULT_WEARABLE_BANDWIDTH_BPS
    cortical_area_m2: float = DEFAULT_CORTICAL_AREA_M2

    def __post_init__(self) -> None:
        if self.n_implants <= 0:
            raise ValueError("need at least one implant")
        if self.wearable_bandwidth_bps <= 0:
            raise ValueError("wearable bandwidth must be positive")
        if self.cortical_area_m2 <= 0:
            raise ValueError("cortical area must be positive")

    @property
    def total_channels(self) -> int:
        """Aggregate channel count across tiles."""
        return self.n_implants * self.soc.n_channels

    @property
    def total_area_m2(self) -> float:
        """Total tissue area occupied by tiles."""
        return self.n_implants * self.soc.area_m2

    @property
    def total_power_w(self) -> float:
        """Total dissipation (distributed — each tile is locally safe)."""
        return self.n_implants * self.soc.power_w

    @property
    def aggregate_throughput_bps(self) -> float:
        """Sum of all tiles' raw streams at the wearable."""
        return self.n_implants * self.soc.sensing_throughput_bps()

    @property
    def per_tile_safe(self) -> bool:
        """Each tile individually within its Eq. 3 budget."""
        return self.soc.power_w <= self.soc.budget_w() * (1 + 1e-12)

    @property
    def within_wearable_bandwidth(self) -> bool:
        """Aggregate stream fits the wearable's receiver."""
        return self.aggregate_throughput_bps <= self.wearable_bandwidth_bps

    @property
    def within_cortical_area(self) -> bool:
        """Tiles fit the available cortical surface."""
        return self.total_area_m2 <= self.cortical_area_m2

    @property
    def feasible(self) -> bool:
        """All three constraints hold."""
        return (self.per_tile_safe and self.within_wearable_bandwidth
                and self.within_cortical_area)


def max_implants(soc: ScaledSoC,
                 wearable_bandwidth_bps: float =
                 DEFAULT_WEARABLE_BANDWIDTH_BPS,
                 cortical_area_m2: float = DEFAULT_CORTICAL_AREA_M2,
                 ) -> int:
    """Largest feasible tile count for a given anchor design.

    Returns 0 when even a single tile violates a constraint.
    """
    single = MultiImplantSystem(soc, 1, wearable_bandwidth_bps,
                                cortical_area_m2)
    if not single.feasible:
        return 0
    by_bandwidth = math.floor(wearable_bandwidth_bps
                              / soc.sensing_throughput_bps())
    by_area = math.floor(cortical_area_m2 / soc.area_m2)
    return max(1, min(by_bandwidth, by_area))


def channels_vs_single_implant(soc: ScaledSoC,
                               single_implant_limit: int,
                               **constraints: float) -> float:
    """How many times more channels tiling reaches than one scaled SoC.

    Args:
        soc: the anchor design.
        single_implant_limit: the best single-implant channel count (e.g.
            a Fig. 7 or Fig. 10 frontier).
        **constraints: forwarded to :func:`max_implants`.

    Raises:
        ValueError: for non-positive single-implant limits.
    """
    if single_implant_limit <= 0:
        raise ValueError("single-implant limit must be positive")
    tiles = max_implants(soc, **constraints)
    return tiles * soc.n_channels / single_implant_limit
