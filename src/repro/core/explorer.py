"""Design-space explorer: every architectural strategy, one verdict table.

Composes the framework's strategy evaluators — raw OOK streaming (naive /
high-margin), advanced modulation, lossless-compressed streaming,
event-driven spike streaming, and on-implant DNNs (full and partitioned) —
into a single per-SoC exploration: the maximum safe channel count each
strategy reaches and which strategy wins at a target channel count.

This is the "tailoring BCI systems to application needs" workflow the
paper's conclusions call for, packaged as an API (and surfaced by
``python -m repro explore``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.accel.tech import TECH_45NM, TechnologyNode
from repro.core.comm_centric import (
    DesignHypothesis,
    budget_crossing_channels,
    evaluate_comm_centric,
)
from repro.core.comp_centric import (
    Workload,
    evaluate_comp_centric,
    max_feasible_channels,
)
from repro.core.event_stream import (
    EventStreamConfig,
    evaluate_event_stream,
    max_channels_event_stream,
)
from repro.core.frontier import grid_frontier
from repro.core.partitioning import (
    evaluate_partitioned,
    max_feasible_channels_partitioned,
)
from repro.core.qam_design import (
    evaluate_qam_design,
    max_channels_at_efficiency,
)
from repro.core.scaling import ScaledSoC
from repro.units import SAFE_POWER_DENSITY


@dataclass(frozen=True)
class StrategyOutcome:
    """One strategy's verdict for a SoC.

    Attributes:
        strategy: strategy label.
        max_channels: largest safe channel count (None when unbounded
            within the explored limit).
        power_ratio_at_target: P_soc/P_budget at the exploration target.
    """

    strategy: str
    max_channels: int | None
    power_ratio_at_target: float

    @property
    def feasible_at_target(self) -> bool:
        """True when the target channel count stays within budget."""
        return self.power_ratio_at_target <= 1.0


@dataclass(frozen=True)
class ExplorationReport:
    """Full strategy comparison for one SoC.

    Attributes:
        soc_name: design name.
        target_channels: the channel count strategies were compared at.
        outcomes: per-strategy verdicts, in presentation order.
    """

    soc_name: str
    target_channels: int
    outcomes: tuple[StrategyOutcome, ...]

    def best_strategy(self) -> StrategyOutcome | None:
        """Lowest power ratio among strategies feasible at the target."""
        feasible = [o for o in self.outcomes if o.feasible_at_target]
        if not feasible:
            return None
        return min(feasible, key=lambda o: o.power_ratio_at_target)

    def frontier(self) -> dict[str, int | None]:
        """Strategy -> maximum safe channel count."""
        return {o.strategy: o.max_channels for o in self.outcomes}


def _compressed_stream_ratio(soc: ScaledSoC, n_channels,
                             compression_ratio: float,
                             codec_power_w_per_channel: float):
    """Power ratio of raw streaming with a lossless codec in front.

    Accepts a scalar channel count or an ndarray grid; the array form is
    numerically identical to the scalar one, point for point.
    """
    n = np.asarray(n_channels, dtype=np.float64)
    throughput = float(soc.sample_bits) * n * soc.sampling_hz
    comm = throughput / compression_ratio * soc.implied_energy_per_bit_j
    codec = codec_power_w_per_channel * n
    sensing_power = soc.sensing_power_anchor_w * n / soc.n_channels
    area = (soc.sensing_area_anchor_m2 * n / soc.n_channels
            + soc.non_sensing_area_m2)
    budget = area * SAFE_POWER_DENSITY
    ratio = (sensing_power + comm + codec) / budget
    return ratio if ratio.ndim else float(ratio)


def _max_channels_compressed(soc: ScaledSoC, compression_ratio: float,
                             codec_power_w_per_channel: float,
                             step: int = 256,
                             n_limit: int = 1 << 18) -> int:
    """Exact frontier of the compressed-streaming strategy.

    All terms are linear in n, so feasibility is a prefix property and
    the frontier is located by vectorized grid narrowing.  The curve is
    never evaluated beyond ``n_limit`` (the old doubling probe tested
    ``n * 2`` past the limit before clamping); ``step`` is retained for
    API compatibility — the result is no longer quantized to it.
    """
    del step  # legacy granularity knob; the frontier is now exact
    return grid_frontier(
        lambda n: _compressed_stream_ratio(soc, n, compression_ratio,
                                           codec_power_w_per_channel),
        n_limit)


def explore(soc: ScaledSoC,
            target_channels: int = 2048,
            qam_efficiency: float = 0.20,
            compression_ratio: float = 2.0,
            codec_power_w_per_channel: float = 2e-7,
            event_config: EventStreamConfig | None = None,
            tech: TechnologyNode = TECH_45NM) -> ExplorationReport:
    """Compare every architectural strategy for one scaled SoC.

    Args:
        soc: the 1024-channel anchor design.
        target_channels: channel count at which strategies are compared.
        qam_efficiency: achievable transmitter efficiency for the
            advanced-modulation strategy.
        compression_ratio: lossless codec ratio (measure one with
            :class:`repro.compress.NeuralCompressor`).
        codec_power_w_per_channel: codec cost per channel.
        event_config: event-stream parameters.
        tech: MAC technology for compute strategies.
    """
    if target_channels < soc.n_channels:
        raise ValueError("target must be at least the 1024-ch standard")
    event_config = event_config or EventStreamConfig()
    outcomes = []

    naive = evaluate_comm_centric(soc, target_channels,
                                  DesignHypothesis.NAIVE)
    outcomes.append(StrategyOutcome(
        "raw OOK (naive)",
        budget_crossing_channels(soc, DesignHypothesis.NAIVE),
        naive.power_ratio))

    margin = evaluate_comm_centric(soc, target_channels,
                                   DesignHypothesis.HIGH_MARGIN)
    outcomes.append(StrategyOutcome(
        "raw OOK (high margin)",
        budget_crossing_channels(soc, DesignHypothesis.HIGH_MARGIN),
        margin.power_ratio))

    qam = evaluate_qam_design(soc, target_channels)
    qam_ratio = (qam.min_efficiency / qam_efficiency
                 if math.isfinite(qam.min_efficiency) else math.inf)
    outcomes.append(StrategyOutcome(
        f"QAM @ {qam_efficiency:.0%}",
        max_channels_at_efficiency(soc, qam_efficiency),
        qam_ratio))

    outcomes.append(StrategyOutcome(
        f"compressed stream (x{compression_ratio:g})",
        _max_channels_compressed(soc, compression_ratio,
                                 codec_power_w_per_channel),
        _compressed_stream_ratio(soc, target_channels, compression_ratio,
                                 codec_power_w_per_channel)))

    event = evaluate_event_stream(soc, target_channels, event_config, tech)
    event_limit = 1 << 20
    event_max = max_channels_event_stream(soc, event_config, tech,
                                          n_limit=event_limit)
    outcomes.append(StrategyOutcome(
        "event stream (spikes only)",
        None if event_max >= event_limit - 256 else event_max,
        event.power_ratio))

    for workload in Workload:
        full = evaluate_comp_centric(soc, workload, target_channels, tech)
        outcomes.append(StrategyOutcome(
            f"on-implant {workload.value}",
            max_feasible_channels(soc, workload, tech),
            full.power_ratio))
        part = evaluate_partitioned(soc, workload, target_channels, tech)
        outcomes.append(StrategyOutcome(
            f"partitioned {workload.value}",
            max_feasible_channels_partitioned(soc, workload, tech),
            part.power_ratio))

    # Closed loop: decode once per decision, stimulate, no telemetry —
    # a different application class with a far looser compute deadline.
    from repro.core.closed_loop import (
        evaluate_closed_loop,
        max_channels_closed_loop,
    )
    from repro.dnn.models import build_speech_mlp
    loop = evaluate_closed_loop(soc, build_speech_mlp(target_channels),
                                target_channels, tech=tech)
    outcomes.append(StrategyOutcome(
        "closed loop (mlp, no telemetry)",
        max_channels_closed_loop(soc, build_speech_mlp, tech),
        loop.power_ratio if loop.meets_deadline else math.inf))

    return ExplorationReport(soc_name=soc.name,
                             target_channels=target_channels,
                             outcomes=tuple(outcomes))
