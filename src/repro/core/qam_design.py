"""Communication-centric architectures with advanced modulation (Fig. 7).

Paper Section 5.2: beyond 1024 channels the antenna bandwidth is fixed, so
each additional 1024-channel block forces one more bit per QAM symbol:

    b(n) = ceil(n / 1024)

Solving the QAM equation (BER = 1e-6, path loss 60 dB, margin 20 dB) gives
the ideal energy per bit Eb(b); a real transmitter burns Eb(b)/efficiency.
The design stays safe while

    P_sensing(n) + T_sensing(n) * Eb(b(n)) / efficiency <= P_budget(n)

with the non-sensing area frozen at its 1024-channel value (volumetric
efficiency forbids growing it).  ``minimum_qam_efficiency`` inverts that
inequality — the Fig. 7 y-axis; ``max_channels_at_efficiency`` inverts it
the other way (the paper's ~2200 channels at 20 %, ~4000 at 100 %).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.frontier import first_run_frontier
from repro.core.scaling import ScaledSoC
from repro.link.budget import LinkBudget
from repro.units import SAFE_POWER_DENSITY


def bits_per_symbol_for(n_channels: int,
                        standard: int = 1024) -> int:
    """b(n): one more bit per symbol for each 1024-channel block."""
    if n_channels <= 0:
        raise ValueError("channel count must be positive")
    return math.ceil(n_channels / standard)


@dataclass(frozen=True)
class QamDesignPoint:
    """One (SoC, n) evaluation of the advanced-modulation design.

    Attributes:
        soc_name: design name.
        n_channels: NI channel count.
        bits_per_symbol: QAM order exponent in use.
        ideal_energy_per_bit_j: Eb(b) at 100 % efficiency.
        comm_power_at_full_efficiency_w: T * Eb(b).
        available_power_w: P_budget(n) - P_sensing(n).
        min_efficiency: minimum QAM efficiency keeping the design safe;
            ``inf`` when sensing alone exceeds the budget.
    """

    soc_name: str
    n_channels: int
    bits_per_symbol: int
    ideal_energy_per_bit_j: float
    comm_power_at_full_efficiency_w: float
    available_power_w: float
    min_efficiency: float

    @property
    def feasible(self) -> bool:
        """True when even an ideal (100 %-efficient) QAM suffices."""
        return self.min_efficiency <= 1.0


def evaluate_qam_design(soc: ScaledSoC, n_channels: int,
                        budget: LinkBudget | None = None) -> QamDesignPoint:
    """Minimum QAM efficiency for a scaled SoC at ``n_channels``."""
    if n_channels < soc.n_channels:
        raise ValueError(f"QAM scaling explores n >= {soc.n_channels}")
    budget = budget or LinkBudget()
    bits = bits_per_symbol_for(n_channels, soc.n_channels)
    try:
        energy = budget.transmit_energy_per_bit(bits_per_symbol=bits,
                                                efficiency=1.0,
                                                scheme="qam")
    except ValueError:
        # Absurd constellation orders (hundreds of bits/symbol) overflow
        # the Eb/N0 bracket — physically they are simply unreachable.
        energy = math.inf
    throughput = soc.sensing_throughput_bps(n_channels)
    comm_power = throughput * energy

    area = soc.sensing_area_m2(n_channels) + soc.non_sensing_area_m2
    available = area * SAFE_POWER_DENSITY - soc.sensing_power_w(n_channels)
    if available <= 0.0:
        efficiency = math.inf
    else:
        efficiency = comm_power / available
    return QamDesignPoint(
        soc_name=soc.name,
        n_channels=n_channels,
        bits_per_symbol=bits,
        ideal_energy_per_bit_j=energy,
        comm_power_at_full_efficiency_w=comm_power,
        available_power_w=max(0.0, available),
        min_efficiency=efficiency,
    )


def sweep_qam_efficiency(soc: ScaledSoC,
                         channel_counts: list[int],
                         budget: LinkBudget | None = None,
                         ) -> list[QamDesignPoint]:
    """Fig. 7 series: minimum efficiency across a channel sweep."""
    budget = budget or LinkBudget()
    return [evaluate_qam_design(soc, n, budget) for n in channel_counts]


def _ideal_energy_per_bit(bits_per_symbol: int,
                          budget: LinkBudget) -> float:
    """Eb(b) at 100 % efficiency, ``inf`` for unreachable orders."""
    try:
        return budget.transmit_energy_per_bit(
            bits_per_symbol=bits_per_symbol, efficiency=1.0, scheme="qam")
    except ValueError:
        # Absurd constellation orders overflow the Eb/N0 bracket —
        # physically they are simply unreachable.
        return math.inf


def min_efficiency_curve(soc: ScaledSoC,
                         channel_counts: np.ndarray,
                         budget: LinkBudget | None = None) -> np.ndarray:
    """Vectorized Fig. 7 y-axis over a whole channel grid.

    The expensive Eb/N0 inversion is evaluated once per distinct QAM
    order (one per 1024-channel block) instead of once per channel count;
    otherwise the result is numerically identical, point for point, to
    ``evaluate_qam_design(soc, n, budget).min_efficiency``.
    """
    budget = budget or LinkBudget()
    n = np.asarray(channel_counts, dtype=np.int64)
    if n.size and int(n.min()) < soc.n_channels:
        raise ValueError(f"QAM scaling explores n >= {soc.n_channels}")
    bits = np.ceil(n / soc.n_channels).astype(np.int64)
    energy_by_order = {b: _ideal_energy_per_bit(b, budget)
                       for b in np.unique(bits).tolist()}
    energy = np.array([energy_by_order[b] for b in bits.tolist()])
    throughput = float(soc.sample_bits) * n * soc.sampling_hz
    comm_power = throughput * energy
    area = (soc.sensing_area_anchor_m2 * n / soc.n_channels
            + soc.non_sensing_area_m2)
    available = (area * SAFE_POWER_DENSITY
                 - soc.sensing_power_anchor_w * n / soc.n_channels)
    starved = available <= 0.0
    with np.errstate(invalid="ignore"):
        efficiency = comm_power / np.where(starved, 1.0, available)
    return np.where(starved, math.inf, efficiency)


def max_channels_at_efficiency(soc: ScaledSoC,
                               efficiency: float,
                               budget: LinkBudget | None = None,
                               step: int = 64,
                               n_limit: int = 32768) -> int:
    """Largest channel count a given QAM efficiency can sustain.

    Scans in ``step``-channel increments (the efficiency requirement is
    piecewise smooth with jumps at 1024-channel block boundaries, so a
    plain scan is robust where bisection is not).  The whole scan grid is
    evaluated in one :func:`min_efficiency_curve` pass; results match the
    historical scalar scan exactly.

    Returns:
        The maximum feasible n; ``soc.n_channels`` - step if even the
        anchor is infeasible is never returned — the result is floored at 0.
    """
    if not 0.0 < efficiency <= 1.0:
        raise ValueError("efficiency must lie in (0, 1]")
    budget = budget or LinkBudget()
    grid = np.arange(soc.n_channels, n_limit + 1, step, dtype=np.int64)
    if grid.size == 0:
        return 0
    curve = min_efficiency_curve(soc, grid, budget)
    return first_run_frontier(grid, curve <= efficiency)
