"""Channel-count roadmap: the field's doubling law meets the frontiers.

The paper's introduction: the channel count of neural interfaces "has
doubled roughly every seven years" (Stevenson & Kording), and Section 8
expects the pace to accelerate.  This module turns every strategy
frontier the framework computes into a *date* — the year a strategy stops
being able to keep up — which is the planning view architects actually
need.

    channels(year) = anchor_channels * 2^((year - anchor_year) / T_double)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: The paper's anchor: 1024 channels is the standard "today".
DEFAULT_ANCHOR_YEAR = 2025
DEFAULT_ANCHOR_CHANNELS = 1024

#: Stevenson & Kording doubling period [years].
DEFAULT_DOUBLING_YEARS = 7.0


@dataclass(frozen=True)
class ChannelRoadmap:
    """The exponential channel-count trend.

    Attributes:
        anchor_year: year of the anchor channel count.
        anchor_channels: channel count at the anchor year.
        doubling_years: doubling period.
    """

    anchor_year: float = DEFAULT_ANCHOR_YEAR
    anchor_channels: int = DEFAULT_ANCHOR_CHANNELS
    doubling_years: float = DEFAULT_DOUBLING_YEARS

    def __post_init__(self) -> None:
        if self.anchor_channels <= 0:
            raise ValueError("anchor channel count must be positive")
        if self.doubling_years <= 0:
            raise ValueError("doubling period must be positive")

    def channels_in(self, year: float) -> float:
        """Projected channel count in a given year."""
        exponent = (year - self.anchor_year) / self.doubling_years
        return self.anchor_channels * 2.0 ** exponent

    def year_reaching(self, channels: float) -> float:
        """Year the trend reaches a channel count.

        Raises:
            ValueError: for non-positive channel counts.
        """
        if channels <= 0:
            raise ValueError("channel count must be positive")
        ratio = channels / self.anchor_channels
        return self.anchor_year + self.doubling_years * math.log2(ratio)

    def strategy_horizon(self, max_channels: float | None) -> float:
        """Year a strategy's frontier is overtaken by the trend.

        Args:
            max_channels: the strategy's feasibility limit; None means
                unbounded (returns +inf).
        """
        if max_channels is None:
            return math.inf
        if max_channels < self.anchor_channels:
            # Already behind the standard: the horizon is in the past.
            return self.year_reaching(max(max_channels, 1))
        return self.year_reaching(max_channels)

    def with_acceleration(self, factor: float) -> "ChannelRoadmap":
        """A faster roadmap (Section 8 expects the doubling to speed up).

        Raises:
            ValueError: for non-positive acceleration factors.
        """
        if factor <= 0:
            raise ValueError("acceleration factor must be positive")
        return ChannelRoadmap(anchor_year=self.anchor_year,
                              anchor_channels=self.anchor_channels,
                              doubling_years=self.doubling_years / factor)
