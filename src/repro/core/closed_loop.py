"""Closed-loop BCI analysis — the paper's declared future extension.

Section 7: "In the future, we plan to extend this work to accommodate
closed-loop BCIs."  A closed-loop system senses, decodes, and *stimulates*
back into tissue, and the whole loop must complete within the brain's
reaction time — the paper's Section 2 cites ~0.18 s as the bound some
real-time definitions use.

This module composes the existing pieces into that loop:

    latency = acquisition window + decode latency (Eq. 11/14 schedule)
              + stimulation setup
    power   = P_sensing + P_comp + P_stim  (all inside the Eq. 3 budget;
              a closed-loop implant may not need the transmitter at all)

Stimulation power follows the standard charge-balanced biphasic pulse
model: P = rate * amplitude^2 * impedance * pulse_width * 2 per electrode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.accel.schedule import Schedule, cached_best_schedule
from repro.accel.tech import TECH_45NM, TechnologyNode
from repro.core.scaling import ScaledSoC
from repro.dnn.network import Network
from repro.obs.metrics import inc
from repro.obs.trace import span
from repro.units import SAFE_POWER_DENSITY, ms

#: Brain reaction time used as the real-time bound (Section 2, ~0.18 s).
BRAIN_REACTION_TIME_S = 0.18


@dataclass(frozen=True)
class StimulationConfig:
    """Charge-balanced biphasic stimulation parameters.

    Attributes:
        n_electrodes: electrodes driven per decision.
        pulse_rate_hz: stimulation pulse rate per electrode.
        amplitude_a: current amplitude per phase.
        pulse_width_s: duration of each phase.
        electrode_impedance_ohm: tissue-electrode interface impedance.
        driver_overhead: circuit overhead multiplier (> 1).
    """

    n_electrodes: int = 16
    pulse_rate_hz: float = 100.0
    amplitude_a: float = 100e-6
    pulse_width_s: float = ms(0.2)
    electrode_impedance_ohm: float = 10e3
    driver_overhead: float = 1.5

    def __post_init__(self) -> None:
        if self.n_electrodes <= 0:
            raise ValueError("electrode count must be positive")
        if min(self.pulse_rate_hz, self.amplitude_a, self.pulse_width_s,
               self.electrode_impedance_ohm) <= 0:
            raise ValueError("stimulation parameters must be positive")
        if self.driver_overhead < 1.0:
            raise ValueError("driver overhead must be >= 1")

    @property
    def power_w(self) -> float:
        """Average stimulation power across all electrodes."""
        per_pulse_energy = (self.amplitude_a ** 2
                            * self.electrode_impedance_ohm
                            * self.pulse_width_s * 2.0)  # biphasic
        return (self.n_electrodes * self.pulse_rate_hz * per_pulse_energy
                * self.driver_overhead)


@dataclass(frozen=True)
class ClosedLoopPoint:
    """One closed-loop design evaluation.

    Attributes:
        soc_name: design name.
        n_channels: NI channel count.
        acquisition_s: input-window duration (samples / f).
        decode_s: DNN latency under the chosen schedule.
        stimulation_s: stimulation onset delay (one pulse period).
        sensing_power_w / comp_power_w / stim_power_w: power breakdown.
        budget_w: Eq. 3 budget.
        schedule: decode schedule (None when infeasible).
        deadline_s: the loop's real-time bound.
    """

    soc_name: str
    n_channels: int
    acquisition_s: float
    decode_s: float
    stimulation_s: float
    sensing_power_w: float
    comp_power_w: float
    stim_power_w: float
    budget_w: float
    schedule: Schedule | None
    deadline_s: float

    @property
    def loop_latency_s(self) -> float:
        """End-to-end reaction latency of the loop."""
        return self.acquisition_s + self.decode_s + self.stimulation_s

    @property
    def meets_deadline(self) -> bool:
        """True when the loop completes within the reaction-time bound."""
        return (math.isfinite(self.loop_latency_s)
                and self.loop_latency_s <= self.deadline_s)

    @property
    def total_power_w(self) -> float:
        """Implant power for the closed loop (no telemetry transmitter)."""
        return self.sensing_power_w + self.comp_power_w + self.stim_power_w

    @property
    def power_ratio(self) -> float:
        """P_soc / P_budget."""
        return self.total_power_w / self.budget_w

    @property
    def feasible(self) -> bool:
        """Within both the power budget and the latency deadline."""
        return self.meets_deadline and self.power_ratio <= 1.0


def max_channels_closed_loop(soc: ScaledSoC,
                             build_network,
                             tech: TechnologyNode = TECH_45NM,
                             step: int = 256,
                             n_limit: int = 16384,
                             **kwargs) -> int:
    """Largest n at which the closed loop stays feasible.

    Args:
        soc: the anchor design.
        build_network: channel count -> decoder network factory.
        tech: MAC technology node.
        step / n_limit: scan granularity and ceiling.
        **kwargs: forwarded to :func:`evaluate_closed_loop`.
    """
    best = 0
    n = step
    while n <= n_limit:
        point = evaluate_closed_loop(soc, build_network(n), n, tech=tech,
                                     **kwargs)
        if point.feasible:
            best = n
        elif best:
            break
        n += step
    return best


def evaluate_closed_loop(soc: ScaledSoC,
                         network: Network,
                         n_channels: int,
                         window_samples: int = 4,
                         stimulation: StimulationConfig | None = None,
                         tech: TechnologyNode = TECH_45NM,
                         deadline_s: float = BRAIN_REACTION_TIME_S,
                         ) -> ClosedLoopPoint:
    """Assess a closed-loop implant running a decoder network.

    The decode stage gets whatever time the acquisition window leaves of
    the reaction budget; Eq. 11/14 then sizes the MAC pool for that
    deadline (a much looser one than the per-sample bound of Fig. 10 —
    closed-loop decoding happens once per decision, not once per sample).
    """
    if n_channels <= 0 or window_samples <= 0:
        raise ValueError("channel count and window must be positive")
    if deadline_s <= 0:
        raise ValueError("deadline must be positive")
    stimulation = stimulation or StimulationConfig()
    inc("closed_loop.evaluations")
    acquisition = window_samples / soc.sampling_hz
    stim_delay = 1.0 / stimulation.pulse_rate_hz
    compute_budget = deadline_s - acquisition - stim_delay
    if compute_budget <= 0:
        schedule = None
        decode = math.inf
        comp_power = math.inf
    else:
        with span("closed_loop.schedule", soc=soc.name,
                  n_channels=n_channels):
            schedule = cached_best_schedule(tuple(network.mac_profiles()),
                                            compute_budget, tech)
        decode = schedule.runtime_s if schedule else math.inf
        comp_power = schedule.power_w(tech) if schedule else math.inf

    area = soc.sensing_area_m2(n_channels) + soc.non_sensing_area_m2
    return ClosedLoopPoint(
        soc_name=soc.name,
        n_channels=n_channels,
        acquisition_s=acquisition,
        decode_s=decode,
        stimulation_s=stim_delay,
        sensing_power_w=soc.sensing_power_w(n_channels),
        comp_power_w=comp_power,
        stim_power_w=stimulation.power_w,
        budget_w=area * SAFE_POWER_DENSITY,
        schedule=schedule,
        deadline_s=deadline_s,
    )
