"""Sensitivity analysis over the framework's estimated parameters.

DESIGN.md substitution 2 concedes that per-SoC sensing/communication
splits are engineering estimates; this module quantifies how much they
matter.  Each analysis perturbs one parameter across a plausible range,
re-derives a headline metric, and reports the swing — a tornado-style
robustness statement for EXPERIMENTS.md's "shape holds" claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.comm_centric import (
    DesignHypothesis,
    budget_crossing_channels,
)
from repro.core.comp_centric import Workload, max_feasible_channels
from repro.core.qam_design import max_channels_at_efficiency
from repro.core.scaling import ScaledSoC, scale_to_standard
from repro.core.socs import SoCRecord
from repro.link.budget import LinkBudget


@dataclass(frozen=True)
class SensitivityResult:
    """Effect of sweeping one parameter on one metric.

    Attributes:
        parameter: swept parameter name.
        metric: metric name.
        values: swept parameter values.
        outcomes: metric value per sweep point.
    """

    parameter: str
    metric: str
    values: tuple[float, ...]
    outcomes: tuple[float, ...]

    @property
    def swing(self) -> float:
        """Max minus min of the metric across the sweep."""
        return max(self.outcomes) - min(self.outcomes)

    @property
    def relative_swing(self) -> float:
        """Swing normalized by the mid-sweep outcome."""
        mid = self.outcomes[len(self.outcomes) // 2]
        if mid == 0:
            return float("inf") if self.swing else 0.0
        return self.swing / abs(mid)


def _metric_fn(metric: str) -> Callable[[ScaledSoC], float]:
    if metric == "mlp_max_channels":
        return lambda soc: float(max_feasible_channels(soc, Workload.MLP))
    if metric == "high_margin_crossing":
        def crossing(soc: ScaledSoC) -> float:
            result = budget_crossing_channels(
                soc, DesignHypothesis.HIGH_MARGIN)
            return float(result) if result is not None else float("inf")
        return crossing
    if metric == "qam_channels_at_20pct":
        return lambda soc: float(max_channels_at_efficiency(soc, 0.20))
    raise ValueError(
        f"unknown metric {metric!r}; expected mlp_max_channels, "
        "high_margin_crossing, or qam_channels_at_20pct")


def sweep_record_parameter(record: SoCRecord,
                           parameter: str,
                           values: tuple[float, ...],
                           metric: str) -> SensitivityResult:
    """Sweep one SoCRecord field and re-derive a metric.

    Args:
        record: the base Table 1 design.
        parameter: a SoCRecord field name (e.g. "comm_power_fraction",
            "sensing_area_fraction", "sample_bits").
        values: parameter values to try.
        metric: one of the supported metric names.

    Raises:
        ValueError: for unknown fields, empty sweeps, or unknown metrics.
    """
    if not values:
        raise ValueError("sweep needs at least one value")
    if not hasattr(record, parameter):
        raise ValueError(f"SoCRecord has no field {parameter!r}")
    fn = _metric_fn(metric)
    outcomes = []
    for value in values:
        cast = int(value) if parameter == "sample_bits" else value
        variant = record.with_updates(**{parameter: cast})
        outcomes.append(fn(scale_to_standard(variant)))
    return SensitivityResult(parameter=parameter, metric=metric,
                             values=tuple(values),
                             outcomes=tuple(outcomes))


def sweep_noise_figure(record: SoCRecord,
                       values: tuple[float, ...],
                       efficiency: float = 0.20) -> SensitivityResult:
    """Sweep the link-budget noise figure against the QAM frontier."""
    if not values:
        raise ValueError("sweep needs at least one value")
    soc = scale_to_standard(record)
    outcomes = tuple(
        float(max_channels_at_efficiency(
            soc, efficiency, LinkBudget(noise_figure_db=nf)))
        for nf in values)
    return SensitivityResult(parameter="noise_figure_db",
                             metric=f"qam_channels_at_{efficiency:.0%}",
                             values=tuple(values), outcomes=outcomes)


def tornado(record: SoCRecord,
            metric: str = "mlp_max_channels") -> list[SensitivityResult]:
    """Standard tornado set: both split fractions and the bit width."""
    base_comm = record.comm_power_fraction
    base_area = record.sensing_area_fraction
    sweeps = [
        ("comm_power_fraction",
         (max(0.05, base_comm - 0.1), base_comm,
          min(0.9, base_comm + 0.1))),
        ("sensing_area_fraction",
         (max(0.1, base_area - 0.1), base_area,
          min(0.9, base_area + 0.1))),
        ("sample_bits", (8.0, 10.0, 12.0)),
    ]
    return [sweep_record_parameter(record, name, values, metric)
            for name, values in sweeps]
