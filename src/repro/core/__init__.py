"""The MINDFUL analytical framework (paper Sections 3-6).

Entry points:

* :mod:`repro.core.socs` — Table 1 database.
* :mod:`repro.core.scaling` — Eq. 1-5 scaling to/beyond 1024 channels.
* :mod:`repro.core.comm_centric` — naive / high-margin OOK designs.
* :mod:`repro.core.qam_design` — advanced-modulation minimum efficiency.
* :mod:`repro.core.comp_centric` — on-implant DNN integration.
* :mod:`repro.core.partitioning` — implant/wearable layer reduction.
* :mod:`repro.core.optimizations` — the ChDr/La/Tech/Dense ladder.
"""

from repro.core.socs import (
    DEFAULT_SAMPLE_BITS,
    STANDARD_CHANNELS,
    TABLE1,
    NIType,
    ScalingRule,
    SoCRecord,
    soc_by_number,
    wireless_socs,
)
from repro.core.scaling import ScaledSoC, scale_to_standard
from repro.core.comm_centric import (
    CommCentricPoint,
    DesignHypothesis,
    budget_crossing_channels,
    evaluate_comm_centric,
    sweep_comm_centric,
)
from repro.core.qam_design import (
    QamDesignPoint,
    bits_per_symbol_for,
    evaluate_qam_design,
    max_channels_at_efficiency,
    sweep_qam_efficiency,
)
from repro.core.comp_centric import (
    CompCentricPoint,
    Workload,
    build_workload,
    evaluate_comp_centric,
    max_feasible_channels,
    sweep_comp_centric,
)
from repro.core.partitioning import (
    admissible_splits,
    PartitionedPoint,
    PartitioningGain,
    evaluate_partitioned,
    find_split_layer,
    max_feasible_channels_partitioned,
    partitioning_gain,
)
from repro.core.event_stream import (
    EventStreamConfig,
    EventStreamPoint,
    break_even_spike_rate_hz,
    evaluate_event_stream,
    max_channels_event_stream,
)
from repro.core.closed_loop import (
    BRAIN_REACTION_TIME_S,
    ClosedLoopPoint,
    StimulationConfig,
    evaluate_closed_loop,
)
from repro.core.multi_implant import (
    MultiImplantSystem,
    channels_vs_single_implant,
    max_implants,
)
from repro.core.roadmap import ChannelRoadmap
from repro.core.sensitivity import (
    SensitivityResult,
    sweep_noise_figure,
    sweep_record_parameter,
    tornado,
)
from repro.core.explorer import (
    ExplorationReport,
    StrategyOutcome,
    explore,
)
from repro.core.optimizations import (
    LADDER,
    OptimizationConfig,
    OptimizedDesign,
    evaluate_ladder,
    evaluate_ladder_step,
    max_active_channels,
)

__all__ = [
    "DEFAULT_SAMPLE_BITS",
    "STANDARD_CHANNELS",
    "TABLE1",
    "NIType",
    "ScalingRule",
    "SoCRecord",
    "soc_by_number",
    "wireless_socs",
    "ScaledSoC",
    "scale_to_standard",
    "CommCentricPoint",
    "DesignHypothesis",
    "budget_crossing_channels",
    "evaluate_comm_centric",
    "sweep_comm_centric",
    "QamDesignPoint",
    "bits_per_symbol_for",
    "evaluate_qam_design",
    "max_channels_at_efficiency",
    "sweep_qam_efficiency",
    "CompCentricPoint",
    "Workload",
    "build_workload",
    "evaluate_comp_centric",
    "max_feasible_channels",
    "sweep_comp_centric",
    "PartitionedPoint",
    "admissible_splits",
    "PartitioningGain",
    "evaluate_partitioned",
    "find_split_layer",
    "max_feasible_channels_partitioned",
    "partitioning_gain",
    "EventStreamConfig",
    "EventStreamPoint",
    "break_even_spike_rate_hz",
    "evaluate_event_stream",
    "max_channels_event_stream",
    "BRAIN_REACTION_TIME_S",
    "ClosedLoopPoint",
    "StimulationConfig",
    "evaluate_closed_loop",
    "ExplorationReport",
    "StrategyOutcome",
    "explore",
    "ChannelRoadmap",
    "SensitivityResult",
    "sweep_noise_figure",
    "sweep_record_parameter",
    "tornado",
    "MultiImplantSystem",
    "channels_vs_single_implant",
    "max_implants",
    "LADDER",
    "OptimizationConfig",
    "OptimizedDesign",
    "evaluate_ladder",
    "evaluate_ladder_step",
    "max_active_channels",
]
