"""DNN partitioning between implant and wearable (Section 6.1, Fig. 11).

Layer reduction places only the first layers of the DNN on the implant and
streams the intermediate activations to the wearable.  The paper's rule:
partition at the *earliest* layer whose required transmission rate does not
exceed that of a 1024-channel communication-centric design — i.e. whose
output is at most 1024 values per sampling period (the d and f factors are
shared, so they cancel).

Applied literally below ~512 channels that rule splits after the very
first layer and *increases* implant power (transmitting 2n activations
costs more than the saved tail compute), so the evaluator here considers
every admissible split — including "no split" — and keeps the one with the
lowest implant power.  For the scaling regime the paper studies
(n >= 1024) the two rules coincide; the earliest-layer rule remains
available as :func:`find_split_layer`.

When no intermediate layer fits the transmission budget (the DN-CNN case —
every feature map is wider than 1024 values), partitioning degenerates to
the full on-implant design and brings no benefit, matching Fig. 11.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.accel.schedule import Schedule, cached_best_schedule
from repro.accel.tech import TECH_45NM, TechnologyNode
from repro.core.comp_centric import Workload, build_workload
from repro.core.scaling import ScaledSoC
from repro.dnn.macs import LayerMacs
from repro.dnn.network import Network
from repro.units import SAFE_POWER_DENSITY


def find_split_layer(network: Network,
                     max_values: int = 1024) -> int | None:
    """Paper's earliest-layer rule.

    Args:
        network: the full workload network.
        max_values: output-value cap (1024-channel-equivalent rate).

    Returns:
        1-based compute-layer index to split after, or None when only the
        final layer qualifies (no useful partition).
    """
    sizes = network.compute_layer_output_values()
    for index, size in enumerate(sizes[:-1], start=1):
        if size <= max_values:
            return index
    return None


def admissible_splits(network: Network,
                      max_values: int = 1024) -> list[int]:
    """All 1-based compute-layer indices whose output fits the budget,
    excluding the final layer (which is the unpartitioned design)."""
    sizes = network.compute_layer_output_values()
    return [i for i, size in enumerate(sizes[:-1], start=1)
            if size <= max_values]


@dataclass(frozen=True)
class PartitionedPoint:
    """One (SoC, workload, n) evaluation of a partitioned design.

    Attributes:
        soc_name: design name.
        workload: the DNN workload.
        n_channels: NI channel count.
        split_layer: 1-based compute layer kept on the implant (None means
            the full network runs on-implant — no split helped).
        transmitted_values: activations streamed per sampling period.
        sensing_power_w / comp_power_w / comm_power_w: power breakdown.
        budget_w: Eq. 3 budget.
        schedule: the on-implant MAC schedule (None when infeasible).
    """

    soc_name: str
    workload: Workload
    n_channels: int
    split_layer: int | None
    transmitted_values: int
    sensing_power_w: float
    comp_power_w: float
    comm_power_w: float
    budget_w: float
    schedule: Schedule | None

    @property
    def total_power_w(self) -> float:
        """On-implant P_soc(n) for the partitioned design."""
        return self.sensing_power_w + self.comp_power_w + self.comm_power_w

    @property
    def power_ratio(self) -> float:
        """P_soc / P_budget."""
        return self.total_power_w / self.budget_w

    @property
    def fits(self) -> bool:
        """True when the partitioned design is within budget."""
        return self.power_ratio <= 1.0


def _implant_cost(soc: ScaledSoC, profiles: tuple[LayerMacs, ...],
                  transmitted: int, tech: TechnologyNode,
                  ) -> tuple[float, float, Schedule | None]:
    """(comp_power, comm_power, schedule) for an on-implant sub-network."""
    deadline = 1.0 / soc.sampling_hz
    schedule = cached_best_schedule(profiles, deadline, tech)
    comp = schedule.power_w(tech) if schedule else math.inf
    comm = (transmitted * soc.sample_bits * soc.sampling_hz
            * soc.implied_energy_per_bit_j)
    return comp, comm, schedule


def _network_candidates(net: Network, max_values: int,
                        ) -> tuple[tuple[int | None, tuple[LayerMacs, ...],
                                         int], ...]:
    """(split, head MAC profiles, transmitted values) for every candidate
    partition of a network — "no split" first, then admissible splits in
    layer order."""
    sizes = net.compute_layer_output_values()
    candidates = [(None, tuple(net.mac_profiles()), net.output_values)]
    for split in admissible_splits(net, max_values=max_values):
        candidates.append((split, tuple(net.head(split).mac_profiles()),
                           sizes[split - 1]))
    return tuple(candidates)


@lru_cache(maxsize=4096)
def _split_candidates(workload: Workload, n_channels: int, max_values: int,
                      ) -> tuple[tuple[int | None, tuple[LayerMacs, ...],
                                       int], ...]:
    """Cached candidate partitions for a built workload.

    Head sub-networks are rebuilt per (workload, n) only once per
    process; the frontier scans then reuse the profile tuples across
    every SoC on the grid.
    """
    net = build_workload(workload, n_channels)
    return _network_candidates(net, max_values)


def evaluate_partitioned(soc: ScaledSoC,
                         workload: Workload,
                         n_channels: int,
                         tech: TechnologyNode = TECH_45NM,
                         network: Network | None = None,
                         max_values: int = 1024,
                         rule: str = "optimal") -> PartitionedPoint:
    """Project a scaled SoC running the best on-implant head of a workload.

    Args:
        soc: 1024-channel anchor design.
        workload: MLP or DN-CNN.
        n_channels: target channel count.
        tech: MAC technology node.
        network: pre-built network override.
        max_values: transmission cap in values per sampling period.
        rule: "optimal" picks the admissible split (or no split) with the
            lowest implant power; "earliest" applies the paper's rule
            verbatim.

    Raises:
        ValueError: for unknown rules or non-positive channel counts.
    """
    if n_channels <= 0:
        raise ValueError("channel count must be positive")
    if rule not in ("optimal", "earliest"):
        raise ValueError(f"unknown partitioning rule {rule!r}")
    if network is None:
        all_candidates = _split_candidates(workload, n_channels, max_values)
    else:
        all_candidates = _network_candidates(network, max_values)

    if rule == "earliest":
        # The paper's rule: the earliest admissible split, or no split
        # when nothing but the final layer fits the transmission budget.
        splits = [c for c in all_candidates if c[0] is not None]
        candidates = splits[:1] if splits else [all_candidates[0]]
    else:
        candidates = list(all_candidates)

    best: tuple[float, int | None, int, float, float,
                Schedule | None] | None = None
    for split, profiles, transmitted in candidates:
        comp, comm, schedule = _implant_cost(soc, profiles, transmitted,
                                             tech)
        total = comp + comm
        if best is None or total < best[0]:
            best = (total, split, transmitted, comp, comm, schedule)

    assert best is not None  # candidates is never empty
    _, split, transmitted, comp, comm, schedule = best
    area = soc.sensing_area_m2(n_channels) + soc.non_sensing_area_m2
    return PartitionedPoint(
        soc_name=soc.name,
        workload=workload,
        n_channels=n_channels,
        split_layer=split,
        transmitted_values=transmitted,
        sensing_power_w=soc.sensing_power_w(n_channels),
        comp_power_w=comp,
        comm_power_w=comm,
        budget_w=area * SAFE_POWER_DENSITY,
        schedule=schedule,
    )


def power_ratio_curve(soc: ScaledSoC,
                      workload: Workload,
                      channel_counts: np.ndarray,
                      tech: TechnologyNode = TECH_45NM,
                      rule: str = "optimal") -> np.ndarray:
    """P_soc/P_budget of the partitioned design over a channel grid.

    Split candidates and MAC schedules are memoized, so sweeping the same
    grid across several SoCs reuses the network builds and schedule
    searches instead of repeating them per point.
    """
    return np.array([
        evaluate_partitioned(soc, workload, int(n), tech,
                             rule=rule).power_ratio
        for n in np.asarray(channel_counts).tolist()])


def max_feasible_channels_partitioned(soc: ScaledSoC,
                                      workload: Workload,
                                      tech: TechnologyNode = TECH_45NM,
                                      step: int = 64,
                                      n_limit: int = 16384,
                                      rule: str = "optimal",
                                      chunk: int = 16) -> int:
    """Largest n at which the partitioned workload fits the budget.

    The grid is evaluated in ``chunk``-sized batches through
    :func:`power_ratio_curve`, stopping at the first failure after a
    feasible point exactly like the historical scalar scan.
    """
    grid = np.arange(step, n_limit + 1, step, dtype=np.int64)
    best = 0
    for start in range(0, grid.size, chunk):
        block = grid[start:start + chunk]
        fits = power_ratio_curve(soc, workload, block, tech,
                                 rule=rule) <= 1.0
        for n, ok in zip(block.tolist(), fits.tolist()):
            if ok:
                best = n
            elif best:
                return best
    return best


@dataclass(frozen=True)
class PartitioningGain:
    """Fig. 11 bar: channel-count gain from layer reduction.

    Attributes:
        soc_name: design name.
        workload: the DNN workload.
        max_channels_full: feasibility limit with the whole DNN on-implant.
        max_channels_partitioned: limit with layer reduction.
    """

    soc_name: str
    workload: Workload
    max_channels_full: int
    max_channels_partitioned: int

    @property
    def gain_ratio(self) -> float:
        """Partitioned / full limit (1.0 = no benefit); 0 when the full
        design never fits."""
        if self.max_channels_full == 0:
            return 0.0
        return self.max_channels_partitioned / self.max_channels_full


def partitioning_gain(soc: ScaledSoC,
                      workload: Workload,
                      tech: TechnologyNode = TECH_45NM,
                      step: int = 64) -> PartitioningGain:
    """Compute the Fig. 11 gain for one SoC and workload."""
    from repro.core.comp_centric import max_feasible_channels
    full = max_feasible_channels(soc, workload, tech, step=step)
    part = max_feasible_channels_partitioned(soc, workload, tech, step=step)
    return PartitioningGain(soc_name=soc.name, workload=workload,
                            max_channels_full=full,
                            max_channels_partitioned=part)
