"""Computation-centric architectures with on-implant DNNs (Fig. 10).

Paper Section 5.3: instead of streaming raw data, the implant runs the DNN
and transmits only its output (Eq. 8), paying the Eq. 13 compute power
lower bound:

    P_soc(n) = P_sensing(n) + P_comp(n) + T_comm(n_out) * Eb

where P_comp comes from the best of the pipelined / non-pipelined MAC
schedules under the real-time deadline t = 1/f, and the non-sensing area
is reused for computation (as in the QAM analysis, it must not grow).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.accel.schedule import Schedule, cached_best_schedule
from repro.accel.tech import TECH_45NM, TechnologyNode
from repro.core.scaling import ScaledSoC
from repro.dnn.macs import LayerMacs
from repro.dnn.models import build_speech_dncnn, build_speech_mlp
from repro.dnn.network import Network
from repro.units import SAFE_POWER_DENSITY


class Workload(enum.Enum):
    """The paper's two Section 5.3 DNN workloads."""

    MLP = "mlp"
    DNCNN = "dncnn"


#: Workload -> shape-only network builder.
_BUILDERS: dict[Workload, Callable[[int], Network]] = {
    Workload.MLP: build_speech_mlp,
    Workload.DNCNN: build_speech_dncnn,
}


def build_workload(workload: Workload, n_channels: int) -> Network:
    """Shape-only network for a workload at a channel count."""
    return _BUILDERS[workload](n_channels)


@lru_cache(maxsize=4096)
def _workload_profile(workload: Workload, n_channels: int,
                      ) -> tuple[tuple[LayerMacs, ...], int, int, int]:
    """(MAC profiles, output values, total MACs, parameters) for a
    workload at a channel count.

    The shape-only networks are deterministic in (workload, n), so the
    sweeps share one build per point instead of rebuilding the layer
    stack for every SoC on the grid.
    """
    net = build_workload(workload, n_channels)
    return (tuple(net.mac_profiles()), net.output_values,
            net.total_macs, net.n_parameters)


@dataclass(frozen=True)
class CompCentricPoint:
    """One (SoC, workload, n) computation-centric evaluation.

    Attributes:
        soc_name: design name.
        workload: which DNN runs on the implant.
        n_channels: NI channel count (also the DNN's input channel count).
        sensing_power_w: Eq. 5 sensing power.
        comp_power_w: Eq. 13 lower bound (``inf`` if no schedule meets the
            deadline).
        comm_power_w: Eq. 8/9 output-transmission power.
        budget_w: Eq. 3 budget over sensing area + frozen non-sensing area.
        schedule: the winning MAC schedule (None when infeasible).
        total_macs: accumulate steps per inference.
        model_parameters: trainable parameter count ("model size").
    """

    soc_name: str
    workload: Workload
    n_channels: int
    sensing_power_w: float
    comp_power_w: float
    comm_power_w: float
    budget_w: float
    schedule: Schedule | None
    total_macs: int
    model_parameters: int

    @property
    def total_power_w(self) -> float:
        """P_soc(n) including the DNN lower bound."""
        return self.sensing_power_w + self.comp_power_w + self.comm_power_w

    @property
    def power_ratio(self) -> float:
        """P_soc / P_budget — the Fig. 10 y-axis."""
        return self.total_power_w / self.budget_w

    @property
    def fits(self) -> bool:
        """True when the DNN integrates within the power budget."""
        return self.power_ratio <= 1.0


def evaluate_comp_centric(soc: ScaledSoC,
                          workload: Workload,
                          n_channels: int,
                          tech: TechnologyNode = TECH_45NM,
                          network: Network | None = None,
                          ) -> CompCentricPoint:
    """Project a scaled SoC running a DNN workload at ``n_channels``.

    Args:
        soc: the 1024-channel anchor design.
        workload: MLP or DN-CNN.
        n_channels: target channel count (the DNN input scales with it).
        tech: MAC technology node (45 nm in Fig. 10; 12 nm for the
            technology-scaling optimization).
        network: pre-built network override (used by the optimization
            ladder to evaluate channel-dropout-reduced models).
    """
    if n_channels <= 0:
        raise ValueError("channel count must be positive")
    if network is None:
        profiles, output_values, total_macs, n_parameters = (
            _workload_profile(workload, n_channels))
    else:
        profiles = tuple(network.mac_profiles())
        output_values = network.output_values
        total_macs = network.total_macs
        n_parameters = network.n_parameters
    deadline = 1.0 / soc.sampling_hz
    schedule = cached_best_schedule(profiles, deadline, tech)
    comp_power = schedule.power_w(tech) if schedule else math.inf

    comm_power = (output_values * soc.sample_bits * soc.sampling_hz
                  * soc.implied_energy_per_bit_j)
    area = soc.sensing_area_m2(n_channels) + soc.non_sensing_area_m2
    return CompCentricPoint(
        soc_name=soc.name,
        workload=workload,
        n_channels=n_channels,
        sensing_power_w=soc.sensing_power_w(n_channels),
        comp_power_w=comp_power,
        comm_power_w=comm_power,
        budget_w=area * SAFE_POWER_DENSITY,
        schedule=schedule,
        total_macs=total_macs,
        model_parameters=n_parameters,
    )


def sweep_comp_centric(soc: ScaledSoC,
                       workload: Workload,
                       channel_counts: list[int],
                       tech: TechnologyNode = TECH_45NM,
                       ) -> list[CompCentricPoint]:
    """Fig. 10 series for one SoC and workload."""
    return [evaluate_comp_centric(soc, workload, n, tech)
            for n in channel_counts]


def power_ratio_curve(soc: ScaledSoC,
                      workload: Workload,
                      channel_counts: np.ndarray,
                      tech: TechnologyNode = TECH_45NM) -> np.ndarray:
    """P_soc/P_budget over a channel grid (the Fig. 10 y-axis).

    Network shapes and MAC schedules are memoized
    (:func:`_workload_profile`,
    :func:`repro.accel.schedule.cached_best_schedule`), so sweeping the
    same grid across several SoCs costs one schedule search per distinct
    (workload, n, deadline, technology) rather than one per point.
    """
    return np.array([
        evaluate_comp_centric(soc, workload, int(n), tech).power_ratio
        for n in np.asarray(channel_counts).tolist()])


def max_feasible_channels(soc: ScaledSoC,
                          workload: Workload,
                          tech: TechnologyNode = TECH_45NM,
                          step: int = 64,
                          n_limit: int = 16384,
                          chunk: int = 16) -> int:
    """Largest n at which the workload still fits the power budget.

    Scans upward in ``step`` increments from ``step`` (the feasibility
    frontier is effectively monotone — compute power grows quadratically
    while the budget grows linearly — but depth changes make it only
    piecewise smooth, so scanning beats bisection for robustness).  The
    grid is evaluated in ``chunk``-sized batches through
    :func:`power_ratio_curve`, stopping at the first failure after a
    feasible point exactly like the historical scalar scan.

    Returns:
        The maximum feasible channel count, or 0 when the workload never
        fits this SoC.
    """
    grid = np.arange(step, n_limit + 1, step, dtype=np.int64)
    best = 0
    for start in range(0, grid.size, chunk):
        block = grid[start:start + chunk]
        fits = power_ratio_curve(soc, workload, block, tech) <= 1.0
        for n, ok in zip(block.tolist(), fits.tolist()):
            if ok:
                best = n
            elif best:
                return best
    return best
