"""Computation-centric architectures with on-implant DNNs (Fig. 10).

Paper Section 5.3: instead of streaming raw data, the implant runs the DNN
and transmits only its output (Eq. 8), paying the Eq. 13 compute power
lower bound:

    P_soc(n) = P_sensing(n) + P_comp(n) + T_comm(n_out) * Eb

where P_comp comes from the best of the pipelined / non-pipelined MAC
schedules under the real-time deadline t = 1/f, and the non-sensing area
is reused for computation (as in the QAM analysis, it must not grow).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable

from repro.accel.schedule import Schedule, best_schedule
from repro.accel.tech import TECH_45NM, TechnologyNode
from repro.core.scaling import ScaledSoC
from repro.dnn.models import build_speech_dncnn, build_speech_mlp
from repro.dnn.network import Network
from repro.units import SAFE_POWER_DENSITY


class Workload(enum.Enum):
    """The paper's two Section 5.3 DNN workloads."""

    MLP = "mlp"
    DNCNN = "dncnn"


#: Workload -> shape-only network builder.
_BUILDERS: dict[Workload, Callable[[int], Network]] = {
    Workload.MLP: build_speech_mlp,
    Workload.DNCNN: build_speech_dncnn,
}


def build_workload(workload: Workload, n_channels: int) -> Network:
    """Shape-only network for a workload at a channel count."""
    return _BUILDERS[workload](n_channels)


@dataclass(frozen=True)
class CompCentricPoint:
    """One (SoC, workload, n) computation-centric evaluation.

    Attributes:
        soc_name: design name.
        workload: which DNN runs on the implant.
        n_channels: NI channel count (also the DNN's input channel count).
        sensing_power_w: Eq. 5 sensing power.
        comp_power_w: Eq. 13 lower bound (``inf`` if no schedule meets the
            deadline).
        comm_power_w: Eq. 8/9 output-transmission power.
        budget_w: Eq. 3 budget over sensing area + frozen non-sensing area.
        schedule: the winning MAC schedule (None when infeasible).
        total_macs: accumulate steps per inference.
        model_parameters: trainable parameter count ("model size").
    """

    soc_name: str
    workload: Workload
    n_channels: int
    sensing_power_w: float
    comp_power_w: float
    comm_power_w: float
    budget_w: float
    schedule: Schedule | None
    total_macs: int
    model_parameters: int

    @property
    def total_power_w(self) -> float:
        """P_soc(n) including the DNN lower bound."""
        return self.sensing_power_w + self.comp_power_w + self.comm_power_w

    @property
    def power_ratio(self) -> float:
        """P_soc / P_budget — the Fig. 10 y-axis."""
        return self.total_power_w / self.budget_w

    @property
    def fits(self) -> bool:
        """True when the DNN integrates within the power budget."""
        return self.power_ratio <= 1.0


def evaluate_comp_centric(soc: ScaledSoC,
                          workload: Workload,
                          n_channels: int,
                          tech: TechnologyNode = TECH_45NM,
                          network: Network | None = None,
                          ) -> CompCentricPoint:
    """Project a scaled SoC running a DNN workload at ``n_channels``.

    Args:
        soc: the 1024-channel anchor design.
        workload: MLP or DN-CNN.
        n_channels: target channel count (the DNN input scales with it).
        tech: MAC technology node (45 nm in Fig. 10; 12 nm for the
            technology-scaling optimization).
        network: pre-built network override (used by the optimization
            ladder to evaluate channel-dropout-reduced models).
    """
    if n_channels <= 0:
        raise ValueError("channel count must be positive")
    net = network or build_workload(workload, n_channels)
    deadline = 1.0 / soc.sampling_hz
    schedule = best_schedule(net.mac_profiles(), deadline, tech)
    comp_power = schedule.power_w(tech) if schedule else math.inf

    comm_power = (net.output_values * soc.sample_bits * soc.sampling_hz
                  * soc.implied_energy_per_bit_j)
    area = soc.sensing_area_m2(n_channels) + soc.non_sensing_area_m2
    return CompCentricPoint(
        soc_name=soc.name,
        workload=workload,
        n_channels=n_channels,
        sensing_power_w=soc.sensing_power_w(n_channels),
        comp_power_w=comp_power,
        comm_power_w=comm_power,
        budget_w=area * SAFE_POWER_DENSITY,
        schedule=schedule,
        total_macs=net.total_macs,
        model_parameters=net.n_parameters,
    )


def sweep_comp_centric(soc: ScaledSoC,
                       workload: Workload,
                       channel_counts: list[int],
                       tech: TechnologyNode = TECH_45NM,
                       ) -> list[CompCentricPoint]:
    """Fig. 10 series for one SoC and workload."""
    return [evaluate_comp_centric(soc, workload, n, tech)
            for n in channel_counts]


def max_feasible_channels(soc: ScaledSoC,
                          workload: Workload,
                          tech: TechnologyNode = TECH_45NM,
                          step: int = 64,
                          n_limit: int = 16384) -> int:
    """Largest n at which the workload still fits the power budget.

    Scans upward in ``step`` increments from ``step`` (the feasibility
    frontier is effectively monotone — compute power grows quadratically
    while the budget grows linearly — but depth changes make it only
    piecewise smooth, so scanning beats bisection for robustness).

    Returns:
        The maximum feasible channel count, or 0 when the workload never
        fits this SoC.
    """
    best = 0
    n = step
    while n <= n_limit:
        if evaluate_comp_centric(soc, workload, n, tech).fits:
            best = n
        elif best:
            break
        n += step
    return best
