"""Vectorized feasibility-frontier search over channel grids.

The strategy evaluators all reduce "how far does this design scale?" to
finding the largest channel count n satisfying some feasibility predicate.
Historically each caller ran its own scalar doubling-plus-bisection or
step-scan loop; this module centralizes two array-based replacements:

* :func:`grid_frontier` — for strategies whose power-ratio curve is
  monotone in n (all the linear dataflows), locates the *exact* integer
  frontier by evaluating whole grids of candidates per round instead of
  one scalar point per iteration.
* :func:`first_run_frontier` — reproduces the step-scan-with-early-break
  semantics (used where feasibility is only piecewise smooth) from a
  vectorized feasibility mask.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

#: Below this bracket width the frontier is resolved by one dense pass.
_DENSE_LIMIT = 2048

#: Candidate points evaluated per narrowing round.
_PROBES_PER_ROUND = 65


def grid_frontier(ratio_curve: Callable[[np.ndarray], np.ndarray],
                  n_limit: int,
                  threshold: float = 1.0) -> int:
    """Largest integer n in [1, n_limit] with ``ratio_curve(n) <= threshold``.

    Args:
        ratio_curve: vectorized map from an int64 channel-count array to
            the power ratio at each count.  Feasibility must be a prefix
            property (the ratio is monotone non-decreasing in n) — true
            for every all-linear dataflow, whose ratio has the form
            ``a*n / (b*n + c)`` with ``c > 0``.
        n_limit: inclusive search ceiling; the curve is never evaluated
            beyond it.
        threshold: feasibility bound on the ratio.

    Returns:
        The exact frontier; 0 when even a single channel is infeasible,
        ``n_limit`` when the whole range fits.
    """
    if n_limit < 1:
        raise ValueError("n_limit must be at least 1")
    ends = ratio_curve(np.array([1, n_limit], dtype=np.int64))
    if float(ends[0]) > threshold:
        return 0
    if float(ends[1]) <= threshold:
        return n_limit
    lo, hi = 1, n_limit  # invariant: lo feasible, hi infeasible
    while hi - lo > _DENSE_LIMIT:
        grid = np.unique(np.linspace(lo, hi, _PROBES_PER_ROUND)
                         .astype(np.int64))
        fits = ratio_curve(grid) <= threshold
        feasible = np.flatnonzero(fits)
        infeasible = np.flatnonzero(~fits)
        lo = int(grid[feasible[-1]])  # grid[0] == lo is always feasible
        hi = int(grid[infeasible[0]])
    dense = np.arange(lo, hi + 1, dtype=np.int64)
    fits = ratio_curve(dense) <= threshold
    return int(dense[np.flatnonzero(fits)[-1]])


def first_run_frontier(grid: np.ndarray, fits: np.ndarray) -> int:
    """End of the first contiguous feasible run over a scanned grid.

    Mirrors the scalar scan idiom used where feasibility is only
    piecewise smooth::

        for n in grid:
            if fits(n): best = n
            elif best:  break

    Args:
        grid: scanned channel counts, ascending.
        fits: boolean feasibility per grid point.

    Returns:
        The grid value ending the first feasible run, or 0 when no point
        fits.
    """
    fits = np.asarray(fits, dtype=bool)
    feasible = np.flatnonzero(fits)
    if feasible.size == 0:
        return 0
    start = int(feasible[0])
    failures = np.flatnonzero(~fits[start:])
    end = start + int(failures[0]) - 1 if failures.size else fits.size - 1
    return int(np.asarray(grid)[end])
