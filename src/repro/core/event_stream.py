"""Event-driven (spike-only) streaming — the hardware-efficient middle way.

Section 7 notes that raw-rate streaming becomes viable "if we can ...
reduce the data rate using hardware-efficient methods to detect patterns
in neural activity" (Neuralink-style on-chip spike detection, NOEMA-style
template matching).  This module models that third dataflow: the implant
runs threshold detection per channel and transmits one event word per
spike instead of every sample.

    T_event(n) = n * r_spike * (bits_id + bits_time + bits_shape)

Event streaming wins while the population is sparse; at high firing rates
or large event payloads it collapses back to worse-than-raw.  The
crossover is exactly the kind of design guidance MINDFUL exists for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.accel.tech import TECH_45NM, TechnologyNode
from repro.core.frontier import grid_frontier
from repro.core.scaling import ScaledSoC
from repro.units import SAFE_POWER_DENSITY


@dataclass(frozen=True)
class EventStreamConfig:
    """Event-word and detector configuration.

    Attributes:
        spike_rate_hz: mean firing rate per channel.
        channel_id_bits: bits to address the source channel.
        timestamp_bits: bits of within-window timestamp per event.
        shape_bits: optional waveform-feature payload per event.
        detector_ops_per_sample: ALU work per sample for threshold
            detection (compare + state update).
    """

    spike_rate_hz: float = 10.0
    channel_id_bits: int = 16
    timestamp_bits: int = 10
    shape_bits: int = 0
    detector_ops_per_sample: float = 2.0

    def __post_init__(self) -> None:
        if self.spike_rate_hz < 0:
            raise ValueError("spike rate must be non-negative")
        if min(self.channel_id_bits, self.timestamp_bits) < 1:
            raise ValueError("id and timestamp fields need >= 1 bit")
        if self.shape_bits < 0 or self.detector_ops_per_sample < 0:
            raise ValueError("payload and detector cost must be >= 0")

    @property
    def bits_per_event(self) -> int:
        """Total event word size."""
        return self.channel_id_bits + self.timestamp_bits + self.shape_bits


@dataclass(frozen=True)
class EventStreamPoint:
    """One (SoC, n) evaluation of the event-driven dataflow.

    Attributes:
        soc_name: design name.
        n_channels: NI channel count.
        event_throughput_bps: event-word data rate.
        raw_throughput_bps: Eq. 6 raw rate for comparison.
        sensing_power_w / detector_power_w / comm_power_w: breakdown.
        budget_w: Eq. 3 budget (non-sensing area frozen, as in 4.2).
    """

    soc_name: str
    n_channels: int
    event_throughput_bps: float
    raw_throughput_bps: float
    sensing_power_w: float
    detector_power_w: float
    comm_power_w: float
    budget_w: float

    @property
    def data_reduction(self) -> float:
        """Raw over event rate (> 1 means events are cheaper)."""
        if self.event_throughput_bps == 0:
            return math.inf
        return self.raw_throughput_bps / self.event_throughput_bps

    @property
    def total_power_w(self) -> float:
        """Implant power under the event dataflow."""
        return (self.sensing_power_w + self.detector_power_w
                + self.comm_power_w)

    @property
    def power_ratio(self) -> float:
        """P_soc / P_budget."""
        return self.total_power_w / self.budget_w

    @property
    def fits(self) -> bool:
        """True while the design is within the safety budget."""
        return self.power_ratio <= 1.0


def evaluate_event_stream(soc: ScaledSoC, n_channels: int,
                          config: EventStreamConfig | None = None,
                          tech: TechnologyNode = TECH_45NM,
                          ) -> EventStreamPoint:
    """Project an event-driven design to ``n_channels``."""
    if n_channels <= 0:
        raise ValueError("channel count must be positive")
    config = config or EventStreamConfig()
    event_rate = (n_channels * config.spike_rate_hz
                  * config.bits_per_event)
    raw_rate = soc.sensing_throughput_bps(n_channels)
    comm_power = event_rate * soc.implied_energy_per_bit_j
    detector_power = (config.detector_ops_per_sample * soc.sampling_hz
                      * n_channels * tech.energy_per_mac_j)
    area = soc.sensing_area_m2(n_channels) + soc.non_sensing_area_m2
    return EventStreamPoint(
        soc_name=soc.name,
        n_channels=n_channels,
        event_throughput_bps=event_rate,
        raw_throughput_bps=raw_rate,
        sensing_power_w=soc.sensing_power_w(n_channels),
        detector_power_w=detector_power,
        comm_power_w=comm_power,
        budget_w=area * SAFE_POWER_DENSITY,
    )


def power_ratio_curve(soc: ScaledSoC,
                      channel_counts: np.ndarray,
                      config: EventStreamConfig | None = None,
                      tech: TechnologyNode = TECH_45NM) -> np.ndarray:
    """Vectorized P_soc/P_budget of the event dataflow over a channel grid.

    Numerically identical, point for point, to
    ``evaluate_event_stream(soc, n, config, tech).power_ratio``.
    """
    config = config or EventStreamConfig()
    n = np.asarray(channel_counts, dtype=np.float64)
    if n.size and float(n.min()) <= 0:
        raise ValueError("channel count must be positive")
    event_rate = n * config.spike_rate_hz * config.bits_per_event
    comm_power = event_rate * soc.implied_energy_per_bit_j
    detector_power = (config.detector_ops_per_sample * soc.sampling_hz
                      * n * tech.energy_per_mac_j)
    sensing_power = soc.sensing_power_anchor_w * n / soc.n_channels
    area = (soc.sensing_area_anchor_m2 * n / soc.n_channels
            + soc.non_sensing_area_m2)
    budget = area * SAFE_POWER_DENSITY
    return (sensing_power + detector_power + comm_power) / budget


def max_channels_event_stream(soc: ScaledSoC,
                              config: EventStreamConfig | None = None,
                              tech: TechnologyNode = TECH_45NM,
                              step: int = 256,
                              n_limit: int = 1 << 20) -> int:
    """Largest n the event dataflow sustains within the budget.

    All terms are linear in n, so feasibility is a prefix property; the
    exact integer frontier is located by vectorized grid narrowing over
    :func:`power_ratio_curve` (``step`` is retained for API compatibility
    — the result is no longer quantized to it).
    """
    del step  # legacy granularity knob; the frontier is now exact
    config = config or EventStreamConfig()
    return grid_frontier(
        lambda n: power_ratio_curve(soc, n, config, tech), n_limit)


def break_even_spike_rate_hz(soc: ScaledSoC,
                             config: EventStreamConfig | None = None,
                             ) -> float:
    """Firing rate at which event words cost as much as raw samples.

    Above this rate the event dataflow transmits more bits than raw
    streaming: r* = d * f / bits_per_event.
    """
    config = config or EventStreamConfig()
    return (soc.sample_bits * soc.sampling_hz) / config.bits_per_event
