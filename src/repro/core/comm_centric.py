"""Communication-centric architectures with energy-efficient modulation.

Paper Section 5.1 evaluates two scaling hypotheses for OOK-based designs
streaming all raw neural data (Fig. 5 and Fig. 6):

* **Naive design** — each added channel brings its own dedicated
  non-sensing (transceiver) power *and* area, so total power and area both
  scale linearly and the power-to-budget ratio stays constant; volumetric
  efficiency never improves.
* **High-margin design** — the 1024-channel transceiver/antenna absorb the
  higher data rate at constant Eb without growing A_non-sensing; power
  still grows linearly but area grows more slowly (only sensing area
  scales), so P_soc eventually crosses P_budget while the sensing-area
  fraction climbs toward 1 (Eq. 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.scaling import ScaledSoC
from repro.units import SAFE_POWER_DENSITY


class DesignHypothesis(enum.Enum):
    """The two Section 5.1 scaling hypotheses."""

    NAIVE = "naive"
    HIGH_MARGIN = "high_margin"


@dataclass(frozen=True)
class CommCentricPoint:
    """One (SoC, n) evaluation of a communication-centric design.

    Attributes:
        soc_name: design name.
        hypothesis: naive or high-margin.
        n_channels: NI channel count.
        sensing_power_w / non_sensing_power_w: the Fig. 5 bar split.
        total_power_w: P_soc(n).
        sensing_area_m2 / total_area_m2: the Fig. 6 numerator/denominator.
        budget_w: Eq. 3 P_budget(n).
    """

    soc_name: str
    hypothesis: DesignHypothesis
    n_channels: int
    sensing_power_w: float
    non_sensing_power_w: float
    total_power_w: float
    sensing_area_m2: float
    total_area_m2: float
    budget_w: float

    @property
    def power_ratio(self) -> float:
        """P_soc / P_budget — the Fig. 5 y-axis."""
        return self.total_power_w / self.budget_w

    @property
    def sensing_area_fraction(self) -> float:
        """A_sensing / A_soc — the Fig. 6 y-axis."""
        return self.sensing_area_m2 / self.total_area_m2

    @property
    def within_budget(self) -> bool:
        """True while the design respects the 40 mW/cm^2 limit."""
        return self.power_ratio <= 1.0


def evaluate_comm_centric(soc: ScaledSoC, n_channels: int,
                          hypothesis: DesignHypothesis) -> CommCentricPoint:
    """Project a scaled SoC to ``n_channels`` under a design hypothesis.

    In both hypotheses sensing power/area scale linearly (Eq. 5) and the
    transceiver runs at constant energy per bit, so non-sensing power is
    linear in the Eq. 6/7 throughput (T_comm ~ T_sensing); they differ only
    in how non-sensing *area* scales.
    """
    if n_channels < soc.n_channels:
        raise ValueError("communication-centric scaling explores "
                         f"n >= {soc.n_channels}")
    x = n_channels / soc.n_channels
    sensing_power = soc.sensing_power_w(n_channels)
    non_sensing_power = soc.comm_power_anchor_w * x
    sensing_area = soc.sensing_area_m2(n_channels)
    if hypothesis is DesignHypothesis.NAIVE:
        non_sensing_area = soc.non_sensing_area_m2 * x
    else:
        non_sensing_area = soc.non_sensing_area_m2
    total_area = sensing_area + non_sensing_area
    return CommCentricPoint(
        soc_name=soc.name,
        hypothesis=hypothesis,
        n_channels=n_channels,
        sensing_power_w=sensing_power,
        non_sensing_power_w=non_sensing_power,
        total_power_w=sensing_power + non_sensing_power,
        sensing_area_m2=sensing_area,
        total_area_m2=total_area,
        budget_w=total_area * SAFE_POWER_DENSITY,
    )


def sweep_comm_centric(soc: ScaledSoC,
                       channel_counts: list[int],
                       hypothesis: DesignHypothesis,
                       ) -> list[CommCentricPoint]:
    """Evaluate a design hypothesis across a channel sweep."""
    return [evaluate_comm_centric(soc, n, hypothesis)
            for n in channel_counts]


def power_ratio_curve(soc: ScaledSoC,
                      channel_counts: np.ndarray,
                      hypothesis: DesignHypothesis) -> np.ndarray:
    """Vectorized Fig. 5 y-axis: P_soc/P_budget over a whole channel grid.

    Numerically identical, point for point, to
    ``evaluate_comm_centric(soc, n, hypothesis).power_ratio`` — the array
    form repeats the scalar expressions elementwise in the same order.
    """
    n = np.asarray(channel_counts, dtype=np.float64)
    if n.size and float(n.min()) < soc.n_channels:
        raise ValueError("communication-centric scaling explores "
                         f"n >= {soc.n_channels}")
    x = n / soc.n_channels
    sensing_power = soc.sensing_power_anchor_w * n / soc.n_channels
    non_sensing_power = soc.comm_power_anchor_w * x
    sensing_area = soc.sensing_area_anchor_m2 * n / soc.n_channels
    if hypothesis is DesignHypothesis.NAIVE:
        non_sensing_area = soc.non_sensing_area_m2 * x
    else:
        non_sensing_area = np.full_like(x, soc.non_sensing_area_m2)
    budget = (sensing_area + non_sensing_area) * SAFE_POWER_DENSITY
    return (sensing_power + non_sensing_power) / budget


def budget_crossing_channels(soc: ScaledSoC,
                             hypothesis: DesignHypothesis,
                             n_max: int = 1 << 20) -> int | None:
    """Smallest n at which P_soc exceeds P_budget, or None if it never does.

    For the naive design the ratio is constant, so the answer is None
    whenever the 1024-channel anchor is within budget.  For the high-margin
    design the closed form follows from linear power vs affine area.
    """
    anchor = evaluate_comm_centric(soc, soc.n_channels, hypothesis)
    if anchor.power_ratio > 1.0:
        return soc.n_channels
    if hypothesis is DesignHypothesis.NAIVE:
        return None
    # High margin: P0*x <= D*(As*x + An)  with D the density limit.
    p0 = soc.power_w
    slope = SAFE_POWER_DENSITY * soc.sensing_area_anchor_m2
    intercept = SAFE_POWER_DENSITY * soc.non_sensing_area_m2
    if p0 <= slope:
        return None  # power slope never outruns the budget slope
    x_cross = intercept / (p0 - slope)
    n_cross = int(x_cross * soc.n_channels) + 1
    return n_cross if n_cross <= n_max else None
