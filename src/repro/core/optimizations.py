"""Combined optimization ladder (Section 6.2, Fig. 12).

Four optimizations are applied cumulatively to the MLP workload:

* **ChDr — channel dropout**: spike-sorting-style redundancy filtering
  reduces the *active* channels feeding the DNN to n' <= n, shrinking the
  model (alpha is set from n'), while the NI still senses all n channels.
* **La — layer reduction**: the Section 6.1 partitioning; only the DNN
  head runs on-implant.
* **Tech — technology scaling**: the MAC is resynthesized at 12 nm
  (tMAC = 1 ns, PMAC = 0.026 mW); sensing and communication are analog and
  do not scale.
* **Dense — channel density**: sensing area per channel halves, improving
  resolution and flexibility but shrinking the area — and therefore the
  Eq. 3 power budget.

For each SoC and target n, the framework finds the largest feasible active
channel count n' and reports the feasible model size — parameters of the
n'-channel MLP relative to the unoptimized n-channel MLP (the Fig. 12
y-axis).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.accel.schedule import best_schedule
from repro.accel.tech import TECH_12NM, TECH_45NM, TechnologyNode
from repro.core.comp_centric import Workload, build_workload
from repro.core.partitioning import admissible_splits
from repro.core.scaling import ScaledSoC
from repro.units import SAFE_POWER_DENSITY


@dataclass(frozen=True)
class OptimizationConfig:
    """Which optimizations are active (cumulative ladder steps).

    Attributes:
        layer_reduction: apply Section 6.1 partitioning (La).
        tech: MAC technology node (45 nm baseline, 12 nm for +Tech).
        density_factor: sensing-area reduction factor (+Dense uses 2.0).
    """

    layer_reduction: bool = False
    tech: TechnologyNode = TECH_45NM
    density_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.density_factor < 1.0:
            raise ValueError("density factor must be >= 1")


#: The Fig. 12 ladder, in presentation order.
LADDER: tuple[tuple[str, OptimizationConfig], ...] = (
    ("ChDr", OptimizationConfig()),
    ("La+ChDr", OptimizationConfig(layer_reduction=True)),
    ("La+ChDr+Tech", OptimizationConfig(layer_reduction=True,
                                        tech=TECH_12NM)),
    ("La+ChDr+Tech+Dense", OptimizationConfig(layer_reduction=True,
                                              tech=TECH_12NM,
                                              density_factor=2.0)),
)


def _implant_power_w(soc: ScaledSoC, net, transmitted: int,
                     tech: TechnologyNode) -> float:
    """Compute + communication power of an on-implant sub-network."""
    deadline = 1.0 / soc.sampling_hz
    schedule = best_schedule(net.mac_profiles(), deadline, tech)
    if schedule is None:
        return math.inf
    comm = (transmitted * soc.sample_bits * soc.sampling_hz
            * soc.implied_energy_per_bit_j)
    return schedule.power_w(tech) + comm


def densified_sensing_area_m2(soc: ScaledSoC, n_channels: int,
                              density_factor: float) -> float:
    """Sensing area under the +Dense optimization.

    Densification redesigns the array so that channels *added beyond the
    1024-channel anchor* occupy ``1/density_factor`` of the baseline
    per-channel area; the anchor design itself is an existing chip and
    keeps its geometry.  (Halving the whole array would shrink the Eq. 3
    budget below the sensing power itself for most designs — a stronger
    effect than the paper's Fig. 12 'Dense' step exhibits.)
    """
    anchor = soc.sensing_area_anchor_m2
    full = soc.sensing_area_m2(n_channels)
    if n_channels <= soc.n_channels:
        return full
    return anchor + (full - anchor) / density_factor


def _design_fits(soc: ScaledSoC, workload: Workload, n_channels: int,
                 active_channels: int, config: OptimizationConfig) -> bool:
    """Feasibility of sensing n channels while computing on n' of them."""
    net = build_workload(workload, active_channels)
    non_sensing = _implant_power_w(soc, net, net.output_values, config.tech)
    if config.layer_reduction:
        sizes = net.compute_layer_output_values()
        for split in admissible_splits(net):
            candidate = _implant_power_w(soc, net.head(split),
                                         sizes[split - 1], config.tech)
            non_sensing = min(non_sensing, candidate)

    sensing_area = densified_sensing_area_m2(soc, n_channels,
                                             config.density_factor)
    budget = (sensing_area + soc.non_sensing_area_m2) * SAFE_POWER_DENSITY
    total = soc.sensing_power_w(n_channels) + non_sensing
    return total <= budget


@dataclass(frozen=True)
class OptimizedDesign:
    """Result of one ladder step for one (SoC, n).

    Attributes:
        soc_name: design name.
        step_name: ladder label ("ChDr", "La+ChDr", ...).
        n_channels: sensed NI channels.
        active_channels: channels surviving dropout (n' <= n); 0 when even
            the smallest model is infeasible.
        model_size_fraction: parameters of the n'-channel model over the
            unoptimized n-channel model (Fig. 12 y-axis).
    """

    soc_name: str
    step_name: str
    n_channels: int
    active_channels: int
    model_size_fraction: float


def max_active_channels(soc: ScaledSoC, workload: Workload, n_channels: int,
                        config: OptimizationConfig,
                        min_active: int = 16) -> int:
    """Largest n' <= n for which the optimized design fits the budget.

    Feasibility is monotone in n' (compute grows with the model), so the
    maximum is found by bisection; returns 0 when even ``min_active``
    channels do not fit.
    """
    if n_channels < min_active:
        raise ValueError(f"n_channels must be at least {min_active}")
    if _design_fits(soc, workload, n_channels, n_channels, config):
        return n_channels
    if not _design_fits(soc, workload, n_channels, min_active, config):
        return 0
    lo, hi = min_active, n_channels  # fits at lo, fails at hi
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _design_fits(soc, workload, n_channels, mid, config):
            lo = mid
        else:
            hi = mid
    return lo


def evaluate_ladder_step(soc: ScaledSoC, n_channels: int, step_name: str,
                         config: OptimizationConfig,
                         workload: Workload = Workload.MLP,
                         ) -> OptimizedDesign:
    """Run one Fig. 12 ladder step for one SoC and channel count."""
    active = max_active_channels(soc, workload, n_channels, config)
    if active == 0:
        fraction = 0.0
    else:
        full = build_workload(workload, n_channels).n_parameters
        reduced = build_workload(workload, active).n_parameters
        fraction = reduced / full
    return OptimizedDesign(soc_name=soc.name, step_name=step_name,
                           n_channels=n_channels, active_channels=active,
                           model_size_fraction=fraction)


def evaluate_ladder(soc: ScaledSoC, n_channels: int,
                    workload: Workload = Workload.MLP,
                    ) -> list[OptimizedDesign]:
    """All four Fig. 12 ladder steps for one SoC and channel count."""
    return [evaluate_ladder_step(soc, n_channels, name, config, workload)
            for name, config in LADDER]
