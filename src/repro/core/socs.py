"""Table 1: the eleven published implanted SoC designs.

Each record carries the paper's reported parameters (NI type, channel
count, tissue-contact area, power density, sampling rate, wireless support)
plus two split parameters the analysis beyond 1024 channels needs but the
paper keeps in its private artifact configuration (DESIGN.md
substitution 2):

* ``sensing_area_fraction`` — share of the 1024-channel design's area used
  for sensing (Eq. 2's A_sensing at the 1024 anchor point).
* ``comm_power_fraction`` — share of the 1024-channel design's power spent
  on the transceiver (P_non-sensing at the anchor; the rest is sensing).

Both are documented engineering estimates chosen per device class; the
published power densities of Table 1 — taken verbatim — govern the
qualitative scaling behaviour (who crosses the budget, in which order).

Per-SoC scaling corrections from Section 4.1 are encoded in
``ScalingRule`` and the correction factors:

* SoCs 1, 3, 10 are already at 1024 channels.
* SoCs 2, 11 (SPAD imagers) use their nominal reported parameters as the
  1024-channel configuration.
* SoC 5 (Muller) receives an extra 2x area reduction (reported scaling
  yields an unrealistically low 10 mW/cm^2).
* SoC 7 (WIMAGINE) receives a 2x area reduction and then a 50x reduction
  in both power and area (to reach ~200-300 um channel spacing while
  preserving ~30 mW/cm^2).
* SoC 8 (HALO) is replaced by HALO*: power/area rescaled to sit just below
  the 40 mW/cm^2 budget line (30 mm^2 / 9.6 mW).
* SoC 9 (Neuropixels) scales linearly in both area and power (adding
  shanks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.units import khz, mm2, mw, mw_per_cm2

#: The modern channel-count standard all designs are normalized to (4.1).
STANDARD_CHANNELS = 1024

#: Digitized sample bitwidth used throughout the paper's worked examples.
DEFAULT_SAMPLE_BITS = 10


class NIType(enum.Enum):
    """Sensing modality of the neural interface."""

    ELECTRODES = "electrodes"
    SPAD = "spad"


class ScalingRule(enum.Enum):
    """How a design extrapolates to 1024 channels (Section 4.1)."""

    #: Eq. 1: area ~ sqrt(n), power ~ n (relative to the original design).
    EQ1 = "eq1"
    #: Linear area and power (Neuropixels: add shanks).
    LINEAR = "linear"
    #: Reported parameters already describe a 1024-channel configuration.
    NOMINAL = "nominal"
    #: Direct override with the values in ``override_*`` (HALO*).
    OVERRIDE = "override"


@dataclass(frozen=True)
class SoCRecord:
    """One row of Table 1 plus the scaling metadata of Section 4.1.

    Attributes:
        number: SoC index (1-11) as used throughout the paper.
        name: design name.
        ni_type: sensing modality.
        n_channels: reported active channel count.
        area_m2: reported tissue-contact area.
        power_density_w_m2: reported power density.
        sampling_hz: NI sampling rate f.
        wireless: integrates an RF transceiver.
        below_budget: the Table 1 "P <= 100%?" column.
        sample_bits: digitized sample width d.
        scaling_rule: extrapolation rule to 1024 channels.
        area_correction: extra divisor applied to the Eq. 1 area.
        power_correction: extra divisor applied to the Eq. 1 power.
        override_area_m2 / override_power_w: direct 1024-channel values
            (OVERRIDE rule only).
        sensing_area_fraction: sensing share of area at 1024 channels.
        comm_power_fraction: transceiver share of power at 1024 channels.
    """

    number: int
    name: str
    ni_type: NIType
    n_channels: int
    area_m2: float
    power_density_w_m2: float
    sampling_hz: float
    wireless: bool
    below_budget: bool
    sample_bits: int = DEFAULT_SAMPLE_BITS
    scaling_rule: ScalingRule = ScalingRule.EQ1
    area_correction: float = 1.0
    power_correction: float = 1.0
    override_area_m2: float | None = None
    override_power_w: float | None = None
    sensing_area_fraction: float = 0.5
    comm_power_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.n_channels <= 0:
            raise ValueError("channel count must be positive")
        if self.area_m2 <= 0 or self.power_density_w_m2 <= 0:
            raise ValueError("area and power density must be positive")
        if self.sampling_hz <= 0:
            raise ValueError("sampling rate must be positive")
        if not 0.0 < self.sensing_area_fraction < 1.0:
            raise ValueError("sensing_area_fraction must lie in (0, 1)")
        if not 0.0 < self.comm_power_fraction < 1.0:
            raise ValueError("comm_power_fraction must lie in (0, 1)")
        if min(self.area_correction, self.power_correction) <= 0:
            raise ValueError("correction factors must be positive")

    @property
    def power_w(self) -> float:
        """Reported total power (density times area)."""
        return self.power_density_w_m2 * self.area_m2

    def with_updates(self, **changes) -> "SoCRecord":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


#: Table 1, in paper order.  Areas in mm^2, densities in mW/cm^2, sampling
#: in kHz — converted to SI here.
TABLE1: tuple[SoCRecord, ...] = (
    SoCRecord(1, "BISC", NIType.ELECTRODES, 1024, mm2(144),
              mw_per_cm2(27), khz(8), wireless=True, below_budget=True,
              sensing_area_fraction=0.55, comm_power_fraction=0.25),
    SoCRecord(2, "Gilhotra", NIType.SPAD, 49152, mm2(144),
              mw_per_cm2(33), khz(8), wireless=True, below_budget=True,
              scaling_rule=ScalingRule.NOMINAL,
              sensing_area_fraction=0.60, comm_power_fraction=0.25),
    SoCRecord(3, "Neuralink", NIType.ELECTRODES, 1024, mm2(20),
              mw_per_cm2(39), khz(10), wireless=True, below_budget=True,
              sensing_area_fraction=0.50, comm_power_fraction=0.30),
    SoCRecord(4, "Shen", NIType.ELECTRODES, 16, mm2(1.34),
              mw_per_cm2(2.2), khz(10), wireless=True, below_budget=True,
              sensing_area_fraction=0.35, comm_power_fraction=0.30),
    SoCRecord(5, "Muller", NIType.ELECTRODES, 64, mm2(5.76),
              mw_per_cm2(2.5), khz(1), wireless=True, below_budget=True,
              area_correction=2.0,
              sensing_area_fraction=0.40, comm_power_fraction=0.30),
    # Yang: reported as 13 in the Table 1 scan, but Eq. 1 scaling of 13
    # mW/cm^2 yields an unsafe 208 mW/cm^2 at 1024 channels, contradicting
    # Fig. 4 (all designs safe, Yang at ~21 mW/cm^2); 1.3 mW/cm^2 — the
    # plausible reading for a 0.52 mW battery-less backscatter SoC —
    # reproduces Fig. 4 exactly.
    SoCRecord(6, "Yang", NIType.ELECTRODES, 4, mm2(4),
              mw_per_cm2(1.3), khz(20), wireless=True, below_budget=True,
              sensing_area_fraction=0.40, comm_power_fraction=0.35),
    SoCRecord(7, "WIMAGINE", NIType.ELECTRODES, 64, mm2(1960),
              mw_per_cm2(3.8), khz(30), wireless=True, below_budget=True,
              area_correction=2.0 * 50.0, power_correction=50.0,
              sensing_area_fraction=0.50, comm_power_fraction=0.25),
    SoCRecord(8, "HALO", NIType.ELECTRODES, 96, mm2(1),
              mw_per_cm2(1500), khz(30), wireless=True, below_budget=False,
              scaling_rule=ScalingRule.OVERRIDE,
              override_area_m2=mm2(30), override_power_w=mw(9.6),
              sensing_area_fraction=0.50, comm_power_fraction=0.40),
    SoCRecord(9, "Neuropixels", NIType.ELECTRODES, 384, mm2(22),
              mw_per_cm2(21), khz(30), wireless=False, below_budget=True,
              scaling_rule=ScalingRule.LINEAR),
    SoCRecord(10, "Jang", NIType.ELECTRODES, 1024, mm2(3),
              mw_per_cm2(17), khz(20), wireless=False, below_budget=True),
    SoCRecord(11, "Pollman", NIType.SPAD, 49152, mm2(50),
              mw_per_cm2(36), khz(8), wireless=False, below_budget=True,
              scaling_rule=ScalingRule.NOMINAL),
)

#: Display name for the budget-corrected HALO variant.
HALO_STAR_NAME = "HALO*"


def soc_by_number(number: int) -> SoCRecord:
    """Look up a Table 1 design by its paper index (1-11).

    Raises:
        KeyError: for indices outside 1-11.
    """
    for record in TABLE1:
        if record.number == number:
            return record
    raise KeyError(f"no SoC numbered {number}; Table 1 covers 1-11")


def wireless_socs() -> tuple[SoCRecord, ...]:
    """SoCs 1-8: the wireless designs within the target-system scope."""
    return tuple(record for record in TABLE1 if record.wireless)
