"""Scaling implants to and beyond 1024 channels (paper Sections 4.1-4.2).

``scale_to_standard`` applies Eq. 1 with the per-SoC corrections of
Section 4.1, producing a :class:`ScaledSoC` — the 1024-channel anchor point
every later analysis builds on.  ``ScaledSoC`` then provides the
sensing-side extrapolation of Eq. 5 (linear power and area in n), the
non-sensing split, the Eq. 3 power budget, and the Eq. 6 throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.socs import (
    HALO_STAR_NAME,
    STANDARD_CHANNELS,
    ScalingRule,
    SoCRecord,
)
from repro.ni.interface import sensing_throughput
from repro.thermal.budget import power_budget
from repro.units import SAFE_POWER_DENSITY


@dataclass(frozen=True)
class ScaledSoC:
    """A design point normalized to the 1024-channel standard.

    Attributes:
        record: the underlying Table 1 design.
        name: display name (HALO becomes HALO*).
        area_m2: total area at 1024 channels.
        power_w: total power at 1024 channels.
        n_channels: the standard channel count (1024).
    """

    record: SoCRecord
    name: str
    area_m2: float
    power_w: float
    n_channels: int = STANDARD_CHANNELS

    # ---------------------------------------------------------------- anchor
    @property
    def power_density_w_m2(self) -> float:
        """Power density at the 1024-channel anchor."""
        return self.power_w / self.area_m2

    @property
    def sampling_hz(self) -> float:
        """NI sampling rate f."""
        return self.record.sampling_hz

    @property
    def sample_bits(self) -> int:
        """Digitized sample bitwidth d."""
        return self.record.sample_bits

    # ------------------------------------------------------- sensing split
    @property
    def sensing_area_anchor_m2(self) -> float:
        """A_sensing(1024)."""
        return self.record.sensing_area_fraction * self.area_m2

    @property
    def non_sensing_area_m2(self) -> float:
        """A_non-sensing(1024): transceiver, control, pads."""
        return self.area_m2 - self.sensing_area_anchor_m2

    @property
    def sensing_power_anchor_w(self) -> float:
        """P_sensing(1024)."""
        return (1.0 - self.record.comm_power_fraction) * self.power_w

    @property
    def comm_power_anchor_w(self) -> float:
        """P_non-sensing(1024), attributed to the transceiver."""
        return self.record.comm_power_fraction * self.power_w

    # --------------------------------------------------------- Eq. 5 scaling
    def sensing_area_m2(self, n_channels: int) -> float:
        """Eq. 5: A_sensing(n) = n * A_sensing(1024) / 1024."""
        _check_channels(n_channels)
        return self.sensing_area_anchor_m2 * n_channels / self.n_channels

    def sensing_power_w(self, n_channels: int) -> float:
        """Eq. 5: P_sensing(n) = n * P_sensing(1024) / 1024."""
        _check_channels(n_channels)
        return self.sensing_power_anchor_w * n_channels / self.n_channels

    # ----------------------------------------------------------- throughput
    def sensing_throughput_bps(self, n_channels: int | None = None) -> float:
        """Eq. 6: T_sensing = d * n * f."""
        n = self.n_channels if n_channels is None else n_channels
        return sensing_throughput(n, self.sample_bits, self.sampling_hz)

    @property
    def implied_energy_per_bit_j(self) -> float:
        """Transceiver energy per bit implied by the anchor split:
        E_b = P_non-sensing(1024) / T_sensing(1024)."""
        return self.comm_power_anchor_w / self.sensing_throughput_bps()

    # ---------------------------------------------------------------- budget
    def budget_w(self, area_m2: float | None = None) -> float:
        """Eq. 3 power budget; defaults to the anchor area."""
        return power_budget(self.area_m2 if area_m2 is None else area_m2,
                            SAFE_POWER_DENSITY)


def scale_to_standard(record: SoCRecord,
                      n_target: int = STANDARD_CHANNELS) -> ScaledSoC:
    """Section 4.1: normalize a Table 1 design to the channel standard.

    Applies the record's scaling rule (Eq. 1 / linear / nominal / override)
    and its correction divisors.

    Args:
        record: a Table 1 design.
        n_target: target channel count (1024 unless exploring).

    Returns:
        The scaled design point.
    """
    _check_channels(n_target)
    ratio = n_target / record.n_channels
    rule = record.scaling_rule
    if rule is ScalingRule.OVERRIDE:
        if record.override_area_m2 is None or record.override_power_w is None:
            raise ValueError(f"{record.name}: OVERRIDE rule without values")
        area = record.override_area_m2
        power = record.override_power_w
    elif rule is ScalingRule.NOMINAL:
        area = record.area_m2
        power = record.power_w
    elif rule is ScalingRule.LINEAR:
        area = record.area_m2 * ratio
        power = record.power_w * ratio
    else:  # Eq. 1
        area = record.area_m2 * math.sqrt(ratio)
        power = record.power_w * ratio
    area /= record.area_correction
    power /= record.power_correction
    name = HALO_STAR_NAME if rule is ScalingRule.OVERRIDE else record.name
    return ScaledSoC(record=record, name=name, area_m2=area, power_w=power,
                     n_channels=n_target)


def _check_channels(n_channels: int) -> None:
    if n_channels <= 0:
        raise ValueError("channel count must be positive")
