"""First-order tissue heating model behind the 40 mW/cm^2 limit.

A steady, uniform heat flux q'' from the implant surface into perfused
brain tissue produces a surface temperature rise governed by the Pennes
bioheat balance.  For a 1-D half-space with conductivity k and blood
perfusion w (volumetric exchange rate), the temperature field decays as
``exp(-m x)`` with ``m = sqrt(rho_b c_b w / k)`` and the surface rise is

    dT = q'' / (k m + h_extra)

where ``h_extra`` folds in parallel heat paths (CSF convection, conduction
toward the skull).  With textbook brain parameters the model yields a rise
of ~1-1.5 degC at the paper's 40 mW/cm^2 limit — consistent with the safe
1-2 degC window (Section 3.2) and the uniform-dissipation assumption of
Serrano et al.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import SAFE_TEMPERATURE_RISE_K


@dataclass(frozen=True)
class TissueThermalModel:
    """Perfused-tissue heating model.

    Attributes:
        conductivity_w_mk: tissue thermal conductivity k [W/(m K)].
        perfusion_per_s: blood perfusion rate w [1/s].
        blood_heat_capacity_j_m3k: rho_b * c_b of blood [J/(m^3 K)].
        tissue_heat_capacity_j_m3k: rho * c of brain tissue [J/(m^3 K)].
        h_extra_w_m2k: parallel non-perfusion heat-loss coefficient.
    """

    conductivity_w_mk: float = 0.51
    perfusion_per_s: float = 0.012
    blood_heat_capacity_j_m3k: float = 3.8e6
    tissue_heat_capacity_j_m3k: float = 3.7e6
    h_extra_w_m2k: float = 150.0

    def __post_init__(self) -> None:
        if min(self.conductivity_w_mk, self.perfusion_per_s,
               self.blood_heat_capacity_j_m3k,
               self.tissue_heat_capacity_j_m3k) <= 0:
            raise ValueError("physical parameters must be positive")
        if self.h_extra_w_m2k < 0:
            raise ValueError("h_extra must be non-negative")

    @property
    def decay_constant_per_m(self) -> float:
        """m = sqrt(rho_b c_b w / k): inverse thermal penetration depth."""
        return math.sqrt(self.blood_heat_capacity_j_m3k
                         * self.perfusion_per_s / self.conductivity_w_mk)

    @property
    def effective_h_w_m2k(self) -> float:
        """Total surface heat-transfer coefficient [W/(m^2 K)]."""
        return (self.conductivity_w_mk * self.decay_constant_per_m
                + self.h_extra_w_m2k)

    def steady_state_rise_k(self, power_density_w_m2: float) -> float:
        """Surface temperature rise for a sustained flux [K]."""
        if power_density_w_m2 < 0:
            raise ValueError("power density must be non-negative")
        return power_density_w_m2 / self.effective_h_w_m2k

    def depth_rise_k(self, power_density_w_m2: float,
                     depth_m: float) -> float:
        """Temperature rise at a given depth into tissue [K]."""
        if depth_m < 0:
            raise ValueError("depth must be non-negative")
        surface = self.steady_state_rise_k(power_density_w_m2)
        return surface * math.exp(-self.decay_constant_per_m * depth_m)

    @property
    def time_constant_s(self) -> float:
        """Lumped thermal time constant of the heated tissue layer."""
        penetration = 1.0 / self.decay_constant_per_m
        return (self.tissue_heat_capacity_j_m3k * penetration
                / self.effective_h_w_m2k)

    def transient_rise_k(self, power_density_w_m2: float,
                         elapsed_s: float) -> float:
        """First-order step response toward the steady-state rise [K]."""
        if elapsed_s < 0:
            raise ValueError("elapsed time must be non-negative")
        steady = self.steady_state_rise_k(power_density_w_m2)
        return steady * (1.0 - math.exp(-elapsed_s / self.time_constant_s))

    def safe_density_w_m2(self,
                          max_rise_k: float = SAFE_TEMPERATURE_RISE_K,
                          ) -> float:
        """Power density producing exactly ``max_rise_k`` at steady state."""
        if max_rise_k <= 0:
            raise ValueError("temperature limit must be positive")
        return max_rise_k * self.effective_h_w_m2k
