"""Thermal safety substrate: the 40 mW/cm^2 budget and tissue heating.

Paper Section 3.2: brain tissue tolerates at most a 1-2 degC rise, which —
given cortical blood perfusion — translates into a safe implant power
density of 40 mW/cm^2.  ``power_budget`` is Eq. 3; ``TissueThermalModel``
is the first-order uniform-dissipation heating model (after Serrano et al.)
that justifies using a flat density limit in the first place.
"""

from repro.thermal.budget import (
    power_budget,
    power_density,
    is_safe,
    SafetyReport,
    assess,
)
from repro.thermal.model import TissueThermalModel
from repro.thermal.grid import ChipThermalGrid

__all__ = [
    "power_budget",
    "power_density",
    "is_safe",
    "SafetyReport",
    "assess",
    "TissueThermalModel",
    "ChipThermalGrid",
]
