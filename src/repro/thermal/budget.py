"""The power-density budget of Eq. 3.

    P_soc(n) / A_soc(n) <= 40 mW/cm^2
    P_budget(n) = A_soc(n) * 40 mW/cm^2

All quantities in SI (watts, square meters); ``repro.units`` converts from
the literature's mW/cm^2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import SAFE_POWER_DENSITY, to_mm2, to_mw, to_mw_per_cm2


def power_density(power_w: float, area_m2: float) -> float:
    """Surface power density [W/m^2].

    Raises:
        ValueError: on non-positive area or negative power.
    """
    if area_m2 <= 0:
        raise ValueError("area must be positive")
    if power_w < 0:
        raise ValueError("power must be non-negative")
    return power_w / area_m2


def power_budget(area_m2: float,
                 density_limit_w_m2: float = SAFE_POWER_DENSITY) -> float:
    """Eq. 3: maximum safe total power [W] for a given contact area."""
    if area_m2 <= 0:
        raise ValueError("area must be positive")
    if density_limit_w_m2 <= 0:
        raise ValueError("density limit must be positive")
    return area_m2 * density_limit_w_m2


def is_safe(power_w: float, area_m2: float,
            density_limit_w_m2: float = SAFE_POWER_DENSITY) -> bool:
    """True when the implant's density is within the safe limit."""
    return power_density(power_w, area_m2) <= density_limit_w_m2


@dataclass(frozen=True)
class SafetyReport:
    """Safety assessment of one implant design point.

    Attributes:
        power_w: total implant power.
        area_m2: tissue-contact area.
        density_w_m2: resulting power density.
        budget_w: Eq. 3 power budget for this area.
        margin_w: budget minus power (negative when unsafe).
        safe: verdict.
    """

    power_w: float
    area_m2: float
    density_w_m2: float
    budget_w: float
    margin_w: float
    safe: bool

    def describe(self) -> str:
        """One-line human-readable summary."""
        verdict = "SAFE" if self.safe else "UNSAFE"
        return (f"{verdict}: {to_mw(self.power_w):.2f} mW over "
                f"{to_mm2(self.area_m2):.1f} mm^2 = "
                f"{to_mw_per_cm2(self.density_w_m2):.1f} mW/cm^2 "
                f"(budget {to_mw(self.budget_w):.2f} mW, margin "
                f"{to_mw(self.margin_w):+.2f} mW)")


def assess(power_w: float, area_m2: float,
           density_limit_w_m2: float = SAFE_POWER_DENSITY) -> SafetyReport:
    """Full safety assessment for a design point."""
    density = power_density(power_w, area_m2)
    budget = power_budget(area_m2, density_limit_w_m2)
    return SafetyReport(power_w=power_w, area_m2=area_m2,
                        density_w_m2=density, budget_w=budget,
                        margin_w=budget - power_w,
                        safe=density <= density_limit_w_m2)
