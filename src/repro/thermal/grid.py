"""2-D chip thermal solver: testing the uniform-dissipation assumption.

Section 3.2 argues that because silicon conducts heat far better than
brain tissue, "heat spreads more rapidly across the chip than into
surrounding tissue", so non-uniform on-chip power still dissipates nearly
uniformly from the implant surface — the assumption behind using a single
40 mW/cm^2 figure.  This module checks that claim quantitatively.

Model: the chip is a thin conductive sheet.  Steady-state balance per
cell:

    k_sheet * t * laplacian(T) = h_eff * (T - T_tissue) - q''(x, y)

discretized on an N x M grid and solved directly (sparse LU).  ``h_eff``
is the perfused-tissue surface coefficient from
:class:`~repro.thermal.model.TissueThermalModel`; ``k_sheet * t`` is the
silicon sheet conductance.  The interesting output is the *hotspot
ratio*: peak over mean surface temperature rise for a concentrated power
map — close to 1 means the paper's assumption holds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix, lil_matrix
from scipy.sparse.linalg import spsolve

from repro.cache.stages import cached_stage
from repro.thermal.model import TissueThermalModel
from repro.units import mm


@dataclass(frozen=True)
class ChipThermalGrid:
    """Finite-difference thermal model of a thin implanted chip.

    Attributes:
        width_m / height_m: chip dimensions.
        nx / ny: grid resolution.
        silicon_conductivity_w_mk: lateral sheet conductivity.
        thickness_m: chip thickness (thinned dies: tens of um).
        tissue: the perfused-tissue surface model (gives h_eff).
    """

    width_m: float = mm(12.0)
    height_m: float = mm(12.0)
    nx: int = 32
    ny: int = 32
    silicon_conductivity_w_mk: float = 148.0
    thickness_m: float = mm(0.025)
    tissue: TissueThermalModel = TissueThermalModel()

    def __post_init__(self) -> None:
        if self.width_m <= 0 or self.height_m <= 0:
            raise ValueError("chip dimensions must be positive")
        if self.nx < 2 or self.ny < 2:
            raise ValueError("grid must be at least 2x2")
        if self.silicon_conductivity_w_mk <= 0 or self.thickness_m <= 0:
            raise ValueError("sheet parameters must be positive")

    @property
    def cell_area_m2(self) -> float:
        """Area of one grid cell."""
        return (self.width_m / self.nx) * (self.height_m / self.ny)

    def _conductances(self) -> tuple[float, float, float]:
        """(gx, gy, g_tissue) of the discretized balance equation."""
        dx = self.width_m / self.nx
        dy = self.height_m / self.ny
        sheet = self.silicon_conductivity_w_mk * self.thickness_m
        gx = sheet * dy / dx  # lateral conductance between x-neighbours
        gy = sheet * dx / dy
        g_tissue = self.tissue.effective_h_w_m2k * self.cell_area_m2
        return gx, gy, g_tissue

    def _assemble(self, power_map_w: np.ndarray,
                  ) -> tuple[csr_matrix, np.ndarray]:
        """Vectorized finite-difference assembly (production path).

        Builds the same system as :meth:`_assemble_reference` — identical
        values and sparsity pattern — from whole-grid index arrays
        instead of an O(nx*ny) Python double loop.  The diagonal adds the
        per-neighbour conductances in the reference's left/right/up/down
        order so the float sums match bit for bit.
        """
        gx, gy, g_tissue = self._conductances()
        n = self.nx * self.ny
        cells = np.arange(n, dtype=np.int64)
        iy, ix = np.divmod(cells, self.nx)

        neighbours = (
            (ix > 0, -1, gx),              # left
            (ix < self.nx - 1, +1, gx),    # right
            (iy > 0, -self.nx, gy),        # up
            (iy < self.ny - 1, +self.nx, gy),  # down
        )
        diag = np.full(n, g_tissue)
        rows = [cells]
        cols = [cells]
        data = [diag]
        for mask, offset, g in neighbours:
            diag = diag + np.where(mask, g, 0.0)
            here = cells[mask]
            rows.append(here)
            cols.append(here + offset)
            data.append(np.full(here.size, -g))
        data[0] = diag
        matrix = csr_matrix(
            (np.concatenate(data),
             (np.concatenate(rows), np.concatenate(cols))),
            shape=(n, n))
        return matrix, power_map_w.ravel().astype(float)

    def _assemble_reference(self, power_map_w: np.ndarray,
                            ) -> tuple[csr_matrix, np.ndarray]:
        """Original double-loop assembly, kept as the parity oracle for
        :meth:`_assemble` (``tests/thermal/test_grid.py``)."""
        gx, gy, g_tissue = self._conductances()
        n = self.nx * self.ny

        matrix = lil_matrix((n, n))
        rhs = np.zeros(n)

        def index(iy: int, ix: int) -> int:
            return iy * self.nx + ix

        for iy in range(self.ny):
            for ix in range(self.nx):
                here = index(iy, ix)
                diag = g_tissue
                for niy, nix, g in ((iy, ix - 1, gx), (iy, ix + 1, gx),
                                    (iy - 1, ix, gy), (iy + 1, ix, gy)):
                    if 0 <= niy < self.ny and 0 <= nix < self.nx:
                        diag += g
                        matrix[here, index(niy, nix)] = -g
                matrix[here, here] = diag
                rhs[here] = power_map_w[iy, ix]
        return matrix.tocsr(), rhs

    @cached_stage("thermal.solve")
    def solve(self, power_map_w: np.ndarray) -> np.ndarray:
        """Steady-state temperature rise field [K].

        Memoized under an active stage cache (:mod:`repro.cache.stages`),
        keyed on the grid's parameters (this frozen dataclass hashes by
        its fields), the power map, and this module's source fingerprint.

        Args:
            power_map_w: (ny, nx) per-cell dissipated power.

        Returns:
            (ny, nx) temperature rise over tissue baseline.

        Raises:
            ValueError: on shape mismatch or negative power.
        """
        power_map_w = np.asarray(power_map_w, dtype=float)
        if power_map_w.shape != (self.ny, self.nx):
            raise ValueError(
                f"power map must be ({self.ny}, {self.nx})")
        if np.any(power_map_w < 0):
            raise ValueError("power must be non-negative")

        matrix, rhs = self._assemble(power_map_w)
        solution = spsolve(matrix, rhs)
        return solution.reshape(self.ny, self.nx)

    def uniform_map(self, total_power_w: float) -> np.ndarray:
        """A uniform power map dissipating ``total_power_w``."""
        if total_power_w < 0:
            raise ValueError("power must be non-negative")
        return np.full((self.ny, self.nx),
                       total_power_w / (self.nx * self.ny))

    def hotspot_map(self, total_power_w: float,
                    fraction_of_area: float = 0.05) -> np.ndarray:
        """All power concentrated in a central block of the given area."""
        if not 0.0 < fraction_of_area <= 1.0:
            raise ValueError("fraction must lie in (0, 1]")
        side = max(1, int(round(np.sqrt(
            fraction_of_area * self.nx * self.ny))))
        power_map = np.zeros((self.ny, self.nx))
        y0 = (self.ny - side) // 2
        x0 = (self.nx - side) // 2
        power_map[y0:y0 + side, x0:x0 + side] = (
            total_power_w / (side * side))
        return power_map

    def hotspot_ratio(self, total_power_w: float,
                      fraction_of_area: float = 0.05) -> float:
        """Peak/mean rise of a concentrated map — 1.0 means perfectly
        uniform dissipation (the Section 3.2 assumption)."""
        field = self.solve(self.hotspot_map(total_power_w,
                                            fraction_of_area))
        mean = float(field.mean())
        if mean == 0:
            return 1.0
        return float(field.max()) / mean
