"""Fig. 5 reproduction: SoC power vs budget under naive / high-margin OOK.

For each wireless SoC and n in {1024, 2048, 4096, 8192}, report the
sensing / non-sensing power split relative to the power budget.  Naive
designs hold a constant P_soc/P_budget ratio; high-margin designs
eventually exceed the budget.
"""

from __future__ import annotations

from repro.core.comm_centric import DesignHypothesis, evaluate_comm_centric
from repro.core.comm_centric import budget_crossing_channels
from repro.core.scaling import scale_to_standard
from repro.core.socs import wireless_socs
from repro.experiments.base import ExperimentResult, mean_of
from repro.experiments.report import format_table
from repro.obs.metrics import set_gauge
from repro.obs.trace import span
from repro.units import to_mw

#: The Fig. 5 x-axis.
CHANNEL_COUNTS = (1024, 2048, 4096, 8192)

COLUMNS = ["soc", "hypothesis", "channels", "sensing_mw", "non_sensing_mw",
           "total_mw", "budget_mw", "power_ratio", "within_budget"]


def run() -> ExperimentResult:
    """Regenerate both Fig. 5 panels."""
    rows = []
    crossings = {}
    with span("fig5.sweep", channel_counts=len(CHANNEL_COUNTS)):
        for record in wireless_socs():
            soc = scale_to_standard(record)
            for hypothesis in DesignHypothesis:
                for n in CHANNEL_COUNTS:
                    point = evaluate_comm_centric(soc, n, hypothesis)
                    rows.append({
                        "soc": soc.name,
                        "hypothesis": hypothesis.value,
                        "channels": n,
                        "sensing_mw": to_mw(point.sensing_power_w),
                        "non_sensing_mw": to_mw(point.non_sensing_power_w),
                        "total_mw": to_mw(point.total_power_w),
                        "budget_mw": to_mw(point.budget_w),
                        "power_ratio": point.power_ratio,
                        "within_budget": point.within_budget,
                    })
            crossings[soc.name] = budget_crossing_channels(
                soc, DesignHypothesis.HIGH_MARGIN)

    with span("fig5.summary"):
        naive = [r for r in rows if r["hypothesis"] == "naive"]
        ratios_1024 = [r["power_ratio"] for r in naive
                       if r["channels"] == 1024]
        ratios_8192 = [r["power_ratio"] for r in naive
                       if r["channels"] == 8192]
        summary = {
            "naive_ratio_constant": all(
                abs(a - b) < 1e-9
                for a, b in zip(ratios_1024, ratios_8192)),
            "naive_all_within_budget": all(r["within_budget"]
                                           for r in naive),
            "high_margin_crossings": crossings,
            "high_margin_all_cross": all(c is not None
                                         for c in crossings.values()),
            "mean_crossing_channels": mean_of(
                [c for c in crossings.values() if c is not None]),
        }
    set_gauge("fig5.mean_crossing_channels",
              summary["mean_crossing_channels"])
    return ExperimentResult(
        name="fig5",
        title="Fig. 5: P_soc vs P_budget, naive and high-margin designs",
        rows=rows, summary=summary, columns=COLUMNS)


def render(result: ExperimentResult) -> str:
    """Per-hypothesis stacked-bar style tables."""
    blocks = []
    for hypothesis in ("naive", "high_margin"):
        subset = [r for r in result.rows if r["hypothesis"] == hypothesis]
        blocks.append(f"--- {hypothesis} design ---")
        blocks.append(format_table(subset, COLUMNS))
    blocks.append("high-margin budget crossings: "
                  f"{result.summary['high_margin_crossings']}")
    return "\n".join(blocks)


if __name__ == "__main__":
    outcome = run()
    print(outcome.title)
    print(render(outcome))
    print(outcome.save_csv())
