"""Extension experiment: the strategy frontier across all wireless SoCs.

Not a paper artifact — this is the repository's synthesis table: for each
wireless design, the maximum safe channel count under every architectural
strategy the framework models (raw OOK, QAM, compression, event streaming,
on-implant DNNs, partitioning, multi-implant tiling), plus which strategy
wins at the 2048-channel short-term target.

Written as stage functions composed two ways: the imperative :func:`run`
chains them (the parity oracle) and :func:`build_graph` declares one
explore node per SoC, so the DAG scheduler can fan the per-SoC
exploration across the warm worker pool.
"""

from __future__ import annotations

from typing import Any

from repro.core.explorer import explore
from repro.core.multi_implant import max_implants
from repro.core.scaling import scale_to_standard
from repro.core.socs import wireless_socs
from repro.dag import ExperimentGraph, Stage
from repro.experiments.base import ExperimentResult
from repro.experiments.report import format_table
from repro.obs.metrics import set_gauge
from repro.obs.trace import span

#: The short-term scaling target the paper repeatedly discusses (2x).
TARGET_CHANNELS = 2048

COLUMNS = ["soc", "strategy", "max_channels", "power_ratio_at_2048",
           "feasible_at_2048"]


def stage_socs() -> dict[str, Any]:
    """Scale every wireless SoC to the comparison standard."""
    return {"socs": [scale_to_standard(r) for r in wireless_socs()]}


def stage_explore(socs: list, index: int) -> dict[str, Any]:
    """Explore one SoC's strategy frontier (one node per SoC)."""
    soc = socs[index]
    rows = []
    with span("frontier.explore", soc=soc.name):
        report = explore(soc, target_channels=TARGET_CHANNELS)
    for outcome in report.outcomes:
        rows.append({
            "soc": soc.name,
            "strategy": outcome.strategy,
            "max_channels": outcome.max_channels,
            "power_ratio_at_2048": outcome.power_ratio_at_target,
            "feasible_at_2048": outcome.feasible_at_target,
        })
    rows.append({
        "soc": soc.name,
        "strategy": "multi-implant tiling",
        "max_channels": max_implants(soc) * soc.n_channels,
        "power_ratio_at_2048": float("nan"),
        "feasible_at_2048": max_implants(soc) >= 2,
    })
    best = report.best_strategy()
    return {f"explored_{index}": {
        "soc": soc.name,
        "rows": rows,
        "best": best.strategy if best else None,
    }}


def stage_report(**explored: dict) -> dict[str, Any]:
    """Merge the per-SoC blocks into the frontier table and summary."""
    blocks = [explored[f"explored_{i}"] for i in range(len(explored))]
    rows = [row for block in blocks for row in block["rows"]]
    best_at_target = {block["soc"]: block["best"] for block in blocks}
    summary = {
        "best_strategy_at_2048": best_at_target,
        "n_socs_with_feasible_2048": sum(
            1 for name in best_at_target if best_at_target[name]),
    }
    set_gauge("frontier.n_socs_with_feasible_2048",
              float(summary["n_socs_with_feasible_2048"]))
    result = ExperimentResult(
        name="frontier",
        title="Extension: strategy frontier across wireless SoCs",
        rows=rows, summary=summary, columns=COLUMNS)
    return {"result": result}


def build_graph() -> ExperimentGraph:
    """The frontier as a fan-out/fan-in DAG: one explore node per SoC."""
    n = len(wireless_socs())
    stages = [Stage("socs", stage_socs, outputs=("socs",))]
    for i in range(n):
        stages.append(Stage(f"explore_{i}", stage_explore,
                            inputs=("socs",), consts={"index": i},
                            outputs=(f"explored_{i}",)))
    stages.append(Stage("report", stage_report,
                        inputs=tuple(f"explored_{i}" for i in range(n)),
                        outputs=("result",)))
    return ExperimentGraph(name="frontier", stages=tuple(stages))


def run() -> ExperimentResult:
    """Build the frontier table."""
    socs = stage_socs()["socs"]
    explored: dict[str, dict] = {}
    for i in range(len(socs)):
        explored.update(stage_explore(socs=socs, index=i))
    return stage_report(**explored)["result"]


def render(result: ExperimentResult) -> str:
    """Per-SoC frontier tables plus the winners summary."""
    blocks = []
    socs = sorted({r["soc"] for r in result.rows},
                  key=lambda name: [r["soc"] for r in result.rows].index(
                      name))
    for soc in socs:
        subset = [r for r in result.rows if r["soc"] == soc]
        blocks.append(f"--- {soc} ---")
        blocks.append(format_table(subset, ["strategy", "max_channels",
                                            "power_ratio_at_2048",
                                            "feasible_at_2048"]))
    blocks.append(f"best strategy at {TARGET_CHANNELS} channels: "
                  f"{result.summary['best_strategy_at_2048']}")
    return "\n".join(blocks)


if __name__ == "__main__":
    outcome = run()
    print(outcome.title)
    print(render(outcome))
    print(outcome.save_csv())
