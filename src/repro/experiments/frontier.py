"""Extension experiment: the strategy frontier across all wireless SoCs.

Not a paper artifact — this is the repository's synthesis table: for each
wireless design, the maximum safe channel count under every architectural
strategy the framework models (raw OOK, QAM, compression, event streaming,
on-implant DNNs, partitioning, multi-implant tiling), plus which strategy
wins at the 2048-channel short-term target.
"""

from __future__ import annotations

from repro.core.explorer import explore
from repro.core.multi_implant import max_implants
from repro.core.scaling import scale_to_standard
from repro.core.socs import wireless_socs
from repro.experiments.base import ExperimentResult
from repro.experiments.report import format_table
from repro.obs.metrics import set_gauge
from repro.obs.trace import span

#: The short-term scaling target the paper repeatedly discusses (2x).
TARGET_CHANNELS = 2048

COLUMNS = ["soc", "strategy", "max_channels", "power_ratio_at_2048",
           "feasible_at_2048"]


def run() -> ExperimentResult:
    """Build the frontier table."""
    rows = []
    best_at_target = {}
    for record in wireless_socs():
        soc = scale_to_standard(record)
        with span("frontier.explore", soc=soc.name):
            report = explore(soc, target_channels=TARGET_CHANNELS)
        for outcome in report.outcomes:
            rows.append({
                "soc": soc.name,
                "strategy": outcome.strategy,
                "max_channels": outcome.max_channels,
                "power_ratio_at_2048": outcome.power_ratio_at_target,
                "feasible_at_2048": outcome.feasible_at_target,
            })
        rows.append({
            "soc": soc.name,
            "strategy": "multi-implant tiling",
            "max_channels": max_implants(soc) * soc.n_channels,
            "power_ratio_at_2048": float("nan"),
            "feasible_at_2048": max_implants(soc) >= 2,
        })
        best = report.best_strategy()
        best_at_target[soc.name] = best.strategy if best else None

    summary = {
        "best_strategy_at_2048": best_at_target,
        "n_socs_with_feasible_2048": sum(
            1 for name in best_at_target if best_at_target[name]),
    }
    set_gauge("frontier.n_socs_with_feasible_2048",
              float(summary["n_socs_with_feasible_2048"]))
    return ExperimentResult(
        name="frontier",
        title="Extension: strategy frontier across wireless SoCs",
        rows=rows, summary=summary, columns=COLUMNS)


def render(result: ExperimentResult) -> str:
    """Per-SoC frontier tables plus the winners summary."""
    blocks = []
    socs = sorted({r["soc"] for r in result.rows},
                  key=lambda name: [r["soc"] for r in result.rows].index(
                      name))
    for soc in socs:
        subset = [r for r in result.rows if r["soc"] == soc]
        blocks.append(f"--- {soc} ---")
        blocks.append(format_table(subset, ["strategy", "max_channels",
                                            "power_ratio_at_2048",
                                            "feasible_at_2048"]))
    blocks.append(f"best strategy at {TARGET_CHANNELS} channels: "
                  f"{result.summary['best_strategy_at_2048']}")
    return "\n".join(blocks)


if __name__ == "__main__":
    outcome = run()
    print(outcome.title)
    print(render(outcome))
    print(outcome.save_csv())
