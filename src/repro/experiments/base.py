"""Common experiment-result container shared by the figure drivers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.experiments.report import DEFAULT_OUTPUT_DIR, write_csv
from repro.obs.manifest import build_manifest, write_manifest


@dataclass
class ExperimentResult:
    """Output of one figure/table reproduction.

    Attributes:
        name: experiment id ("fig5", "table1", ...).
        title: human-readable description.
        rows: the regenerated data series, one dict per row.
        summary: headline scalars (crossovers, averages) used both by the
            renderers and by EXPERIMENTS.md.
        columns: declared CSV column order (the driver's ``COLUMNS``
            contract); :meth:`save_csv` uses it unless overridden.
        seed: base RNG seed of the run, if any (recorded in the
            manifest).
        derived_seed: the per-driver seed actually installed for the run
            (:func:`repro.perf.seeds.derive_driver_seed` of ``seed`` and
            ``name``), populated by :func:`repro.experiments.run_module`.
        duration_s: wall-clock runtime, populated by
            :func:`repro.experiments.run_module`.
        cache_info: cache provenance (``{"hit", "key", "fingerprint"}``)
            populated by :func:`repro.cache.run_and_save_cached` on
            cached runs; None on uncached runs.  Recorded in the
            manifest.
        cached_csv_text: exact CSV text captured by a previous cold run;
            when set, :meth:`save_csv` writes these bytes verbatim so
            warm artifacts are byte-identical to cold ones.
        fault_info: fault accounting
            (``{"injected", "recovered", "failed", ...}``) populated by
            the resilient runners when a fault plan is active or a
            driver needed retries; None on fault-free runs.  Recorded
            as the manifest's ``faults`` block (docs/ROBUSTNESS.md).
    """

    name: str
    title: str
    rows: list[dict[str, Any]]
    summary: dict[str, Any] = field(default_factory=dict)
    columns: Sequence[str] | None = None
    seed: int | None = None
    derived_seed: int | None = None
    duration_s: float | None = None
    cache_info: dict[str, Any] | None = None
    cached_csv_text: str | None = None
    fault_info: dict[str, Any] | None = None

    def save_csv(self, output_dir: Path | str = DEFAULT_OUTPUT_DIR,
                 columns: Sequence[str] | None = None) -> Path:
        """Write the rows to ``<output_dir>/<name>.csv``.

        Every save also writes a ``<name>.manifest.json`` next to the CSV
        recording provenance (git SHA, versions, seed, duration, peak
        RSS) so the artifact can always be traced back to the code and
        inputs that produced it.

        A cache replay (``cached_csv_text`` set) writes the captured
        text verbatim instead of re-rendering the rows, guaranteeing
        byte-identical warm artifacts.
        """
        path = Path(output_dir) / f"{self.name}.csv"
        if self.cached_csv_text is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("w", newline="", encoding="utf-8") as handle:
                handle.write(self.cached_csv_text)
        else:
            path = write_csv(path, self.rows,
                             columns if columns is not None
                             else self.columns)
        self.save_manifest(output_dir)
        return path

    def save_manifest(self, output_dir: Path | str = DEFAULT_OUTPUT_DIR,
                      ) -> Path:
        """Write ``<output_dir>/<name>.manifest.json`` and return its
        path."""
        extra: dict[str, Any] = {"title": self.title,
                                 "n_rows": len(self.rows),
                                 "derived_seed": self.derived_seed}
        if self.cache_info is not None:
            extra["cache"] = self.cache_info
        if self.fault_info is not None:
            extra["faults"] = self.fault_info
        manifest = build_manifest(
            self.name, seed=self.seed, duration_s=self.duration_s,
            extra=extra)
        return write_manifest(
            Path(output_dir) / f"{self.name}.manifest.json", manifest)

    def summary_lines(self) -> list[str]:
        """Summary entries rendered as 'key: value' lines."""
        return [f"{key}: {value}" for key, value in self.summary.items()]


def mean_of(values: Sequence[float]) -> float:
    """Plain mean that tolerates empty input (returns 0.0).

    Raises:
        ValueError: if any value is NaN — silently averaging NaN would
            poison every downstream summary; callers with possibly-NaN
            data should pre-filter via :func:`filter_finite`.
    """
    values = list(values)
    if not values:
        return 0.0
    if any(math.isnan(v) for v in values):
        raise ValueError("mean_of received NaN input; filter first "
                         "(see filter_finite)")
    return sum(values) / len(values)


def filter_finite(mapping: Mapping[str, float]) -> dict[str, float]:
    """Drop non-finite values from a mapping."""
    return {k: v for k, v in mapping.items() if math.isfinite(v)}
