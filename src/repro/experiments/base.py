"""Common experiment-result container shared by the figure drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.experiments.report import DEFAULT_OUTPUT_DIR, write_csv


@dataclass
class ExperimentResult:
    """Output of one figure/table reproduction.

    Attributes:
        name: experiment id ("fig5", "table1", ...).
        title: human-readable description.
        rows: the regenerated data series, one dict per row.
        summary: headline scalars (crossovers, averages) used both by the
            renderers and by EXPERIMENTS.md.
    """

    name: str
    title: str
    rows: list[dict[str, Any]]
    summary: dict[str, Any] = field(default_factory=dict)

    def save_csv(self, output_dir: Path | str = DEFAULT_OUTPUT_DIR,
                 columns: Sequence[str] | None = None) -> Path:
        """Write the rows to ``<output_dir>/<name>.csv``."""
        return write_csv(Path(output_dir) / f"{self.name}.csv", self.rows,
                         columns)

    def summary_lines(self) -> list[str]:
        """Summary entries rendered as 'key: value' lines."""
        return [f"{key}: {value}" for key, value in self.summary.items()]


def mean_of(values: Sequence[float]) -> float:
    """Plain mean that tolerates empty input (returns 0.0)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def filter_finite(mapping: Mapping[str, float]) -> dict[str, float]:
    """Drop non-finite values from a mapping."""
    import math
    return {k: v for k, v in mapping.items() if math.isfinite(v)}
