"""Fig. 12 reproduction: feasible MLP model size under the optimization
ladder (ChDr -> +La -> +Tech -> +Dense).

For each wireless SoC and n in {2048, 4096, 8192}, report the largest MLP
(as a fraction of the unoptimized n-channel model's parameters) that fits
the power budget after each cumulative optimization step.
"""

from __future__ import annotations

from repro.core.optimizations import evaluate_ladder
from repro.core.scaling import scale_to_standard
from repro.core.socs import wireless_socs
from repro.experiments.base import ExperimentResult, mean_of
from repro.experiments.report import ascii_bars, format_table
from repro.obs.metrics import observe
from repro.obs.trace import span

#: The Fig. 12 x-axis.
CHANNEL_COUNTS = (2048, 4096, 8192)

COLUMNS = ["soc", "channels", "step", "active_channels",
           "model_size_pct"]


def run() -> ExperimentResult:
    """Regenerate the Fig. 12 grid."""
    socs = [scale_to_standard(r) for r in wireless_socs()]
    rows = []
    with span("fig12.ladder", n_socs=len(socs)):
        for soc in socs:
            for n in CHANNEL_COUNTS:
                for design in evaluate_ladder(soc, n):
                    rows.append({
                        "soc": soc.name,
                        "channels": n,
                        "step": design.step_name,
                        "active_channels": design.active_channels,
                        "model_size_pct":
                            design.model_size_fraction * 100.0,
                    })

    summary = {}
    with span("fig12.summary"):
        for n in CHANNEL_COUNTS:
            for step in ("ChDr", "La+ChDr", "La+ChDr+Tech",
                         "La+ChDr+Tech+Dense"):
                values = [r["model_size_pct"] for r in rows
                          if r["channels"] == n and r["step"] == step]
                summary[f"avg_model_size_pct_{n}_{step}"] = mean_of(values)
                observe("fig12.avg_model_size_pct",
                        summary[f"avg_model_size_pct_{n}_{step}"])
    return ExperimentResult(
        name="fig12",
        title="Fig. 12: feasible MLP size under combined optimizations",
        rows=rows, summary=summary, columns=COLUMNS)


def render(result: ExperimentResult) -> str:
    """Per-(SoC, n) bar groups plus averages."""
    blocks = []
    for n in CHANNEL_COUNTS:
        blocks.append(f"--- n = {n} channels: avg model size per step ---")
        bars = {}
        for step in ("ChDr", "La+ChDr", "La+ChDr+Tech",
                     "La+ChDr+Tech+Dense"):
            bars[step] = result.summary[f"avg_model_size_pct_{n}_{step}"]
        blocks.append(ascii_bars(bars))
    blocks.append(format_table(result.rows, COLUMNS))
    return "\n".join(blocks)


if __name__ == "__main__":
    outcome = run()
    print(outcome.title)
    print(render(outcome))
    print(outcome.save_csv())
