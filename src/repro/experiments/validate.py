"""Programmatic paper-claims validation (the EXPERIMENTS.md table as code).

Each claim binds a published statement from the paper's evaluation to a
predicate over the regenerated experiment summaries.  ``validate_all``
runs every experiment once and scores every claim — the machine-checkable
core of the reproduction, surfaced by ``python -m repro validate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.experiments import ALL_EXPERIMENTS, run_module
from repro.obs.metrics import inc
from repro.obs.trace import span


@dataclass(frozen=True)
class Claim:
    """One paper claim and its verification predicate.

    Attributes:
        artifact: the paper artifact it comes from ("fig7"...).
        statement: the claim, paraphrased from the paper.
        check: predicate over that artifact's summary dict.
        measured: function extracting the comparable measured value.
    """

    artifact: str
    statement: str
    check: Callable[[Mapping[str, Any]], bool]
    measured: Callable[[Mapping[str, Any]], Any]


def _within(value: float, target: float, rel: float) -> bool:
    return abs(value - target) <= rel * abs(target)


CLAIMS: tuple[Claim, ...] = (
    Claim("fig4",
          "all SoCs scaled to 1024 channels fall below the power budget",
          lambda s: bool(s["all_safe"]),
          lambda s: s["max_density_mw_cm2"]),
    Claim("fig5",
          "naive designs keep a constant P_soc/P_budget ratio",
          lambda s: bool(s["naive_ratio_constant"]),
          lambda s: s["naive_ratio_constant"]),
    Claim("fig5",
          "high-margin designs eventually exceed the budget on all SoCs",
          lambda s: bool(s["high_margin_all_cross"]),
          lambda s: s["high_margin_crossings"]),
    Claim("fig6",
          "high-margin sensing-area fraction grows toward dominance",
          lambda s: bool(s["high_margin_monotone"])
          and s["high_margin_mean_at_8192"] > 0.8,
          lambda s: s["high_margin_mean_at_8192"]),
    Claim("fig7",
          "20% QAM efficiency supports ~2x the channel standard",
          lambda s: _within(s["multiplier_at_20pct"], 2.0, 0.15),
          lambda s: s["multiplier_at_20pct"]),
    Claim("fig7",
          "ideal (100%) QAM supports ~4x the channel standard",
          lambda s: _within(s["multiplier_at_100pct"], 4.0, 0.20),
          lambda s: s["multiplier_at_100pct"]),
    Claim("fig9",
          "PE power is ~25% of layer power in small designs (1-5)",
          lambda s: _within(s["pe_fraction_designs_1_5"], 0.25, 0.2),
          lambda s: s["pe_fraction_designs_1_5"]),
    Claim("fig9",
          "PE power reaches ~96% of layer power in the largest design",
          lambda s: _within(s["pe_fraction_design_12"], 0.96, 0.05),
          lambda s: s["pe_fraction_design_12"]),
    Claim("fig10",
          "the flagship SoCs (1, 2) integrate the DN-CNN at 1024 ch",
          lambda s: {"BISC", "Gilhotra"} <= set(s["dncnn_fits_at_1024"]),
          lambda s: s["dncnn_fits_at_1024"]),
    Claim("fig10",
          "average max channels ~1800 for the MLP (fitting SoCs)",
          lambda s: _within(s["mlp_avg_max_channels"], 1800, 0.25),
          lambda s: s["mlp_avg_max_channels"]),
    Claim("fig10",
          "average max channels ~1400 for the DN-CNN (fitting SoCs)",
          lambda s: _within(s["dncnn_avg_max_channels"], 1400, 0.25),
          lambda s: s["dncnn_avg_max_channels"]),
    Claim("fig11",
          "layer reduction buys the MLP ~20% more channels on average",
          lambda s: _within(s["mlp_avg_gain"], 1.2, 0.1),
          lambda s: s["mlp_avg_gain"]),
    Claim("fig11",
          "the DN-CNN shows no benefit from layer reduction",
          lambda s: not s["dncnn_any_benefit"],
          lambda s: s["dncnn_avg_gain"]),
    Claim("fig12",
          "channel dropout reduces the 2048-ch model to ~32% on average",
          lambda s: _within(s["avg_model_size_pct_2048_ChDr"], 32.0,
                            0.35),
          lambda s: s["avg_model_size_pct_2048_ChDr"]),
    Claim("fig12",
          "adding 12nm technology scaling recovers ~72% at 2048 channels",
          lambda s: _within(s["avg_model_size_pct_2048_La+ChDr+Tech"],
                            72.0, 0.2),
          lambda s: s["avg_model_size_pct_2048_La+ChDr+Tech"]),
    Claim("fig12",
          "at 8192 channels only ~2% of the model survives dropout",
          lambda s: abs(s["avg_model_size_pct_8192_ChDr"] - 2.0) <= 3.0,
          lambda s: s["avg_model_size_pct_8192_ChDr"]),
)


@dataclass(frozen=True)
class ClaimResult:
    """Verdict on one claim.

    Attributes:
        claim: the validated claim.
        passed: predicate outcome.
        measured: the measured value shown next to the verdict.
    """

    claim: Claim
    passed: bool
    measured: Any


def validate_all(claims: tuple[Claim, ...] = CLAIMS) -> list[ClaimResult]:
    """Run all experiments once and score every claim."""
    summaries = {}
    needed = {claim.artifact for claim in claims}
    with span("validate.run_experiments", n_experiments=len(needed)):
        for module in ALL_EXPERIMENTS:
            name = module.__name__.rsplit(".", 1)[-1]
            if name in needed:
                summaries[name] = run_module(module).summary
    results = []
    with span("validate.score_claims", n_claims=len(claims)):
        for claim in claims:
            summary = summaries[claim.artifact]
            passed = bool(claim.check(summary))
            inc("validate.claims_checked")
            if passed:
                inc("validate.claims_passed")
            results.append(ClaimResult(claim=claim, passed=passed,
                                       measured=claim.measured(summary)))
    return results


def render_results(results: list[ClaimResult]) -> str:
    """Human-readable validation report."""
    lines = []
    for result in results:
        verdict = "PASS" if result.passed else "FAIL"
        measured = result.measured
        if isinstance(measured, float):
            measured = f"{measured:.3g}"
        lines.append(f"[{verdict}] {result.claim.artifact:6s} "
                     f"{result.claim.statement}  (measured: {measured})")
    passed = sum(1 for r in results if r.passed)
    lines.append(f"\n{passed}/{len(results)} claims reproduced")
    return "\n".join(lines)
