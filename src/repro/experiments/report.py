"""Reporting utilities: ASCII tables, ASCII line plots, and CSV output.

matplotlib is unavailable in this environment (DESIGN.md substitution 5),
so every figure driver renders its series as a text table, an ASCII chart,
and a CSV file — the same numbers the paper's PDF figures plot.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Mapping, Sequence

#: Default output directory for experiment artifacts.
DEFAULT_OUTPUT_DIR = Path("results")


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str] | None = None,
                 float_format: str = "{:.3f}") -> str:
    """Render dict rows as an aligned text table.

    Args:
        rows: records to render.
        columns: column order; defaults to the first row's key order.
        float_format: format spec applied to float values.
    """
    if not rows:
        return "(no rows)"
    columns = list(columns or rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if math.isinf(value):
                return "inf"
            return float_format.format(value)
        return str(value)

    rendered = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    divider = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(cell.ljust(w) for cell, w in zip(r, widths))
                     for r in rendered)
    return "\n".join([header, divider, body])


def ascii_plot(series: Mapping[str, Sequence[tuple[float, float]]],
               width: int = 72, height: int = 18,
               x_label: str = "x", y_label: str = "y",
               y_max: float | None = None) -> str:
    """Plot one or more (x, y) series as an ASCII chart.

    Each series gets a distinct marker; non-finite y values are skipped.

    Args:
        series: name -> [(x, y), ...] mapping.
        width / height: character canvas size.
        x_label / y_label: axis captions.
        y_max: optional clip for the y axis (useful when some series blow
            up to infinity-adjacent values).
    """
    points = [(x, y) for pts in series.values() for x, y in pts
              if math.isfinite(y) and (y_max is None or y <= y_max)]
    if not points:
        return "(no finite points to plot)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    markers = "ox+*#@%&$~^!"
    canvas = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, pts) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        legend.append(f"{marker} = {name}")
        for x, y in pts:
            if not math.isfinite(y) or (y_max is not None and y > y_max):
                continue
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            canvas[height - 1 - row][col] = marker

    lines = [f"{y_label} [{y_lo:.3g} .. {y_hi:.3g}]"]
    lines += ["|" + "".join(row) for row in canvas]
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} [{x_lo:.3g} .. {x_hi:.3g}]")
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


def ascii_bars(values: Mapping[str, float], width: int = 50,
               reference: float | None = None,
               reference_label: str = "budget") -> str:
    """Horizontal bar chart; an optional reference value draws a marker."""
    if not values:
        return "(no bars)"
    finite = [v for v in values.values() if math.isfinite(v)]
    peak = max(finite + ([reference] if reference else [])) if finite else 1.0
    if peak <= 0:
        peak = 1.0
    label_w = max(len(k) for k in values)
    lines = []
    for name, value in values.items():
        if not math.isfinite(value):
            lines.append(f"{name.ljust(label_w)} | (infeasible)")
            continue
        filled = int(round(value / peak * width))
        bar = "#" * min(filled, width)
        if reference is not None:
            ref_col = int(round(reference / peak * width))
            bar = bar.ljust(max(ref_col + 1, len(bar)))
            if ref_col < len(bar):
                bar = bar[:ref_col] + "|" + bar[ref_col + 1:]
        lines.append(f"{name.ljust(label_w)} | {bar} {value:.3g}")
    if reference is not None:
        lines.append(f"{''.ljust(label_w)}   ('|' marks {reference_label} = "
                     f"{reference:.3g})")
    return "\n".join(lines)


def write_csv(path: Path | str, rows: Sequence[Mapping[str, object]],
              columns: Sequence[str] | None = None) -> Path:
    """Write dict rows to a CSV file, creating parent directories.

    Returns:
        The resolved output path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("")
        return path
    columns = list(columns or rows[0].keys())
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns,
                                extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path
