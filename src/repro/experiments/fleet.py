"""Extension experiment: population-scale closed-loop fleet dashboard.

Not a paper artifact — this is MINDFUL's system-level argument run at
population scale: a fleet of closed-loop cohorts (per-cohort decoder
family, link loss rate, and tuning-drift schedule) simulated by the
vectorized engine in :mod:`repro.fleet`, reported as fleet-level
dashboard rows — throughput, Fitts bitrate, and degradation
p50/p95/p99 — instead of single-session CSVs.  Every cohort stream
derives from the run seed and the cohort name, so the fleet replays
byte-identically, serial or sharded across the warm worker pool.

Written as stage functions composed two ways: the imperative
:func:`run_spec` chains them (the parity oracle, also used by the
``repro fleet`` CLI) and :func:`build_graph` declares the
spec -> simulate -> report chain for the DAG scheduler, with the run
seed flowing in through the ``base_seed`` graph parameter.
"""

from __future__ import annotations

from typing import Any

from repro.dag import ExperimentGraph, Stage
from repro.experiments.base import ExperimentResult
from repro.experiments.report import ascii_bars, format_table
from repro.fleet import CohortSpec, FleetSpec, run_fleet
from repro.obs.metrics import set_gauge
from repro.obs.trace import span

#: Sessions per default cohort (kept modest so the extension run stays
#: interactive; the CLI ``--sessions`` flag scales it to fleet size).
N_SESSIONS = 64

#: Closed-loop trials per session.
N_TRIALS = 4

#: Open-loop calibration length per session.
TRAIN_TIMESTEPS = 160

#: Trial abandonment time (seconds).
TIMEOUT_S = 2.0

COLUMNS = ["cohort", "decoder", "sessions", "trials", "drop_rate_pct",
           "hit_rate_mean", "throughput_hits_per_s",
           "time_to_target_p50_s", "time_to_target_p95_s",
           "time_to_target_p99_s", "bitrate_p50_bps", "bitrate_p95_bps",
           "bitrate_p99_bps", "dropped_pct_p50", "dropped_pct_p95",
           "dropped_pct_p99"]


def default_fleet(sessions: int | None = None,
                  decoder: str | None = None) -> FleetSpec:
    """The default evaluation fleet.

    Five cohorts cover the dashboard story: one clean cohort per
    decoder family, a lossy Kalman cohort (hold-last degradation under
    25% link loss), and a drifting Kalman cohort (tuning
    nonstationarity).  ``sessions`` overrides the per-cohort size;
    ``decoder`` keeps only cohorts of that family.
    """
    n = N_SESSIONS if sessions is None else sessions
    base = dict(n_sessions=n, n_trials=N_TRIALS,
                train_timesteps=TRAIN_TIMESTEPS, timeout_s=TIMEOUT_S)
    cohorts = [
        CohortSpec(name="kalman_clean", decoder="kalman", **base),
        CohortSpec(name="wiener_clean", decoder="wiener", **base),
        CohortSpec(name="dnn_clean", decoder="dnn", **base),
        CohortSpec(name="kalman_lossy", decoder="kalman",
                   drop_rate=0.25, latency_steps=2, **base),
        CohortSpec(name="kalman_drift", decoder="kalman",
                   tuning_drift_per_s=-0.05, **base),
    ]
    if decoder is not None:
        cohorts = [c for c in cohorts if c.decoder == decoder]
        if not cohorts:
            raise ValueError(f"no default cohort uses decoder "
                             f"{decoder!r}")
    return FleetSpec(cohorts)


def stage_spec() -> dict[str, Any]:
    """Materialize the default evaluation fleet."""
    return {"fleet": default_fleet()}


def stage_simulate(fleet: FleetSpec, base_seed: int | None,
                   jobs: int = 1) -> dict[str, Any]:
    """Run every cohort and reduce each to its dashboard row."""
    # No `jobs` attr here: span attrs feed the event timeline, and the
    # fleet contract keeps events.jsonl byte-identical serial vs
    # sharded.
    with span("fleet.run", cohorts=len(fleet.cohorts),
              sessions=fleet.n_sessions):
        results = run_fleet(fleet, base_seed=base_seed, jobs=jobs)
    return {"cohort_rows": [cohort.summary_row() for cohort in results]}


def stage_report(fleet: FleetSpec, cohort_rows: list) -> dict[str, Any]:
    """Reduce the cohort rows to the fleet summary and gauges."""
    rows = cohort_rows
    clean = [r for r in rows if r["drop_rate_pct"] == 0.0]
    best = max(clean or rows, key=lambda r: r["bitrate_p50_bps"])
    lossy = [r for r in rows if r["drop_rate_pct"] > 0.0]
    summary = {
        "cohorts": len(rows),
        "fleet_sessions": fleet.n_sessions,
        "best_clean_cohort": best["cohort"],
        "best_clean_bitrate_p50_bps": best["bitrate_p50_bps"],
        "lossy_bitrate_p50_bps": (lossy[0]["bitrate_p50_bps"]
                                  if lossy else 0.0),
    }
    set_gauge("fleet.sessions_total", fleet.n_sessions)
    set_gauge("fleet.best_bitrate_p50_bps",
              summary["best_clean_bitrate_p50_bps"])
    result = ExperimentResult(
        name="fleet",
        title="Extension: population-scale closed-loop fleet dashboard",
        rows=rows, summary=summary, columns=COLUMNS)
    return {"result": result}


def build_graph() -> ExperimentGraph:
    """The fleet as a spec -> simulate -> report chain; the scheduler
    fills ``base_seed`` with the derived driver seed."""
    return ExperimentGraph(name="fleet", params={"base_seed": None},
                           stages=(
        Stage("spec", stage_spec, outputs=("fleet",)),
        Stage("simulate", stage_simulate,
              inputs=("fleet", "base_seed"), outputs=("cohort_rows",)),
        Stage("report", stage_report, inputs=("fleet", "cohort_rows"),
              outputs=("result",)),
    ))


def run_spec(fleet: FleetSpec, base_seed: int | None = None,
             jobs: int = 1) -> ExperimentResult:
    """Run a fleet and reduce it to the dashboard result.

    Shared by the driver ``run()`` (always serial — pooled experiment
    runs must not nest pools) and the ``repro fleet`` CLI (which may
    shard cohorts with ``--jobs``).
    """
    values = stage_simulate(fleet=fleet, base_seed=base_seed, jobs=jobs)
    return stage_report(fleet=fleet,
                        cohort_rows=values["cohort_rows"])["result"]


def run(seed: int | None = None) -> ExperimentResult:
    """Run the default fleet (cohort streams derive from ``seed``)."""
    return run_spec(default_fleet(), base_seed=seed, jobs=1)


def render(result: ExperimentResult) -> str:
    """Bitrate dashboard as bars plus the full percentile table."""
    peak = max((row["bitrate_p50_bps"] for row in result.rows),
               default=0.0)
    bars = {row["cohort"]: (row["bitrate_p50_bps"] / peak
                            if peak > 0 else 0.0)
            for row in result.rows}
    blocks = ["median bitrate by cohort (relative):", ascii_bars(bars),
              format_table(result.rows, COLUMNS)]
    return "\n".join(blocks)


if __name__ == "__main__":
    outcome = run()
    print(outcome.title)
    print(render(outcome))
    print(outcome.save_csv())
