"""Fig. 10 reproduction: on-implant DNN power vs the budget.

For each wireless SoC and both workloads (MLP, DN-CNN), sweep the channel
count and report the Eq. 13 lower-bound P_soc normalized to P_budget, plus
the per-SoC maximum feasible channel count.  Headline claims: several SoCs
cannot integrate the DNNs even at 1024 channels, and the SoCs that can
top out well below 2x the current standard.
"""

from __future__ import annotations

import math

from repro.core.comp_centric import (
    Workload,
    evaluate_comp_centric,
    max_feasible_channels,
)
from repro.core.scaling import scale_to_standard
from repro.core.socs import wireless_socs
from repro.experiments.base import ExperimentResult, mean_of
from repro.experiments.report import ascii_plot, format_table
from repro.obs.metrics import observe
from repro.obs.trace import span

#: The Fig. 10 x-axis.
CHANNEL_COUNTS = tuple(range(1024, 7168 + 1, 1024))

COLUMNS = ["soc", "workload", "channels", "power_ratio", "fits"]


def run() -> ExperimentResult:
    """Regenerate both Fig. 10 panels."""
    socs = [scale_to_standard(r) for r in wireless_socs()]
    rows = []
    fits_at_1024: dict[str, list[str]] = {}
    maxima: dict[str, dict[str, int]] = {}
    for workload in Workload:
        fits_at_1024[workload.value] = []
        maxima[workload.value] = {}
        with span("fig10.sweep", workload=workload.value,
                  n_socs=len(socs)):
            for soc in socs:
                for n in CHANNEL_COUNTS:
                    point = evaluate_comp_centric(soc, workload, n)
                    ratio = point.power_ratio
                    rows.append({
                        "soc": soc.name,
                        "workload": workload.value,
                        "channels": n,
                        "power_ratio": ratio if math.isfinite(ratio)
                        else math.inf,
                        "fits": point.fits,
                    })
                if evaluate_comp_centric(soc, workload, 1024).fits:
                    fits_at_1024[workload.value].append(soc.name)
                maxima[workload.value][soc.name] = max_feasible_channels(
                    soc, workload)

    summary = {}
    with span("fig10.summary"):
        for workload in Workload:
            key = workload.value
            fitting = fits_at_1024[key]
            feasible_maxima = [maxima[key][name] for name in fitting]
            summary[f"{key}_fits_at_1024"] = fitting
            summary[f"{key}_max_channels"] = maxima[key]
            summary[f"{key}_avg_max_channels"] = mean_of(feasible_maxima)
            observe("fig10.avg_max_channels",
                    summary[f"{key}_avg_max_channels"])
    return ExperimentResult(
        name="fig10",
        title="Fig. 10: P_soc/P_budget with on-implant DNNs",
        rows=rows, summary=summary, columns=COLUMNS)


def render(result: ExperimentResult) -> str:
    """Per-workload ASCII charts (clipped at ratio 5, as in the paper)."""
    blocks = []
    for workload in ("mlp", "dncnn"):
        series = {}
        for row in result.rows:
            if row["workload"] != workload:
                continue
            series.setdefault(row["soc"], []).append(
                (row["channels"], row["power_ratio"]))
        blocks.append(f"--- {workload} ---")
        blocks.append(ascii_plot(series, x_label="channels",
                                 y_label="P_soc / P_budget", y_max=5.0))
    blocks += [f"{k}: {v}" for k, v in result.summary.items()]
    blocks.append(format_table(result.rows, COLUMNS))
    return "\n".join(blocks)


if __name__ == "__main__":
    outcome = run()
    print(outcome.title)
    print(render(outcome))
    print(outcome.save_csv())
