"""Fig. 11 reproduction: channel-count gains from DNN partitioning.

For each wireless SoC and workload, compare the maximum feasible channel
count with and without layer reduction.  Headline claims: the MLP gains
~20 % on average (best ~40 %); the DN-CNN gains nothing because every
intermediate feature map exceeds the 1024-value transmission budget.
"""

from __future__ import annotations

from repro.core.comp_centric import Workload
from repro.core.partitioning import partitioning_gain
from repro.core.scaling import scale_to_standard
from repro.core.socs import wireless_socs
from repro.experiments.base import ExperimentResult, mean_of
from repro.experiments.report import ascii_bars, format_table
from repro.obs.metrics import set_gauge
from repro.obs.trace import span

COLUMNS = ["soc", "workload", "max_channels_full",
           "max_channels_partitioned", "gain_ratio"]


def run() -> ExperimentResult:
    """Regenerate the Fig. 11 bars."""
    socs = [scale_to_standard(r) for r in wireless_socs()]
    rows = []
    for workload in Workload:
        with span("fig11.partition", workload=workload.value):
            for soc in socs:
                gain = partitioning_gain(soc, workload)
                rows.append({
                    "soc": soc.name,
                    "workload": workload.value,
                    "max_channels_full": gain.max_channels_full,
                    "max_channels_partitioned":
                        gain.max_channels_partitioned,
                    "gain_ratio": gain.gain_ratio,
                })

    def gains(workload: str) -> list[float]:
        return [r["gain_ratio"] for r in rows
                if r["workload"] == workload and r["gain_ratio"] > 0]

    summary = {
        "mlp_avg_gain": mean_of(gains("mlp")),
        "mlp_best_gain": max(gains("mlp")),
        "dncnn_avg_gain": mean_of(gains("dncnn")),
        "dncnn_any_benefit": any(g > 1.0 + 1e-9 for g in gains("dncnn")),
    }
    set_gauge("fig11.mlp_avg_gain", summary["mlp_avg_gain"])
    return ExperimentResult(
        name="fig11",
        title="Fig. 11: channel gains from implant/wearable partitioning",
        rows=rows, summary=summary, columns=COLUMNS)


def render(result: ExperimentResult) -> str:
    """Bar charts of the gain ratios per workload."""
    blocks = []
    for workload in ("mlp", "dncnn"):
        bars = {r["soc"]: r["gain_ratio"] for r in result.rows
                if r["workload"] == workload}
        blocks.append(f"--- {workload} gain ratio (1.0 = no benefit) ---")
        blocks.append(ascii_bars(bars, reference=1.0,
                                 reference_label="no benefit"))
    blocks.append(format_table(result.rows, COLUMNS))
    blocks += [f"{k}: {v}" for k, v in result.summary.items()]
    return "\n".join(blocks)


if __name__ == "__main__":
    outcome = run()
    print(outcome.title)
    print(render(outcome))
    print(outcome.save_csv())
