"""Extension experiment: closed-loop task performance vs packet loss.

Not a paper artifact — this is the degradation curve behind MINDFUL's
safety argument: when the wireless link drops feature windows, the
decoder holds its last command (:func:`repro.simulate.cursor_task.
run_closed_loop_session` with ``drop_rate`` > 0) instead of failing, and
task success should fall *gracefully*, not collapse at the first lost
packet.  Sessions at different drop rates share common random numbers —
the same user, targets, and neural noise — so every row differs only in
which windows the link lost.
"""

from __future__ import annotations

from repro.decoders import KalmanFilterDecoder
from repro.experiments.base import ExperimentResult
from repro.experiments.report import ascii_bars, format_table
from repro.fault.injector import FaultInjector
from repro.fault.plan import FaultPlan
from repro.obs.manifest import current_seed
from repro.obs.metrics import set_gauge
from repro.obs.trace import span
from repro.simulate.cursor_task import (CursorTask, SimulatedUser,
                                        run_closed_loop_session)

#: Link loss rates swept (fraction of control windows dropped).
DROP_RATES = (0.0, 0.1, 0.25, 0.5, 0.7, 0.85)

#: Closed-loop trials per drop rate (kept small: the sweep runs six
#: full sessions).
N_TRIALS = 6

#: Open-loop calibration length per session.
TRAIN_TIMESTEPS = 600

#: Control-loop latency in steps; with hold-last degradation on top,
#: stale commands overshoot, so loss actually costs time.
LATENCY_STEPS = 4

COLUMNS = ["drop_rate_pct", "trials", "hit_rate",
           "mean_time_to_target_s", "mean_path_efficiency",
           "dropped_windows_pct"]


def run() -> ExperimentResult:
    """Sweep the closed-loop session across link drop rates."""
    from repro.obs.manifest import seeded_rng

    user = SimulatedUser(noise_rms=0.6)
    task = CursorTask(timeout_s=0.8, target_radius=0.35)
    injector = FaultInjector(FaultPlan(seed=current_seed() or 0))
    rows = []
    with span("fault_sweep.sessions", n_rates=len(DROP_RATES)):
        for rate in DROP_RATES:
            # Fresh seeded generator per rate -> common random numbers
            # across the sweep; drop decisions draw from their own
            # derived stream so they never perturb the session stream.
            data_rng = seeded_rng()
            drop_rng = (injector.rng(f"sweep:{rate}")
                        if rate > 0.0 else None)
            decoder = KalmanFilterDecoder()
            outcome = run_closed_loop_session(
                decoder, user, task, data_rng, n_trials=N_TRIALS,
                latency_steps=LATENCY_STEPS,
                train_timesteps=TRAIN_TIMESTEPS, drop_rate=rate,
                drop_rng=drop_rng)
            rows.append({
                "drop_rate_pct": rate * 100.0,
                "trials": outcome.trials,
                "hit_rate": outcome.hit_rate,
                "mean_time_to_target_s": outcome.mean_time_to_target_s,
                "mean_path_efficiency": outcome.mean_path_efficiency,
                "dropped_windows_pct": outcome.dropped_fraction * 100.0,
            })

    clean = rows[0]
    worst = rows[-1]
    summary = {
        "clean_hit_rate": clean["hit_rate"],
        "worst_drop_rate_pct": worst["drop_rate_pct"],
        "worst_hit_rate": worst["hit_rate"],
        "hit_rate_retained_at_worst":
            (worst["hit_rate"] / clean["hit_rate"]
             if clean["hit_rate"] else 0.0),
    }
    set_gauge("fault_sweep.hit_rate_retained_at_worst",
              summary["hit_rate_retained_at_worst"])
    return ExperimentResult(
        name="fault_sweep",
        title="Extension: task success vs link packet loss "
              "(hold-last degradation)",
        rows=rows, summary=summary, columns=COLUMNS)


def render(result: ExperimentResult) -> str:
    """Degradation curve as bars plus the full table."""
    bars = {f"{row['drop_rate_pct']:.0f}% drop": row["hit_rate"]
            for row in result.rows}
    blocks = ["hit rate vs drop rate:", ascii_bars(bars),
              format_table(result.rows, COLUMNS)]
    return "\n".join(blocks)


if __name__ == "__main__":
    outcome = run()
    print(outcome.title)
    print(render(outcome))
    print(outcome.save_csv())
