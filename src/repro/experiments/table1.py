"""Table 1 reproduction: the published implanted SoC designs.

Written as stage functions composed two ways: the imperative :func:`run`
chains them (the parity oracle) and :func:`build_graph` declares the
same three stages for the DAG scheduler.
"""

from __future__ import annotations

from typing import Any

from repro.core.socs import TABLE1
from repro.dag import ExperimentGraph, Stage
from repro.experiments.base import ExperimentResult
from repro.experiments.report import format_table
from repro.obs.metrics import set_gauge
from repro.obs.trace import span
from repro.units import to_khz, to_mm2, to_mw_per_cm2

COLUMNS = ["number", "name", "ni_type", "channels", "area_mm2",
           "power_density_mw_cm2", "sampling_khz", "wireless",
           "below_budget"]


def stage_rows() -> dict[str, Any]:
    """Flatten the published designs into structured rows."""
    rows = []
    with span("table1.rows", n_designs=len(TABLE1)):
        for record in TABLE1:
            rows.append({
                "number": record.number,
                "name": record.name,
                "ni_type": record.ni_type.value,
                "channels": record.n_channels,
                "area_mm2": to_mm2(record.area_m2),
                "power_density_mw_cm2": to_mw_per_cm2(
                    record.power_density_w_m2),
                "sampling_khz": to_khz(record.sampling_hz),
                "wireless": record.wireless,
                "below_budget": record.below_budget,
            })
    return {"rows": rows}


def stage_summary(rows: list) -> dict[str, Any]:
    """Aggregate counts and ranges over the table rows."""
    with span("table1.summary"):
        summary = {
            "n_designs": len(rows),
            "n_wireless": sum(1 for r in rows if r["wireless"]),
            "channel_range": (min(r["channels"] for r in rows),
                              max(r["channels"] for r in rows)),
        }
    return {"summary": summary}


def stage_report(rows: list, summary: dict) -> dict[str, Any]:
    """Publish gauges and assemble the final result."""
    set_gauge("table1.n_designs", float(summary["n_designs"]))
    set_gauge("table1.n_wireless", float(summary["n_wireless"]))
    result = ExperimentResult(name="table1",
                              title="Table 1: implanted SoC designs",
                              rows=rows, summary=summary,
                              columns=COLUMNS)
    return {"result": result}


def build_graph() -> ExperimentGraph:
    """Table 1 as a three-stage chain."""
    return ExperimentGraph(name="table1", stages=(
        Stage("rows", stage_rows, outputs=("rows",)),
        Stage("summary", stage_summary, inputs=("rows",),
              outputs=("summary",)),
        Stage("report", stage_report, inputs=("rows", "summary"),
              outputs=("result",)),
    ))


def run() -> ExperimentResult:
    """Regenerate Table 1 as structured rows."""
    values = stage_rows()
    values.update(stage_summary(rows=values["rows"]))
    return stage_report(rows=values["rows"],
                        summary=values["summary"])["result"]


def render(result: ExperimentResult) -> str:
    """Text rendering of the table."""
    return format_table(result.rows, COLUMNS)


if __name__ == "__main__":
    outcome = run()
    print(outcome.title)
    print(render(outcome))
    print(outcome.save_csv())
