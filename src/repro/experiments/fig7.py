"""Fig. 7 reproduction: minimum QAM efficiency vs channel count.

For each wireless SoC, sweep n and compute the minimum QAM implementation
efficiency that keeps P_soc within P_budget.  The aggregate curve averages
the SoCs whose transceivers are realizable at today's ~15 % efficiency
standard at the 1024-channel anchor (the consistent set the paper's
multipliers — ~2x at 20 %, ~4x at 100 % — refer to).

The experiment is written as stage functions composed two ways: the
imperative :func:`run` chains them directly (the parity oracle), and
:func:`build_graph` declares them as a :class:`repro.dag.ExperimentGraph`
for the DAG scheduler.  Both paths produce byte-identical artifacts.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.qam_design import (
    evaluate_qam_design,
    max_channels_at_efficiency,
)
from repro.core.scaling import scale_to_standard
from repro.core.socs import wireless_socs
from repro.dag import ExperimentGraph, Stage
from repro.experiments.base import ExperimentResult, mean_of
from repro.experiments.report import ascii_plot, format_table
from repro.link.budget import LinkBudget
from repro.obs.metrics import set_gauge
from repro.obs.trace import span

#: Sweep range of the Fig. 7 x-axis.
CHANNEL_COUNTS = tuple(range(1024, 6144 + 1, 256))

#: Today's achievable QAM efficiency (paper Section 5.2).
CURRENT_STANDARD_EFFICIENCY = 0.15

COLUMNS = ["soc", "channels", "bits_per_symbol", "min_efficiency_pct",
           "feasible"]


def stage_setup(budget: LinkBudget | None) -> dict[str, Any]:
    """Resolve the link budget and scale every wireless SoC."""
    return {
        "link_budget": budget or LinkBudget(),
        "socs": [scale_to_standard(r) for r in wireless_socs()],
    }


def stage_sweep(socs: list, link_budget: LinkBudget) -> dict[str, Any]:
    """Sweep channel count per SoC to build the Fig. 7 curve rows."""
    rows = []
    with span("fig7.sweep", n_socs=len(socs),
              channel_counts=len(CHANNEL_COUNTS)):
        for soc in socs:
            for n in CHANNEL_COUNTS:
                point = evaluate_qam_design(soc, n, link_budget)
                rows.append({
                    "soc": soc.name,
                    "channels": n,
                    "bits_per_symbol": point.bits_per_symbol,
                    "min_efficiency_pct": (
                        point.min_efficiency * 100
                        if math.isfinite(point.min_efficiency)
                        else math.inf),
                    "feasible": point.feasible,
                })
    return {"rows": rows}


def stage_multipliers(socs: list,
                      link_budget: LinkBudget) -> dict[str, Any]:
    """Headline multipliers over the realizable SoC set."""
    with span("fig7.multipliers"):
        realizable = [
            soc for soc in socs
            if evaluate_qam_design(soc, 1024, link_budget).min_efficiency
            <= CURRENT_STANDARD_EFFICIENCY
        ]
        max_at_20 = {s.name: max_channels_at_efficiency(s, 0.20,
                                                        link_budget)
                     for s in realizable}
        max_at_100 = {s.name: max_channels_at_efficiency(s, 1.00,
                                                         link_budget)
                      for s in realizable}
    return {"realizable": [s.name for s in realizable],
            "max_at_20": max_at_20, "max_at_100": max_at_100}


def stage_report(rows: list, realizable: list, max_at_20: dict,
                 max_at_100: dict) -> dict[str, Any]:
    """Assemble the summary, gauges, and final result."""
    summary = {
        "realizable_socs": realizable,
        "max_channels_at_20pct": max_at_20,
        "max_channels_at_100pct": max_at_100,
        "avg_channels_at_20pct": mean_of(list(max_at_20.values())),
        "avg_channels_at_100pct": mean_of(list(max_at_100.values())),
        "multiplier_at_20pct": mean_of(list(max_at_20.values())) / 1024,
        "multiplier_at_100pct": mean_of(list(max_at_100.values())) / 1024,
    }
    set_gauge("fig7.multiplier_at_20pct", summary["multiplier_at_20pct"])
    set_gauge("fig7.multiplier_at_100pct",
              summary["multiplier_at_100pct"])
    result = ExperimentResult(
        name="fig7",
        title="Fig. 7: minimum QAM efficiency vs channel count",
        rows=rows, summary=summary, columns=COLUMNS)
    return {"result": result}


def build_graph() -> ExperimentGraph:
    """The Fig. 7 experiment as a declarative stage DAG (sweep and
    multipliers are independent and may run in parallel)."""
    return ExperimentGraph(name="fig7", params={"budget": None}, stages=(
        Stage("setup", stage_setup, inputs=("budget",),
              outputs=("link_budget", "socs")),
        Stage("sweep", stage_sweep, inputs=("socs", "link_budget"),
              outputs=("rows",)),
        Stage("multipliers", stage_multipliers,
              inputs=("socs", "link_budget"),
              outputs=("realizable", "max_at_20", "max_at_100")),
        Stage("report", stage_report,
              inputs=("rows", "realizable", "max_at_20", "max_at_100"),
              outputs=("result",)),
    ))


def run(budget: LinkBudget | None = None) -> ExperimentResult:
    """Regenerate the Fig. 7 efficiency curves and headline multipliers."""
    values = stage_setup(budget=budget)
    values.update(stage_sweep(socs=values["socs"],
                              link_budget=values["link_budget"]))
    values.update(stage_multipliers(socs=values["socs"],
                                    link_budget=values["link_budget"]))
    return stage_report(rows=values["rows"],
                        realizable=values["realizable"],
                        max_at_20=values["max_at_20"],
                        max_at_100=values["max_at_100"])["result"]


def render(result: ExperimentResult) -> str:
    """ASCII chart of per-SoC efficiency curves (clipped at 120 %)."""
    series = {}
    for row in result.rows:
        series.setdefault(row["soc"], []).append(
            (row["channels"], row["min_efficiency_pct"]))
    chart = ascii_plot(series, x_label="channels",
                       y_label="min QAM efficiency [%]", y_max=120.0)
    lines = [chart, ""]
    lines += [f"{key}: {value}" for key, value in result.summary.items()]
    lines.append("")
    lines.append(format_table(
        [r for r in result.rows if r["channels"] % 1024 == 0], COLUMNS))
    return "\n".join(lines)


if __name__ == "__main__":
    outcome = run()
    print(outcome.title)
    print(render(outcome))
    print(outcome.save_csv())
