"""Fig. 9 reproduction: accelerator design-point power study.

Twelve (MACseq, MAChw, #MACop) configurations of the weight-stationary
layer accelerator; the PE share of total power should climb from ~25 % in
the small designs (1-5) through ~80 % (design 9) to ~96 % (design 12) —
the observation that justifies the MAC-only power lower bound.
"""

from __future__ import annotations

from repro.accel.power import AcceleratorPowerModel, fig9_power_table
from repro.experiments.base import ExperimentResult
from repro.experiments.report import ascii_plot, format_table
from repro.obs.metrics import set_gauge
from repro.obs.trace import span

COLUMNS = ["design", "mac_seq", "mac_hw", "mac_ops", "layer_power_mw",
           "pe_power_mw", "pe_fraction"]


def run(model: AcceleratorPowerModel | None = None) -> ExperimentResult:
    """Regenerate the Fig. 9 table and trend."""
    with span("fig9.power_table"):
        rows = fig9_power_table(model)
    small = [r["pe_fraction"] for r in rows if r["design"] <= 5]
    summary = {
        "pe_fraction_designs_1_5": sum(small) / len(small),
        "pe_fraction_design_9": rows[8]["pe_fraction"],
        "pe_fraction_design_12": rows[11]["pe_fraction"],
        "power_monotone_6_12": all(
            rows[i]["layer_power_mw"] <= rows[i + 1]["layer_power_mw"]
            for i in range(5, 11)),
    }
    set_gauge("fig9.pe_fraction_design_12",
              summary["pe_fraction_design_12"])
    return ExperimentResult(
        name="fig9",
        title="Fig. 9: accelerator design points — PE power dominance",
        rows=rows, summary=summary, columns=COLUMNS)


def render(result: ExperimentResult) -> str:
    """Table plus ASCII trends of power and PE fraction."""
    power_series = {
        "layer power [mW]": [(r["design"], r["layer_power_mw"])
                             for r in result.rows],
        "PE power [mW]": [(r["design"], r["pe_power_mw"])
                          for r in result.rows],
    }
    fraction_series = {
        "PE fraction": [(r["design"], r["pe_fraction"])
                        for r in result.rows],
    }
    return "\n\n".join([
        format_table(result.rows, COLUMNS),
        ascii_plot(power_series, x_label="design point",
                   y_label="power [mW]", height=12),
        ascii_plot(fraction_series, x_label="design point",
                   y_label="PE power / layer power", height=10),
    ])


if __name__ == "__main__":
    outcome = run()
    print(outcome.title)
    print(render(outcome))
    print(outcome.save_csv())
