"""Fig. 4 reproduction: power vs area of all SoCs scaled to 1024 channels.

Every design, after the Section 4.1 scaling and corrections, must fall
below the 40 mW/cm^2 budget line — the paper's sanity check that the
scaled set is a plausible foundation for the beyond-1024 study.
"""

from __future__ import annotations

from repro.core.scaling import scale_to_standard
from repro.core.socs import TABLE1
from repro.experiments.base import ExperimentResult
from repro.experiments.report import ascii_plot, format_table
from repro.obs.metrics import set_gauge
from repro.obs.trace import span
from repro.thermal.budget import assess
from repro.units import to_mm2, to_mw, to_mw_per_cm2

COLUMNS = ["number", "name", "area_mm2", "power_mw",
           "power_density_mw_cm2", "budget_mw", "safe"]


def run() -> ExperimentResult:
    """Scale each Table 1 design to 1024 channels and assess safety."""
    rows = []
    with span("fig4.scale_and_assess", n_designs=len(TABLE1)):
        for record in TABLE1:
            scaled = scale_to_standard(record)
            report = assess(scaled.power_w, scaled.area_m2)
            rows.append({
                "number": record.number,
                "name": scaled.name,
                "area_mm2": to_mm2(scaled.area_m2),
                "power_mw": to_mw(scaled.power_w),
                "power_density_mw_cm2": to_mw_per_cm2(report.density_w_m2),
                "budget_mw": to_mw(report.budget_w),
                "safe": report.safe,
            })
    with span("fig4.summary"):
        summary = {
            "all_safe": all(r["safe"] for r in rows),
            "max_density_mw_cm2": max(r["power_density_mw_cm2"]
                                      for r in rows),
        }
    set_gauge("fig4.max_density_mw_cm2", summary["max_density_mw_cm2"])
    return ExperimentResult(
        name="fig4",
        title="Fig. 4: power vs area at 1024 channels (all below budget)",
        rows=rows, summary=summary, columns=COLUMNS)


def render(result: ExperimentResult) -> str:
    """Table plus an ASCII scatter of power vs area with the budget line."""
    series = {
        "designs": [(r["area_mm2"], r["power_mw"]) for r in result.rows],
        "budget line": [(a, a / 100.0 * 40.0)
                        for a in range(0, 200, 10)],
    }
    chart = ascii_plot(series, x_label="area [mm^2]", y_label="power [mW]")
    return format_table(result.rows, COLUMNS) + "\n\n" + chart


if __name__ == "__main__":
    outcome = run()
    print(outcome.title)
    print(render(outcome))
    print(outcome.save_csv())
