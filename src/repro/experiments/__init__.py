"""Per-figure experiment drivers (see DESIGN.md experiment index).

Each module exposes ``run() -> ExperimentResult`` and
``render(result) -> str``; :func:`run_all` executes the full evaluation
and writes every CSV under an output directory.  :func:`run_module` is
the single instrumented entry point both :func:`run_all` and the CLI go
through: it wraps the driver in an ``experiment.<name>`` span, times it,
and stamps seed + duration onto the result (which the manifest written
by ``save_csv`` then records).
"""

from __future__ import annotations

import inspect
import time
from pathlib import Path
from types import ModuleType

from repro.experiments.base import ExperimentResult
from repro.experiments.report import DEFAULT_OUTPUT_DIR, format_table
from repro.obs.events import driver_scope
from repro.obs.manifest import current_seed, set_run_seed
from repro.obs.metrics import inc
from repro.obs.trace import span
from repro.perf.seeds import derive_driver_seed
from repro.experiments import (  # noqa: F401 (re-exported driver modules)
    fault_sweep,
    fig4,
    fleet,
    frontier,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
)

#: Paper-artifact drivers, in paper order.
ALL_EXPERIMENTS = (table1, fig4, fig5, fig6, fig7, fig8, fig9, fig10,
                   fig11, fig12)

#: Extension drivers beyond the paper's evaluation (see DESIGN.md);
#: ``frontier`` stays last (the reporting contract tested in
#: tests/experiments/test_frontier.py).
EXTENSION_EXPERIMENTS = (fault_sweep, fleet, frontier)

#: Schema of a recorded-failure row (a driver that exhausted its retry
#: budget degrades to this instead of killing the run).
FAILURE_COLUMNS = ("driver", "status", "attempts", "error")


def experiment_name(module: ModuleType) -> str:
    """Driver module -> experiment id ("repro.experiments.fig5" ->
    "fig5")."""
    return module.__name__.rsplit(".", 1)[-1]


def run_module(module: ModuleType,
               seed: int | None = None) -> ExperimentResult:
    """Run one driver with automatic tracing and provenance.

    Wraps ``module.run()`` in an ``experiment.<name>`` span and stamps
    seed/duration onto the result so its manifest records them.

    ``seed`` (or, when omitted, the process run seed) is the *base* run
    seed; the driver actually runs under a per-driver seed derived from
    it (:func:`repro.perf.seeds.derive_driver_seed`) — forwarded to
    drivers whose ``run`` accepts a ``seed`` and installed as the process
    run seed for the driver's duration so ``seeded_rng()`` users see it
    too.  Deriving per driver rather than sharing one stream is what
    makes serial and parallel (``run_all(jobs=N)``) runs byte-identical.
    """
    name = experiment_name(module)
    if seed is None:
        seed = current_seed()
    driver_seed = derive_driver_seed(seed, name)
    kwargs = {}
    if driver_seed is not None and "seed" in inspect.signature(
            module.run).parameters:
        kwargs["seed"] = driver_seed
    previous_seed = current_seed()
    if driver_seed is not None:
        set_run_seed(driver_seed)
    try:
        with driver_scope(name):
            start = time.perf_counter()
            with span(f"experiment.{name}"):
                result = module.run(**kwargs)
            result.duration_s = time.perf_counter() - start
            inc("experiments.runs")
    finally:
        if driver_seed is not None:
            set_run_seed(previous_seed)
    result.seed = seed
    result.derived_seed = driver_seed
    return result


def _failure_result(name: str, attempts: int, error: str,
                    seed: int | None = None) -> ExperimentResult:
    """The recorded-failure row a driver degrades to after its retry
    budget is exhausted (schema: :data:`FAILURE_COLUMNS`)."""
    row = {"driver": name, "status": "failed", "attempts": attempts,
           "error": error}
    result = ExperimentResult(
        name=name,
        title=f"{name} (recorded failure after {attempts} attempt(s))",
        rows=[row],
        summary={"status": "failed", "attempts": attempts,
                 "error": error},
        columns=list(FAILURE_COLUMNS))
    result.seed = seed
    result.fault_info = {"injected": attempts, "recovered": 0,
                         "failed": 1, "attempts": attempts,
                         "error": error}
    return result


def is_recorded_failure(result: ExperimentResult) -> bool:
    """True for a degraded recorded-failure result (the driver never
    produced real rows)."""
    return result.summary.get("status") == "failed"


def render_result(module: ModuleType, result: ExperimentResult) -> str:
    """Render a result through its driver, tolerating degraded runs.

    Driver ``render`` functions assume their own row schema; a
    recorded-failure result carries :data:`FAILURE_COLUMNS` rows
    instead, so feeding it to ``module.render`` would die on the
    missing columns/summary keys.  Every CLI rendering path (evaluate,
    profile, verbose ``run_all``) goes through here so degraded
    drivers print their failure row instead of erroring.
    """
    if is_recorded_failure(result):
        return format_table(result.rows, list(FAILURE_COLUMNS))
    return module.render(result)


def run_module_resilient(module: ModuleType,
                         seed: int | None = None,
                         max_retries: int = 2,
                         backoff_s: float = 0.25,
                         fault_plan=None,
                         injector=None,
                         runner=None) -> ExperimentResult:
    """Run one driver with bounded retries and graceful degradation.

    The serial counterpart of the parallel engine's retry loop: a
    driver that raises gets retried with exponential backoff
    (``backoff_s * 2**(attempt-1)``) up to ``max_retries`` extra
    attempts, then degrades to a recorded-failure result
    (:func:`is_recorded_failure`) instead of killing the run.  On the
    happy path this is exactly :func:`run_module` — no extra sleeps, no
    extra RNG draws, byte-identical artifacts.

    Args:
        module: the driver module.
        seed: base run seed (as in :func:`run_module`).
        max_retries: extra attempts after the first failure.
        backoff_s: base backoff; 0 retries immediately.
        fault_plan: optional :class:`repro.fault.plan.FaultPlan` whose
            worker faults are applied before each attempt (crash
            raises, slow/hang sleep — serial runs cannot preempt).
        injector: optional :class:`repro.fault.injector.FaultInjector`
            used for fault accounting (created from ``fault_plan``
            when omitted).
        runner: the single-attempt callable, defaulting to
            :func:`run_module`; the cached path passes a closure over
            :func:`repro.cache.run_and_save_cached`.
    """
    if max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    if injector is None and fault_plan is not None:
        from repro.fault.injector import FaultInjector
        injector = FaultInjector(fault_plan)
    if runner is None:
        runner = run_module
    name = experiment_name(module)
    worker_spec = fault_plan.worker if fault_plan is not None else None

    error_text = ""
    attempts_used = 0
    # Bounded retry: at most max_retries extra attempts, then degrade.
    for attempt in range(max_retries + 1):
        attempts_used = attempt + 1
        if attempt > 0:
            if backoff_s > 0:
                time.sleep(backoff_s * 2.0 ** (attempt - 1))
            inc("experiments.retries")
        try:
            if worker_spec is not None:
                kind, seconds = worker_spec.fault_for(name, attempt)
                if kind is not None and injector is not None:
                    injector.record_worker_fault(name, attempt, kind,
                                                 seconds=seconds)
                if kind == "crash":
                    from repro.fault.plan import InjectedWorkerFault
                    raise InjectedWorkerFault(name, attempt)
                if kind in ("slow", "hang") and seconds > 0:
                    time.sleep(seconds)
            result = runner(module, seed=seed)
        except Exception as error:
            inc("experiments.driver_failures")
            error_text = f"{type(error).__name__}: {error}"
            continue
        if attempt > 0:
            result.fault_info = {"injected": attempt, "recovered": 1,
                                 "failed": 0, "attempts": attempts_used}
            if injector is not None:
                injector.record_recovered("worker", target=name,
                                          attempts=attempts_used)
        return result
    if injector is not None:
        injector.record_failed("worker", target=name,
                               attempts=attempts_used)
    inc("experiments.recorded_failures")
    return _failure_result(name, attempts=attempts_used,
                           error=error_text, seed=seed)


def run_all(output_dir: Path | str = DEFAULT_OUTPUT_DIR,
            verbose: bool = False,
            include_extensions: bool = False,
            seed: int | None = None,
            jobs: int = 1,
            cache: bool = False,
            max_retries: int = 2,
            backoff_s: float = 0.25,
            timeout_s: float | None = None,
            fault_plan=None,
            injector=None) -> list[ExperimentResult]:
    """Run every experiment, saving one CSV (+ manifest) per
    figure/table.

    Args:
        output_dir: destination for the CSV artifacts.
        verbose: print each rendering as it completes.
        include_extensions: also run the extension experiments.
        seed: RNG seed threaded to stochastic drivers and manifests.
        jobs: worker processes; above 1 the drivers fan out to a process
            pool (:func:`repro.perf.run_parallel`) with identical
            artifacts — per-driver seed derivation keeps the CSVs
            byte-identical to a serial run of the same seed.
        cache: route every driver through the content-addressed cache
            under ``<output_dir>/.cache``
            (:func:`repro.cache.run_and_save_cached`); unchanged
            drivers replay their stored results byte-for-byte.
        max_retries: bounded per-driver retry budget (serial and
            parallel); a driver that still fails degrades to a
            recorded-failure row (:func:`is_recorded_failure`) instead
            of killing the run.  Overridden by ``fault_plan.retry``
            when a plan is given.
        backoff_s: exponential-backoff base between attempts; likewise
            overridden by the plan's retry policy.
        timeout_s: per-driver wall-clock bound (parallel engine only;
            a serial run cannot preempt a hung driver).
        fault_plan: optional :class:`repro.fault.plan.FaultPlan`; its
            worker faults are injected and its retry policy replaces
            the three arguments above.
        injector: optional :class:`repro.fault.injector.FaultInjector`
            shared across drivers so fault accounting aggregates into
            one log (the chaos CLI passes one).

    Returns:
        The results in paper order (extensions last).
    """
    modules = ALL_EXPERIMENTS + (EXTENSION_EXPERIMENTS
                                 if include_extensions else ())
    if fault_plan is not None:
        max_retries = fault_plan.retry.max_retries
        backoff_s = fault_plan.retry.backoff_s
        timeout_s = fault_plan.retry.timeout_s
        if injector is None:
            from repro.fault.injector import FaultInjector
            injector = FaultInjector(fault_plan)
    if jobs != 1:
        from repro.perf.parallel import run_parallel
        results = run_parallel(modules, output_dir=output_dir, jobs=jobs,
                               seed=seed, cache=cache,
                               max_retries=max_retries,
                               backoff_s=backoff_s, timeout_s=timeout_s,
                               fault_plan=fault_plan, injector=injector)
        if verbose:
            for module, result in zip(modules, results):
                print(f"== {result.title} ==")
                print(render_result(module, result))
                print()
        return results
    results = []
    runner = None
    if cache:
        from repro.cache import run_and_save_cached, store_for
        store = store_for(output_dir)

        def runner(module: ModuleType,
                   seed: int | None = None) -> ExperimentResult:
            return run_and_save_cached(module, output_dir, seed=seed,
                                       store=store)
    with span("experiments.run_all", n_experiments=len(modules)):
        for module in modules:
            result = run_module_resilient(
                module, seed=seed, max_retries=max_retries,
                backoff_s=backoff_s, fault_plan=fault_plan,
                injector=injector, runner=runner)
            if not cache or is_recorded_failure(result):
                result.save_csv(output_dir)
            elif result.fault_info is not None:
                result.save_manifest(output_dir)
            if verbose:
                print(f"== {result.title} ==")
                print(render_result(module, result))
                print()
            results.append(result)
    return results


__all__ = ["ALL_EXPERIMENTS", "EXTENSION_EXPERIMENTS", "FAILURE_COLUMNS",
           "ExperimentResult", "experiment_name", "is_recorded_failure",
           "render_result", "run_all", "run_module",
           "run_module_resilient"]
