"""Per-figure experiment drivers (see DESIGN.md experiment index).

Each module exposes ``run() -> ExperimentResult`` and
``render(result) -> str``; :func:`run_all` executes the full evaluation
and writes every CSV under an output directory.  :func:`run_module` is
the single instrumented entry point both :func:`run_all` and the CLI go
through: it wraps the driver in an ``experiment.<name>`` span, times it,
and stamps seed + duration onto the result (which the manifest written
by ``save_csv`` then records).
"""

from __future__ import annotations

import inspect
import time
from pathlib import Path
from types import ModuleType

from repro.experiments.base import ExperimentResult
from repro.experiments.report import DEFAULT_OUTPUT_DIR
from repro.obs.manifest import current_seed
from repro.obs.metrics import inc
from repro.obs.trace import span
from repro.experiments import (  # noqa: F401 (re-exported driver modules)
    fig4,
    frontier,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
)

#: Paper-artifact drivers, in paper order.
ALL_EXPERIMENTS = (table1, fig4, fig5, fig6, fig7, fig8, fig9, fig10,
                   fig11, fig12)

#: Extension drivers beyond the paper's evaluation (see DESIGN.md).
EXTENSION_EXPERIMENTS = (frontier,)


def experiment_name(module: ModuleType) -> str:
    """Driver module -> experiment id ("repro.experiments.fig5" ->
    "fig5")."""
    return module.__name__.rsplit(".", 1)[-1]


def run_module(module: ModuleType,
               seed: int | None = None) -> ExperimentResult:
    """Run one driver with automatic tracing and provenance.

    Wraps ``module.run()`` in an ``experiment.<name>`` span, forwards
    ``seed`` to drivers whose ``run`` accepts one, and stamps
    seed/duration onto the result so its manifest records them.
    """
    name = experiment_name(module)
    if seed is None:
        seed = current_seed()
    kwargs = {}
    if seed is not None and "seed" in inspect.signature(
            module.run).parameters:
        kwargs["seed"] = seed
    start = time.perf_counter()
    with span(f"experiment.{name}"):
        result = module.run(**kwargs)
    result.duration_s = time.perf_counter() - start
    result.seed = seed
    inc("experiments.runs")
    return result


def run_all(output_dir: Path | str = DEFAULT_OUTPUT_DIR,
            verbose: bool = False,
            include_extensions: bool = False,
            seed: int | None = None) -> list[ExperimentResult]:
    """Run every experiment, saving one CSV (+ manifest) per
    figure/table.

    Args:
        output_dir: destination for the CSV artifacts.
        verbose: print each rendering as it completes.
        include_extensions: also run the extension experiments.
        seed: RNG seed threaded to stochastic drivers and manifests.

    Returns:
        The results in paper order (extensions last).
    """
    modules = ALL_EXPERIMENTS + (EXTENSION_EXPERIMENTS
                                 if include_extensions else ())
    results = []
    with span("experiments.run_all", n_experiments=len(modules)):
        for module in modules:
            result = run_module(module, seed=seed)
            result.save_csv(output_dir)
            if verbose:
                print(f"== {result.title} ==")
                print(module.render(result))
                print()
            results.append(result)
    return results


__all__ = ["ALL_EXPERIMENTS", "EXTENSION_EXPERIMENTS",
           "ExperimentResult", "experiment_name", "run_all", "run_module"]
