"""Per-figure experiment drivers (see DESIGN.md experiment index).

Each module exposes ``run() -> ExperimentResult`` and
``render(result) -> str``; :func:`run_all` executes the full evaluation
and writes every CSV under an output directory.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.base import ExperimentResult
from repro.experiments.report import DEFAULT_OUTPUT_DIR
from repro.experiments import (  # noqa: F401 (re-exported driver modules)
    fig4,
    frontier,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
)

#: Paper-artifact drivers, in paper order.
ALL_EXPERIMENTS = (table1, fig4, fig5, fig6, fig7, fig8, fig9, fig10,
                   fig11, fig12)

#: Extension drivers beyond the paper's evaluation (see DESIGN.md).
EXTENSION_EXPERIMENTS = (frontier,)


def run_all(output_dir: Path | str = DEFAULT_OUTPUT_DIR,
            verbose: bool = False,
            include_extensions: bool = False) -> list[ExperimentResult]:
    """Run every experiment, saving one CSV per figure/table.

    Args:
        output_dir: destination for the CSV artifacts.
        verbose: print each rendering as it completes.
        include_extensions: also run the extension experiments.

    Returns:
        The results in paper order (extensions last).
    """
    modules = ALL_EXPERIMENTS + (EXTENSION_EXPERIMENTS
                                 if include_extensions else ())
    results = []
    for module in modules:
        result = module.run()
        result.save_csv(output_dir)
        if verbose:
            print(f"== {result.title} ==")
            print(module.render(result))
            print()
        results.append(result)
    return results


__all__ = ["ALL_EXPERIMENTS", "EXTENSION_EXPERIMENTS",
           "ExperimentResult", "run_all"]
