"""Per-figure experiment drivers (see DESIGN.md experiment index).

Each module exposes ``run() -> ExperimentResult`` and
``render(result) -> str``; :func:`run_all` executes the full evaluation
and writes every CSV under an output directory.  :func:`run_module` is
the single instrumented entry point both :func:`run_all` and the CLI go
through: it wraps the driver in an ``experiment.<name>`` span, times it,
and stamps seed + duration onto the result (which the manifest written
by ``save_csv`` then records).
"""

from __future__ import annotations

import inspect
import time
from pathlib import Path
from types import ModuleType

from repro.experiments.base import ExperimentResult
from repro.experiments.report import DEFAULT_OUTPUT_DIR
from repro.obs.manifest import current_seed, set_run_seed
from repro.obs.metrics import inc
from repro.obs.trace import span
from repro.perf.seeds import derive_driver_seed
from repro.experiments import (  # noqa: F401 (re-exported driver modules)
    fig4,
    frontier,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
)

#: Paper-artifact drivers, in paper order.
ALL_EXPERIMENTS = (table1, fig4, fig5, fig6, fig7, fig8, fig9, fig10,
                   fig11, fig12)

#: Extension drivers beyond the paper's evaluation (see DESIGN.md).
EXTENSION_EXPERIMENTS = (frontier,)


def experiment_name(module: ModuleType) -> str:
    """Driver module -> experiment id ("repro.experiments.fig5" ->
    "fig5")."""
    return module.__name__.rsplit(".", 1)[-1]


def run_module(module: ModuleType,
               seed: int | None = None) -> ExperimentResult:
    """Run one driver with automatic tracing and provenance.

    Wraps ``module.run()`` in an ``experiment.<name>`` span and stamps
    seed/duration onto the result so its manifest records them.

    ``seed`` (or, when omitted, the process run seed) is the *base* run
    seed; the driver actually runs under a per-driver seed derived from
    it (:func:`repro.perf.seeds.derive_driver_seed`) — forwarded to
    drivers whose ``run`` accepts a ``seed`` and installed as the process
    run seed for the driver's duration so ``seeded_rng()`` users see it
    too.  Deriving per driver rather than sharing one stream is what
    makes serial and parallel (``run_all(jobs=N)``) runs byte-identical.
    """
    name = experiment_name(module)
    if seed is None:
        seed = current_seed()
    driver_seed = derive_driver_seed(seed, name)
    kwargs = {}
    if driver_seed is not None and "seed" in inspect.signature(
            module.run).parameters:
        kwargs["seed"] = driver_seed
    previous_seed = current_seed()
    if driver_seed is not None:
        set_run_seed(driver_seed)
    try:
        start = time.perf_counter()
        with span(f"experiment.{name}"):
            result = module.run(**kwargs)
        result.duration_s = time.perf_counter() - start
    finally:
        if driver_seed is not None:
            set_run_seed(previous_seed)
    result.seed = seed
    result.derived_seed = driver_seed
    inc("experiments.runs")
    return result


def run_all(output_dir: Path | str = DEFAULT_OUTPUT_DIR,
            verbose: bool = False,
            include_extensions: bool = False,
            seed: int | None = None,
            jobs: int = 1,
            cache: bool = False) -> list[ExperimentResult]:
    """Run every experiment, saving one CSV (+ manifest) per
    figure/table.

    Args:
        output_dir: destination for the CSV artifacts.
        verbose: print each rendering as it completes.
        include_extensions: also run the extension experiments.
        seed: RNG seed threaded to stochastic drivers and manifests.
        jobs: worker processes; above 1 the drivers fan out to a process
            pool (:func:`repro.perf.run_parallel`) with identical
            artifacts — per-driver seed derivation keeps the CSVs
            byte-identical to a serial run of the same seed.
        cache: route every driver through the content-addressed cache
            under ``<output_dir>/.cache``
            (:func:`repro.cache.run_and_save_cached`); unchanged
            drivers replay their stored results byte-for-byte.

    Returns:
        The results in paper order (extensions last).
    """
    modules = ALL_EXPERIMENTS + (EXTENSION_EXPERIMENTS
                                 if include_extensions else ())
    if jobs != 1:
        from repro.perf.parallel import run_parallel
        results = run_parallel(modules, output_dir=output_dir, jobs=jobs,
                               seed=seed, cache=cache)
        if verbose:
            for module, result in zip(modules, results):
                print(f"== {result.title} ==")
                print(module.render(result))
                print()
        return results
    results = []
    if cache:
        from repro.cache import run_and_save_cached, store_for
        store = store_for(output_dir)
    with span("experiments.run_all", n_experiments=len(modules)):
        for module in modules:
            if cache:
                result = run_and_save_cached(module, output_dir,
                                             seed=seed, store=store)
            else:
                result = run_module(module, seed=seed)
                result.save_csv(output_dir)
            if verbose:
                print(f"== {result.title} ==")
                print(module.render(result))
                print()
            results.append(result)
    return results


__all__ = ["ALL_EXPERIMENTS", "EXTENSION_EXPERIMENTS",
           "ExperimentResult", "experiment_name", "run_all", "run_module"]
