"""Fig. 6 reproduction: sensing-area fraction (volumetric efficiency proxy).

For each wireless SoC and n in 1024..8192 (step 1024), report
A_sensing / A_soc under both hypotheses.  Naive designs are flat; the
high-margin fraction climbs toward 1 (Eq. 4).
"""

from __future__ import annotations

from repro.core.comm_centric import DesignHypothesis, evaluate_comm_centric
from repro.core.scaling import scale_to_standard
from repro.core.socs import wireless_socs
from repro.experiments.base import ExperimentResult
from repro.experiments.report import ascii_plot, format_table
from repro.obs.metrics import set_gauge
from repro.obs.trace import span

#: The Fig. 6 x-axis.
CHANNEL_COUNTS = tuple(range(1024, 8192 + 1, 1024))

COLUMNS = ["soc", "hypothesis", "channels", "sensing_area_fraction"]


def run() -> ExperimentResult:
    """Regenerate both Fig. 6 panels."""
    rows = []
    with span("fig6.sweep", channel_counts=len(CHANNEL_COUNTS)):
        for record in wireless_socs():
            soc = scale_to_standard(record)
            for hypothesis in DesignHypothesis:
                for n in CHANNEL_COUNTS:
                    point = evaluate_comm_centric(soc, n, hypothesis)
                    rows.append({
                        "soc": soc.name,
                        "hypothesis": hypothesis.value,
                        "channels": n,
                        "sensing_area_fraction":
                            point.sensing_area_fraction,
                    })

    def fractions(hypothesis: str, n: int) -> list[float]:
        return [r["sensing_area_fraction"] for r in rows
                if r["hypothesis"] == hypothesis and r["channels"] == n]

    with span("fig6.summary"):
        summary = {
            "naive_flat": all(
                abs(a - b) < 1e-9
                for a, b in zip(fractions("naive", 1024),
                                fractions("naive", 8192))),
            "high_margin_monotone": all(
                a <= b + 1e-12
                for a, b in zip(fractions("high_margin", 1024),
                                fractions("high_margin", 8192))),
            "high_margin_mean_at_8192": sum(
                fractions("high_margin", 8192))
            / len(list(wireless_socs())),
        }
    set_gauge("fig6.high_margin_mean_at_8192",
              summary["high_margin_mean_at_8192"])
    return ExperimentResult(
        name="fig6",
        title="Fig. 6: sensing area / total area vs channel count",
        rows=rows, summary=summary, columns=COLUMNS)


def render(result: ExperimentResult) -> str:
    """ASCII chart of the high-margin fractions plus the full table."""
    series = {}
    for row in result.rows:
        if row["hypothesis"] != "high_margin":
            continue
        series.setdefault(row["soc"], []).append(
            (row["channels"], row["sensing_area_fraction"]))
    chart = ascii_plot(series, x_label="channels",
                       y_label="sensing area fraction")
    return chart + "\n\n" + format_table(result.rows, COLUMNS)


if __name__ == "__main__":
    outcome = run()
    print(outcome.title)
    print(render(outcome))
    print(outcome.save_csv())
