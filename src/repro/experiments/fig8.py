"""Fig. 8 reproduction: the #MACop / MACseq worked examples.

The paper's illustration of its MAC decomposition: a 4x3 by 3x4 matrix
multiplication (#MACop = 4, MACseq = 3) and a two-input-channel
convolution with kernel 4 and output size 4 (#MACop = 4, MACseq = 8).
Regenerated here from the same fMAC machinery the rest of the framework
uses, plus live layer-derived profiles showing the convention in action.
"""

from __future__ import annotations

from repro.dnn.layers import Conv1D, Dense
from repro.dnn.macs import fmac_conv_example, fmac_matmul_example
from repro.experiments.base import ExperimentResult
from repro.experiments.report import format_table
from repro.obs.metrics import set_gauge
from repro.obs.trace import span

COLUMNS = ["case", "mac_ops", "mac_seq", "total_macs"]


def run() -> ExperimentResult:
    """Regenerate the Fig. 8 examples and two live layer profiles."""
    with span("fig8.worked_examples"):
        matmul = fmac_matmul_example()
        conv = fmac_conv_example()
    with span("fig8.live_profiles"):
        dense_live = Dense(3, 4).mac_profile((3,))
        conv_live = Conv1D(2, 1, kernel_size=4).mac_profile((2, 7))
    rows = [
        {"case": "Fig. 8 matmul A(4x3) @ B(3x4)",
         "mac_ops": matmul.mac_ops, "mac_seq": matmul.mac_seq,
         "total_macs": matmul.total_macs},
        {"case": "Fig. 8 conv (2 in-ch, k=4, out=4)",
         "mac_ops": conv.mac_ops, "mac_seq": conv.mac_seq,
         "total_macs": conv.total_macs},
        {"case": "live Dense(3 -> 4) layer",
         "mac_ops": dense_live.mac_ops, "mac_seq": dense_live.mac_seq,
         "total_macs": dense_live.total_macs},
        {"case": "live Conv1D(2ch, k=4, len 7) layer",
         "mac_ops": conv_live.mac_ops, "mac_seq": conv_live.mac_seq,
         "total_macs": conv_live.total_macs},
    ]
    summary = {
        "matmul_matches_paper": (matmul.mac_ops, matmul.mac_seq) == (4, 3),
        "conv_matches_paper": (conv.mac_ops, conv.mac_seq) == (4, 8),
        "live_conv_consistent": (conv_live.mac_ops,
                                 conv_live.mac_seq) == (4, 8),
    }
    set_gauge("fig8.paper_match",
              float(summary["matmul_matches_paper"]
                    and summary["conv_matches_paper"]
                    and summary["live_conv_consistent"]))
    return ExperimentResult(
        name="fig8",
        title="Fig. 8: #MACop / MACseq decomposition examples",
        rows=rows, summary=summary, columns=COLUMNS)


def render(result: ExperimentResult) -> str:
    """Table of the decomposition examples."""
    return format_table(result.rows, COLUMNS)


if __name__ == "__main__":
    outcome = run()
    print(outcome.title)
    print(render(outcome))
    print(outcome.save_csv())
