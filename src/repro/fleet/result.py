"""Per-session and per-cohort results of a fleet run.

:class:`SessionResult` mirrors
:class:`repro.simulate.cursor_task.TaskOutcome` (the single-session
parity oracle's container) but adds the fleet dashboard quantities:
active time, Fitts index of difficulty, and the resulting bitrate.
Every derived metric is total/zero-safe — a session with no trials or
no hits reports 0.0, never NaN.

:func:`summarize_cohort` reduces per-session rows to the one dashboard
row per cohort the fleet artifacts carry (throughput, bitrate, and
degradation p50/p95/p99 via the nearest-rank
:func:`repro.obs.metrics.percentile`).  It is a pure function of the
rows, so the serial engine and the parent of a sharded run compute
byte-identical summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.fleet.spec import CohortSpec
from repro.obs.metrics import percentile

__all__ = ["SessionResult", "CohortResult", "SESSION_COLUMNS",
           "summarize_cohort"]

#: Per-session row keys, in emission order.  Every value is numeric,
#: so the rows pack as raw shared-memory columns on the pool transport
#: (:func:`repro.perf.shm.split_rows`).
SESSION_COLUMNS = ("session", "hits", "trials", "hit_rate",
                   "mean_time_to_target_s", "mean_path_efficiency",
                   "dropped_windows", "total_windows", "dropped_pct",
                   "time_active_s", "bitrate_bps")


@dataclass
class SessionResult:
    """Aggregate results of one closed-loop session inside a cohort.

    Attributes:
        session: index of the session within its cohort.
        hits: trials that acquired the target.
        trials: total trials run.
        times_to_target_s: acquisition times of successful trials.
        mean_path_efficiency: straight-line / travelled distance of
            hits (0.0 when no trial hit).
        dropped_windows: control windows lost to link faults.
        total_windows: control windows executed across all trials.
        difficulty_bits: Fitts index of difficulty of the task
            geometry, ``log2(2 * distance / radius)``.
        dt_s: control timestep (converts windows to active seconds).
    """

    session: int
    hits: int
    trials: int
    times_to_target_s: list[float] = field(default_factory=list)
    mean_path_efficiency: float = 0.0
    dropped_windows: int = 0
    total_windows: int = 0
    difficulty_bits: float = 0.0
    dt_s: float = 0.02

    @property
    def hit_rate(self) -> float:
        """Fraction of successful trials (0.0 on a zero-trial session)."""
        if self.trials == 0:
            return 0.0
        return self.hits / self.trials

    @property
    def mean_time_to_target_s(self) -> float:
        """Mean acquisition time over hits (0.0 when there are none)."""
        if not self.times_to_target_s:
            return 0.0
        return float(np.mean(self.times_to_target_s))

    @property
    def dropped_fraction(self) -> float:
        """Fraction of control windows lost (0.0 when none ran)."""
        if self.total_windows == 0:
            return 0.0
        return self.dropped_windows / self.total_windows

    @property
    def time_active_s(self) -> float:
        """Wall-clock control time the session actually ran."""
        return self.total_windows * self.dt_s

    @property
    def bitrate_bps(self) -> float:
        """Fitts throughput: acquired difficulty bits per active
        second (0.0 for an idle or hitless session)."""
        if self.total_windows == 0 or self.hits == 0:
            return 0.0
        return self.hits * self.difficulty_bits / self.time_active_s

    def to_row(self) -> dict[str, Any]:
        """Numeric row form (keys = :data:`SESSION_COLUMNS`)."""
        return {
            "session": self.session,
            "hits": self.hits,
            "trials": self.trials,
            "hit_rate": float(self.hit_rate),
            "mean_time_to_target_s": float(self.mean_time_to_target_s),
            "mean_path_efficiency": float(self.mean_path_efficiency),
            "dropped_windows": self.dropped_windows,
            "total_windows": self.total_windows,
            "dropped_pct": float(self.dropped_fraction * 100.0),
            "time_active_s": float(self.time_active_s),
            "bitrate_bps": float(self.bitrate_bps),
        }


@dataclass
class CohortResult:
    """One cohort's outcome: per-session rows plus the dashboard row.

    ``sessions`` is populated on the serial path and ``None`` when the
    cohort came back through the pool transport (only the numeric rows
    cross the pipe; the summary is recomputed from them, identically).
    """

    spec: CohortSpec
    seed: int | None
    rows: list[dict[str, Any]]
    sessions: list[SessionResult] | None = None

    def summary_row(self) -> dict[str, Any]:
        return summarize_cohort(self.spec, self.rows)


def _pct(values: list[float], pct: float) -> float:
    """Nearest-rank percentile, 0.0 on an empty sample."""
    if not values:
        return 0.0
    return float(percentile(values, pct))


def summarize_cohort(spec: CohortSpec,
                     rows: list[dict[str, Any]]) -> dict[str, Any]:
    """One fleet-dashboard row from a cohort's per-session rows."""
    hit_rates = [row["hit_rate"] for row in rows]
    times = [row["mean_time_to_target_s"] for row in rows
             if row["hits"] > 0]
    bitrates = [row["bitrate_bps"] for row in rows]
    dropped = [row["dropped_pct"] for row in rows]
    total_hits = sum(row["hits"] for row in rows)
    active_s = sum(row["time_active_s"] for row in rows)
    return {
        "cohort": spec.name,
        "decoder": spec.decoder,
        "sessions": len(rows),
        "trials": spec.n_trials,
        "drop_rate_pct": float(spec.drop_rate * 100.0),
        "hit_rate_mean": (float(np.mean(hit_rates))
                          if hit_rates else 0.0),
        "throughput_hits_per_s": (float(total_hits / active_s)
                                  if active_s > 0 else 0.0),
        "time_to_target_p50_s": _pct(times, 50),
        "time_to_target_p95_s": _pct(times, 95),
        "time_to_target_p99_s": _pct(times, 99),
        "bitrate_p50_bps": _pct(bitrates, 50),
        "bitrate_p95_bps": _pct(bitrates, 95),
        "bitrate_p99_bps": _pct(bitrates, 99),
        "dropped_pct_p50": _pct(dropped, 50),
        "dropped_pct_p95": _pct(dropped, 95),
        "dropped_pct_p99": _pct(dropped, 99),
    }
