"""Vectorized population-scale closed-loop fleet engine.

Runs a cohort of concurrent closed-loop sessions as batched NumPy
state: cursor positions, targets, per-channel tuning, and decoder
state live in ``(n_sessions, …)`` arrays stepped in lockstep, one
batched decode per control window instead of one Python loop per
session (:mod:`repro.fleet.decoders`).

Determinism contract (tests/fleet/):

* every cohort stream derives from ``(base_seed, "fleet", name)`` via
  :func:`repro.perf.seeds.derive_stream_seed`, so a cohort replays
  byte-identically regardless of scheduling — serial and
  pool-sharded runs produce identical rows;
* a 1-session cohort is **bit-exact** against
  :func:`repro.simulate.cursor_task.run_closed_loop_session` (the
  registered parity oracle): the batched math replays the scalar
  operation sequence per session slice, and the cohort's block
  random draws consume the generator in exactly the scalar order
  (preferred directions, calibration noise, per-session encode
  noise, targets, then one encode draw per active session per step);
* drop decisions come from a dedicated ``repro.fault`` stream
  (:func:`cohort_fault_seed`), so the session streams are untouched —
  ``drop_rate=0`` is byte-identical to a no-fault cohort (CRN), and
  the deterministic tuning-drift schedule adds no draws either.

Sharding: with ``jobs > 1``, :func:`run_fleet` ships each cohort to
the persistent :class:`repro.perf.pool.WarmPool` as a primitive task
dict and the per-session rows come back through shared memory
(:mod:`repro.perf.shm`).  Workers emit the same driver-scoped
telemetry a serial run would (adopted in submission order) and the
parent accounts transport in the metrics registry only — never the
event timeline — so ``events.jsonl`` stays byte-identical between
serial and ``--jobs N`` fleet runs.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.fault.injector import FaultInjector
from repro.fault.plan import FaultPlan, LinkFaults
from repro.fleet.decoders import make_batch_decoder, make_session_decoder
from repro.fleet.result import (
    SESSION_COLUMNS,
    CohortResult,
    SessionResult,
)
from repro.fleet.spec import CohortSpec, FleetSpec
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.events import driver_scope
from repro.obs.manifest import seeded_rng
from repro.obs.metrics import inc
from repro.obs.trace import span
from repro.perf.seeds import derive_stream_seed

__all__ = ["cohort_seed", "cohort_fault_seed", "simulate_cohort",
           "run_cohort", "run_cohort_task", "run_fleet"]


def cohort_seed(base_seed: int | None, name: str) -> int | None:
    """The seed of one cohort's session stream (None passes through)."""
    return derive_stream_seed(base_seed, "fleet", name)


def cohort_fault_seed(base_seed: int | None, name: str) -> int | None:
    """The seed of one cohort's fault (drop-decision) stream."""
    return derive_stream_seed(base_seed, "fleet", name, "fault")


def _make_drop_rng(spec: CohortSpec,
                   base_seed: int | None) -> np.random.Generator:
    """The cohort's dedicated link-fault stream, via ``repro.fault``.

    Always constructed — constructing (without drawing) must not
    perturb anything, which is what keeps a ``drop_rate=0`` cohort
    byte-identical to a no-fault cohort.
    """
    fault_seed = cohort_fault_seed(base_seed, spec.name)
    plan = FaultPlan(seed=0 if fault_seed is None else fault_seed,
                     link=LinkFaults(drop_rate=spec.drop_rate))
    return FaultInjector(plan).rng("link")


def _norm_rows(vectors: np.ndarray) -> np.ndarray:
    """Row norms via per-slice self dot products — bitwise equal to
    ``np.linalg.norm`` applied to each 2-vector row."""
    return np.sqrt(np.matmul(vectors[:, None, :],
                             vectors[:, :, None])[:, 0, 0])


def _simulate(spec: CohortSpec, rng: np.random.Generator,
              drop_rng: np.random.Generator | None,
              decoder_seed: int | None) -> list[SessionResult]:
    """The lockstep cohort simulation (see module docstring).

    ``drop_rng`` is only drawn from when ``spec.drop_rate > 0`` — the
    session ``rng`` stream is identical across drop rates (CRN).
    """
    user = spec.user()
    task = spec.task()
    n, c = spec.n_sessions, spec.n_channels
    t_len = spec.train_timesteps

    # Per-session tuning: one block draw, row-major — session i's
    # angles are exactly the draws its scalar session would make.
    angles = rng.uniform(0, 2 * np.pi, (n, c))
    preferred = np.stack([np.cos(angles), np.sin(angles)], axis=2)

    # Open-loop calibration: the AR(1) intent random walk, one noise
    # block for the whole cohort, stepped in lockstep over time.
    noise = rng.standard_normal((n, t_len - 1, 2))
    velocity = np.zeros((n, t_len, 2))
    for t in range(1, t_len):
        velocity[:, t] = (0.95 * velocity[:, t - 1]
                          + 0.1 * noise[:, t - 1])

    # Per-session encode + fit: the fits themselves are the scalar
    # code paths (that is what makes 1-session parity exact); the
    # encode of the whole calibration block is batched per session.
    decoders = []
    for i in range(n):
        drive = np.matmul(preferred[i],
                          velocity[i][:, :, None])[:, :, 0]
        rates = np.maximum(0.5 + user.gain * drive, 0.0)
        feats = rates + user.noise_rms * rng.standard_normal(
            (t_len, c))
        decoder = make_session_decoder(spec, decoder_seed, i)
        decoder.fit(velocity[i], feats)
        decoders.append(decoder)
    batch = make_batch_decoder(spec, decoders)

    t_angles = rng.uniform(0, 2 * np.pi, (n, spec.n_trials))
    targets_all = task.target_distance * np.stack(
        [np.cos(t_angles), np.sin(t_angles)], axis=2)

    max_steps = int(task.timeout_s / task.dt_s)
    hits = np.zeros(n, dtype=np.int64)
    dropped = np.zeros(n, dtype=np.int64)
    total = np.zeros(n, dtype=np.int64)
    times = np.full((n, spec.n_trials), np.nan)
    effs = np.full((n, spec.n_trials), np.nan)
    straight = task.target_distance - task.target_radius

    for trial in range(spec.n_trials):
        target = targets_all[:, trial]
        cursor = np.zeros((n, 2))
        pending = [np.zeros((n, 2))
                   for _ in range(spec.latency_steps)]
        travelled = np.zeros(n)
        held = np.zeros((n, 2))
        active = np.ones(n, dtype=bool)
        for step in range(max_steps):
            idx = np.flatnonzero(active)
            if idx.size == 0:
                break
            # Intent: straight at the target, speed-limited, with the
            # scalar guard for a cursor sitting exactly on the target.
            delta = target[idx] - cursor[idx]
            distance = _norm_rows(delta)
            moving = distance != 0.0
            safe = np.where(moving, distance, 1.0)
            speed = np.minimum(user.intent_speed, distance)
            intent = np.where(
                moving[:, None],
                delta / safe[:, None] * speed[:, None], 0.0)
            # Nonstationarity schedule: deterministic tuning-gain
            # drift over session time; drift 0 takes the exact base
            # code path (bitwise CRN across drift settings).
            if spec.tuning_drift_per_s != 0.0:
                elapsed_s = (trial * max_steps + step) * task.dt_s
                gain = user.gain * (
                    1.0 + spec.tuning_drift_per_s * elapsed_s)
            else:
                gain = user.gain
            drive = np.matmul(preferred[idx],
                              intent[:, :, None])[:, :, 0]
            rates = np.maximum(0.5 + gain * drive, 0.0)
            # Compacted draw: only active sessions consume encode
            # noise, matching the scalar early-break draw count.
            feature = rates + user.noise_rms * rng.standard_normal(
                (idx.size, c))
            total[idx] += 1
            decoded = batch.decode(feature, idx)
            if drop_rng is not None and spec.drop_rate > 0.0:
                lost = drop_rng.random(idx.size) < spec.drop_rate
                dropped[idx] += lost
                command = np.where(lost[:, None], held[idx], decoded)
            else:
                command = decoded
            held[idx] = command
            queued = np.zeros((n, 2))
            queued[idx] = command
            pending.append(queued)
            applied = pending.pop(0)[idx]
            move = applied * task.dt_s * 10.0
            travelled[idx] += _norm_rows(move)
            cursor[idx] += move
            reached = _norm_rows(target[idx] - cursor[idx])
            hit = reached <= task.target_radius
            if np.any(hit):
                hidx = idx[hit]
                hits[hidx] += 1
                times[hidx, trial] = (step + 1) * task.dt_s
                good = travelled[hidx] > 0
                effs[hidx[good], trial] = (straight
                                           / travelled[hidx][good])
                active[hidx] = False

    difficulty = float(np.log2(2.0 * task.target_distance
                               / task.target_radius))
    sessions = []
    for i in range(n):
        tmask = ~np.isnan(times[i])
        emask = ~np.isnan(effs[i])
        sessions.append(SessionResult(
            session=i,
            hits=int(hits[i]),
            trials=spec.n_trials,
            times_to_target_s=[float(v) for v in times[i][tmask]],
            mean_path_efficiency=(float(np.mean(effs[i][emask]))
                                  if bool(emask.any()) else 0.0),
            dropped_windows=int(dropped[i]),
            total_windows=int(total[i]),
            difficulty_bits=difficulty,
            dt_s=task.dt_s))
    return sessions


def simulate_cohort(spec: CohortSpec,
                    base_seed: int | None = None) -> list[SessionResult]:
    """Simulate one cohort; returns its per-session results.

    All randomness flows from ``cohort_seed(base_seed, spec.name)``
    (session stream) and ``cohort_fault_seed`` (drop stream) — the
    replay contract of the fleet.
    """
    seed = cohort_seed(base_seed, spec.name)
    return _simulate(spec, seeded_rng(seed),
                     _make_drop_rng(spec, base_seed), seed)


def run_cohort(spec: CohortSpec,
               base_seed: int | None = None) -> CohortResult:
    """Simulate one cohort under fleet telemetry scope."""
    with driver_scope("fleet"):
        with span("fleet.cohort", cohort=spec.name,
                  decoder=spec.decoder, sessions=spec.n_sessions):
            sessions = simulate_cohort(spec, base_seed)
        inc("fleet.sessions", spec.n_sessions)
    return CohortResult(spec=spec,
                        seed=cohort_seed(base_seed, spec.name),
                        rows=[s.to_row() for s in sessions],
                        sessions=sessions)


def run_cohort_task(task: dict[str, Any]):
    """Worker-side entry for one sharded cohort task.

    Called by the warm-pool worker loop for ``kind="fleet_cohort"``
    tasks; returns an ExperimentResult whose rows are the cohort's
    per-session numeric rows, so the shared-memory transport packs
    them as raw columns.
    """
    from repro.experiments.base import ExperimentResult

    spec = CohortSpec.from_dict(task["cohort"])
    cohort = run_cohort(spec, task["seed"])
    return ExperimentResult(
        name=task["name"],
        title=f"fleet cohort {spec.name}",
        rows=cohort.rows,
        summary={"cohort": spec.name, "sessions": spec.n_sessions},
        columns=list(SESSION_COLUMNS))


def _account_transport(name: str, stats: dict[str, Any]) -> None:
    """Transport accounting for fleet shards: metrics registry only.

    Unlike the experiment engine, nothing is emitted to the event
    timeline — the fleet contract is that serial and sharded runs
    produce byte-identical ``events.jsonl``, so the parent adds no
    events of its own.
    """
    if not _metrics.metrics_enabled():
        return
    registry = _metrics.REGISTRY
    registry.inc("perf.transport.bytes", stats["total_bytes"])
    registry.inc(f"perf.transport.mode.{stats['mode']}")
    registry.inc("fleet.cohorts_sharded")
    registry.set_gauge(f"perf.transport.bytes.{name}",
                       stats["total_bytes"])


def _run_fleet_sharded(fleet: FleetSpec, base_seed: int | None,
                       jobs: int,
                       timeout_s: float | None) -> list[CohortResult]:
    """Shard cohorts across the warm pool; collect in cohort order."""
    from repro.perf import shm as _shm
    from repro.perf.parallel import _merge_payload
    from repro.perf.pool import get_pool

    trace_on = _trace.tracing_enabled()
    metrics_on = _metrics.metrics_enabled()
    events_on = _events.events_enabled()
    pool = get_pool(jobs)

    def make_task(cohort: CohortSpec) -> dict[str, Any]:
        return {"kind": "fleet_cohort",
                "name": f"fleet:{cohort.name}",
                "cohort": cohort.to_dict(),
                "seed": base_seed,
                "plan": None, "attempt": 0, "cache": False,
                "trace_on": trace_on, "metrics_on": metrics_on,
                "events_on": events_on,
                "shm_min_bytes": _shm.SHM_MIN_BYTES}

    task_ids = [pool.submit(make_task(cohort))
                for cohort in fleet.cohorts]
    results = []
    for cohort, task_id in zip(fleet.cohorts, task_ids):
        header = pool.wait(task_id, timeout_s=timeout_s)
        payload = _shm.unpack_payload(header)
        pool.release(task_id)
        _merge_payload(payload)
        _account_transport(payload["name"], header["stats"])
        results.append(CohortResult(
            spec=cohort, seed=cohort_seed(base_seed, cohort.name),
            rows=payload["result"].rows, sessions=None))
    return results


def run_fleet(fleet: FleetSpec, base_seed: int | None = None,
              jobs: int = 1,
              timeout_s: float | None = None) -> list[CohortResult]:
    """Run every cohort of a fleet; ``jobs > 1`` shards cohorts
    across the persistent warm-worker pool.

    Returns cohort results in fleet order.  Rows — and, with events
    enabled, the emitted timeline — are byte-identical between serial
    and sharded execution (see module docstring).
    """
    if jobs <= 1:
        return [run_cohort(spec, base_seed) for spec in fleet.cohorts]
    return _run_fleet_sharded(fleet, base_seed, jobs, timeout_s)
