"""Cohort and fleet specifications for population-scale simulation.

A :class:`CohortSpec` is the unit of vectorized execution *and* the
unit of work sharded across the warm-worker pool: every field is a
plain primitive so a spec crosses the worker pipe as a dict
(:meth:`CohortSpec.to_dict`), and the cohort's random streams are
derived from the spec *name* alone (:mod:`repro.fleet.engine`), so a
cohort replays byte-identically no matter which worker runs it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Sequence

from repro.simulate.cursor_task import CursorTask, SimulatedUser

__all__ = ["CohortSpec", "FleetSpec", "DECODER_FAMILIES"]

#: Decoder families a cohort may select (satellite axis of the fleet).
DECODER_FAMILIES = ("kalman", "wiener", "dnn")


@dataclass(frozen=True)
class CohortSpec:
    """One homogeneous cohort of concurrent closed-loop sessions.

    Attributes:
        name: unique cohort label; seeds every cohort stream
            (``derive_stream_seed(base, "fleet", name)``), so renaming
            a cohort re-rolls it and duplicating a name is an error
            (:class:`FleetSpec` rejects it).
        n_sessions: concurrent sessions stepped in lockstep.
        decoder: one of :data:`DECODER_FAMILIES`.
        n_trials: center-out trials per session.
        latency_steps: control-loop delay in timesteps.
        train_timesteps: open-loop calibration length per session.
        drop_rate: per-window feature-packet loss probability, drawn
            from a dedicated `repro.fault` stream (CRN: the session
            streams are untouched, so ``drop_rate=0`` is byte-identical
            to a no-fault cohort).
        tuning_drift_per_s: deterministic nonstationarity schedule —
            the encoding gain scales by ``1 + drift * t`` over the
            session (no extra random draws, so CRN holds across drift
            settings too).  ``0.0`` takes the exact base code path.
        n_channels / gain / noise_rms / intent_speed: simulated-user
            tuning (see :class:`repro.simulate.cursor_task.SimulatedUser`).
        target_radius / target_distance / dt_s / timeout_s: task
            geometry and timing (see
            :class:`repro.simulate.cursor_task.CursorTask`).
        n_lags: Wiener filter history length.
        hidden / epochs: DNN decoder width and training epochs.
    """

    name: str
    n_sessions: int = 1
    decoder: str = "kalman"
    n_trials: int = 8
    latency_steps: int = 0
    train_timesteps: int = 240
    drop_rate: float = 0.0
    tuning_drift_per_s: float = 0.0
    n_channels: int = 16
    gain: float = 1.5
    noise_rms: float = 0.3
    intent_speed: float = 1.0
    target_radius: float = 0.5
    target_distance: float = 4.0
    dt_s: float = 0.02
    timeout_s: float = 8.0
    n_lags: int = 5
    hidden: int = 16
    epochs: int = 3

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("cohort needs a non-empty name")
        if self.n_sessions < 1:
            raise ValueError("cohort needs at least one session")
        if self.decoder not in DECODER_FAMILIES:
            raise ValueError(f"unknown decoder family {self.decoder!r}; "
                             f"expected one of {DECODER_FAMILIES}")
        if self.n_trials < 1:
            raise ValueError("need at least one trial")
        if self.latency_steps < 0:
            raise ValueError("latency must be non-negative")
        if self.train_timesteps < 2:
            raise ValueError("calibration needs at least two timesteps")
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError("drop_rate must lie in [0, 1)")
        if self.n_lags < 1 or self.hidden < 1 or self.epochs < 1:
            raise ValueError("n_lags, hidden, and epochs must be "
                             "positive")

    def user(self) -> SimulatedUser:
        """The cohort's simulated-user configuration (validated)."""
        return SimulatedUser(n_channels=self.n_channels, gain=self.gain,
                             noise_rms=self.noise_rms,
                             intent_speed=self.intent_speed)

    def task(self) -> CursorTask:
        """The cohort's task geometry and timing (validated)."""
        return CursorTask(target_radius=self.target_radius,
                          target_distance=self.target_distance,
                          dt_s=self.dt_s, timeout_s=self.timeout_s)

    def to_dict(self) -> dict[str, Any]:
        """Primitive dict form — safe to cross the worker pipe."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CohortSpec":
        """Rebuild (and re-validate) a spec from its dict form."""
        return cls(**data)


@dataclass(frozen=True)
class FleetSpec:
    """An ordered collection of cohorts run under one base seed."""

    cohorts: tuple[CohortSpec, ...] = ()

    def __init__(self, cohorts: Sequence[CohortSpec]) -> None:
        object.__setattr__(self, "cohorts", tuple(cohorts))
        if not self.cohorts:
            raise ValueError("a fleet needs at least one cohort")
        names = [cohort.name for cohort in self.cohorts]
        if len(set(names)) != len(names):
            raise ValueError("cohort names must be unique (they seed "
                             f"the cohort streams): {names}")

    @property
    def n_sessions(self) -> int:
        """Total sessions across every cohort."""
        return sum(cohort.n_sessions for cohort in self.cohorts)
