"""Population-scale closed-loop fleet engine.

Tens of thousands of concurrent closed-loop BCI sessions simulated as
batched NumPy state, grouped into cohorts (per-cohort decoder family,
drop rate, and nonstationarity schedule), with fleet-level dashboard
artifacts instead of single-session CSVs.  A 1-session cohort is
bit-exact against the single-session oracle
:func:`repro.simulate.cursor_task.run_closed_loop_session`.
"""

from repro.fleet.engine import (
    cohort_fault_seed,
    cohort_seed,
    run_cohort,
    run_cohort_task,
    run_fleet,
    simulate_cohort,
)
from repro.fleet.result import (
    SESSION_COLUMNS,
    CohortResult,
    SessionResult,
    summarize_cohort,
)
from repro.fleet.spec import DECODER_FAMILIES, CohortSpec, FleetSpec

__all__ = [
    "CohortSpec",
    "FleetSpec",
    "DECODER_FAMILIES",
    "SessionResult",
    "CohortResult",
    "SESSION_COLUMNS",
    "summarize_cohort",
    "cohort_seed",
    "cohort_fault_seed",
    "simulate_cohort",
    "run_cohort",
    "run_cohort_task",
    "run_fleet",
]
