"""Decoder construction and batched closed-loop stepping per family.

The fleet engine fits one decoder per session with the exact scalar
``fit`` paths (so a 1-session cohort matches the single-session oracle
bit-for-bit), then *stacks* the fitted models into ``(n_sessions, …)``
arrays and steps all sessions through one batched decode per control
window:

* Kalman — the per-window decode from the reset state collapses to a
  constant affine operator per session, precomputed by
  :func:`repro.decoders.kalman.closed_loop_gain_batch`;
* Wiener — one zero-history design row per session applied by
  :func:`repro.decoders.wiener.decode_step_batch`;
* DNN — per-layer weight stacks driven through batched matmuls and
  elementwise activations, replaying ``Dense``/``ReLU``/``Tanh``
  forward math slice-by-slice.
"""

from __future__ import annotations

import numpy as np

from repro.decoders.dnn_decoder import DnnDecoder
from repro.decoders.kalman import KalmanFilterDecoder, closed_loop_gain_batch
from repro.decoders.wiener import WienerFilterDecoder, decode_step_batch
from repro.dnn.layers import Dense, ReLU, Tanh
from repro.dnn.network import Network
from repro.fleet.spec import CohortSpec
from repro.obs.manifest import seeded_rng
from repro.perf.seeds import derive_stream_seed

__all__ = ["DnnCursorDecoder", "make_session_decoder",
           "make_batch_decoder"]


class DnnCursorDecoder:
    """Session-protocol adapter around :class:`DnnDecoder`.

    The closed-loop session calls ``fit(states, observations)`` with no
    generator, but a DNN needs one for initialization and minibatch
    order — so the adapter carries its own derived seed and builds a
    fresh ``Dense → Tanh → Dense`` velocity readout at fit time.  Both
    the fleet engine and the single-session parity oracle construct it
    through :func:`make_session_decoder`, which is what keeps the DNN
    cohort bit-exact against ``run_closed_loop_session``.
    """

    def __init__(self, seed: int | None = None, hidden: int = 16,
                 epochs: int = 3, batch_size: int = 32,
                 learning_rate: float = 0.05) -> None:
        self.seed = seed
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self._decoder: DnnDecoder | None = None

    @property
    def fitted(self) -> bool:
        return self._decoder is not None and self._decoder.fitted

    def fit(self, states: np.ndarray, observations: np.ndarray) -> None:
        """Build and train the readout network on calibration data."""
        states = np.asarray(states, dtype=float)
        observations = np.asarray(observations, dtype=float)
        n_features = observations.shape[1]
        n_states = states.shape[1]
        rng = seeded_rng(self.seed)
        network = Network(
            [Dense(n_features, self.hidden, rng=rng), Tanh(),
             Dense(self.hidden, n_states, rng=rng)],
            input_shape=(n_features,), name="fleet_mlp")
        self._decoder = DnnDecoder(network, epochs=self.epochs,
                                   batch_size=self.batch_size,
                                   learning_rate=self.learning_rate)
        self._decoder.fit(observations, states, rng)

    def decode(self, observations: np.ndarray) -> np.ndarray:
        if self._decoder is None:
            raise RuntimeError("decoder must be fitted before decoding")
        return self._decoder.decode(observations)


def make_session_decoder(spec: CohortSpec, cohort_seed: int | None,
                         index: int):
    """A fresh, unfitted decoder for session ``index`` of a cohort.

    Shared between the fleet engine and the parity tests so both sides
    of the oracle comparison hold the identical model (the DNN family
    derives a per-session substream from the cohort seed; the linear
    families are fully determined by the calibration data).
    """
    if spec.decoder == "kalman":
        return KalmanFilterDecoder()
    if spec.decoder == "wiener":
        return WienerFilterDecoder(n_lags=spec.n_lags)
    if spec.decoder == "dnn":
        seed = derive_stream_seed(cohort_seed, "dnn", str(index))
        return DnnCursorDecoder(seed=seed, hidden=spec.hidden,
                                epochs=spec.epochs)
    raise ValueError(f"unknown decoder family {spec.decoder!r}")


class _KalmanBatch:
    """Stacked closed-loop Kalman stepping (constant affine operator)."""

    def __init__(self, decoders) -> None:
        a = np.stack([decoder.A for decoder in decoders])
        w = np.stack([decoder.W for decoder in decoders])
        h = np.stack([decoder.H for decoder in decoders])
        q = np.stack([decoder.Q for decoder in decoders])
        self.gain, self.x_prior, self.hx_prior = closed_loop_gain_batch(
            a, w, h, q)

    def decode(self, features: np.ndarray,
               idx: np.ndarray) -> np.ndarray:
        innovation = (features - self.hx_prior[idx])[:, :, None]
        return self.x_prior[idx] + np.matmul(self.gain[idx],
                                             innovation)[:, :, 0]


class _WienerBatch:
    """Stacked zero-history Wiener stepping."""

    def __init__(self, decoders, n_lags: int) -> None:
        self.weights = np.stack([decoder.weights
                                 for decoder in decoders])
        self.n_lags = n_lags

    def decode(self, features: np.ndarray,
               idx: np.ndarray) -> np.ndarray:
        return decode_step_batch(self.weights[idx], features,
                                 self.n_lags)


class _DnnBatch:
    """Stacked per-layer MLP forward (batched matmul per Dense)."""

    def __init__(self, decoders) -> None:
        layers = decoders[0]._decoder.network.layers
        plan = []
        for position, layer in enumerate(layers):
            if isinstance(layer, Dense):
                weight = np.stack(
                    [decoder._decoder.network.layers[position].weight
                     for decoder in decoders])
                bias = np.stack(
                    [decoder._decoder.network.layers[position].bias
                     for decoder in decoders])
                plan.append(("dense", weight, bias))
            elif isinstance(layer, ReLU):
                plan.append(("relu", None, None))
            elif isinstance(layer, Tanh):
                plan.append(("tanh", None, None))
            else:
                raise TypeError(
                    f"cannot batch layer {type(layer).__name__}; the "
                    "fleet DNN path supports Dense/ReLU/Tanh stacks")
        self.plan = plan

    def decode(self, features: np.ndarray,
               idx: np.ndarray) -> np.ndarray:
        x = features[:, None, :]
        for kind, weight, bias in self.plan:
            if kind == "dense":
                x = (np.matmul(x, np.swapaxes(weight[idx], 1, 2))
                     + bias[idx][:, None, :])
            elif kind == "relu":
                x = np.where(x > 0, x, 0.0)
            else:
                x = np.tanh(x)
        return x[:, 0, :]


def make_batch_decoder(spec: CohortSpec, decoders):
    """Stack per-session fitted decoders into one batched stepper.

    The returned object exposes ``decode(features, idx) -> (len(idx),
    k)`` where ``features`` holds one window for each *active* session
    and ``idx`` selects those sessions' models from the stacks.
    """
    if spec.decoder == "kalman":
        return _KalmanBatch(decoders)
    if spec.decoder == "wiener":
        return _WienerBatch(decoders, spec.n_lags)
    if spec.decoder == "dnn":
        return _DnnBatch(decoders)
    raise ValueError(f"unknown decoder family {spec.decoder!r}")
