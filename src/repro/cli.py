"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — list the Table 1 designs.
* ``evaluate [NAMES...]`` — regenerate paper tables/figures (default all),
  printing each rendering and writing CSVs + run manifests; ``--jobs N``
  fans the drivers out to a process pool with identical artifacts;
  ``--cache`` replays unchanged drivers from the content-addressed
  result cache (``<output-dir>/.cache``, see :mod:`repro.cache`);
  ``--dag`` routes ported drivers through their declarative stage graph
  (:mod:`repro.dag`) with byte-identical artifacts — ``--jobs`` then
  parallelizes graph nodes and ``--cache`` becomes stage-granular.
* ``dag show EXPERIMENT`` — print one experiment's declarative stage
  graph: nodes, dataflow, dependencies, per-node policy (docs/DAG.md).
* ``fleet`` — run the population-scale closed-loop fleet
  (:mod:`repro.fleet`): vectorized cohorts with per-cohort decoder
  family, link loss, and tuning drift, written as the cohort dashboard
  CSV; ``--jobs N`` shards cohorts across the warm worker pool with
  byte-identical artifacts.
* ``assess SOC`` — scale one Table 1 design to 1024 channels and print its
  safety report and headline feasibility numbers.
* ``explore SOC`` — run the full strategy comparison for one design.
* ``roadmap SOC`` — years until the channel-count trend overtakes each
  strategy's frontier.
* ``validate`` — score every machine-checkable paper claim against the
  regenerated results (exit code 0 when all pass).
* ``profile EXPERIMENT`` — run one experiment (or ``all``, optionally
  with ``--jobs``) under the span tracer and print the nested span tree
  plus the top-N hotspots; worker-process spans are merged into the tree.
* ``analyze`` — run the AST invariant linter (:mod:`repro.analysis`)
  over ``src/`` and ``tests/``; non-zero exit on findings not covered by
  the committed baseline.  ``--format json``/``--output`` for machine
  reports, ``--update-baseline`` to grandfather the current findings.
* ``cache {stats,clear,gc}`` — inspect or prune the content-addressed
  result cache under ``<output-dir>/.cache``.
* ``chaos`` — run the fault-injection drills (link, cache) plus the
  ``fault_sweep`` degradation experiment under a seeded
  :class:`repro.fault.FaultPlan`, writing ``fault_log.json`` +
  ``chaos_report.json``; byte-identical for a fixed ``--seed``
  (docs/ROBUSTNESS.md).
* ``obs {view,query,diff,critical-path,bench-gate,report}`` — run
  telemetry analytics (:mod:`repro.obs.analyze`): per-driver census and
  per-stage rollups of an ``events.jsonl`` timeline, event queries,
  run-vs-run diffs (exit 1 on deltas), structural/timed critical paths,
  the perf-trajectory regression gate over
  ``results/bench_history.jsonl`` (:mod:`repro.obs.bench`, exit 1 on
  >20 % kernel slowdown), and the markdown/HTML safety-envelope
  dashboard (:mod:`repro.obs.report`); see docs/OBSERVABILITY.md.

Fault flags on ``evaluate``: ``--fault-plan PLAN.json`` injects the
plan's faults and applies its retry policy; ``--max-retries N`` bounds
the per-driver retry budget (failed drivers degrade to recorded-failure
rows instead of killing the run).

Global observability flags (valid after any subcommand):

* ``--trace`` — record spans and write a JSON trace
  (``<output-dir>/trace.json`` for ``evaluate``, ``results/trace.json``
  otherwise).
* ``--metrics`` — collect counters/gauges/histograms and print the
  snapshot after the command finishes.
* ``--events`` — record the deterministic run timeline and write it as
  ``<output-dir>/events.jsonl`` (implies ``--trace --metrics``);
  byte-identical for a fixed seed, serial or ``--jobs N``.
* ``--quiet`` — suppress per-experiment renderings (artifacts are still
  written).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import obs
from repro.core.explorer import explore
from repro.core.scaling import scale_to_standard
from repro.core.socs import TABLE1, soc_by_number
from repro.experiments import (
    ALL_EXPERIMENTS,
    EXTENSION_EXPERIMENTS,
    experiment_name,
    is_recorded_failure,
    render_result,
    run_module,
    run_module_resilient,
)
from repro.experiments.report import DEFAULT_OUTPUT_DIR, format_table
from repro.thermal.budget import assess as thermal_assess
from repro.units import to_mbps, to_mm2, to_mw


def _known_experiments() -> dict[str, object]:
    """Experiment id -> driver module, extensions included."""
    return {experiment_name(module): module
            for module in ALL_EXPERIMENTS + EXTENSION_EXPERIMENTS}


def _jobs_error(jobs: int) -> bool:
    """Shared ``--jobs`` validation: print the error and return True
    when the value is invalid (negative)."""
    if jobs < 0:
        print("--jobs must be positive (or 0 for all CPUs)",
              file=sys.stderr)
        return True
    return False


def _print_cache_summary(results: list) -> None:
    """One-line driver hit/miss summary for cached runs."""
    hits = sum(1 for result in results
               if result.cache_info and result.cache_info.get("hit"))
    print(f"cache: {hits}/{len(results)} driver hits")


def _cmd_list(_: argparse.Namespace) -> int:
    rows = [{"number": r.number, "name": r.name,
             "channels": r.n_channels, "wireless": r.wireless}
            for r in TABLE1]
    print(format_table(rows))
    return 0


def _print_fault_summary(injector, results: list,
                         output_dir) -> None:
    """Counters line + fault-log path for fault-aware runs."""
    failures = [result.name for result in results
                if is_recorded_failure(result)]
    counters = injector.counters
    print(f"faults: injected={counters['injected']} "
          f"recovered={counters['recovered']} "
          f"failed={counters['failed']}")
    if failures:
        print(f"recorded failures: {', '.join(failures)}")
    log_path = injector.write_log(Path(output_dir) / "fault_log.json")
    print(f"fault log written to {log_path}")


def _cmd_evaluate(args: argparse.Namespace) -> int:
    wanted = set(args.names) if args.names else None
    # Extensions are addressable by name; the default (no names) run
    # stays the paper artifacts only.
    known = _known_experiments()
    if wanted:
        unknown = wanted - set(known)
        if unknown:
            print(f"unknown experiments: {sorted(unknown)}; "
                  f"available: {sorted(known)}", file=sys.stderr)
            return 2
    default = {experiment_name(module) for module in ALL_EXPERIMENTS}
    selected = [(name, module) for name, module in known.items()
                if (name in wanted if wanted else name in default)]
    if _jobs_error(args.jobs):
        return 2
    if args.max_retries < 0:
        print("--max-retries must be non-negative", file=sys.stderr)
        return 2
    fault_plan = None
    injector = None
    max_retries = args.max_retries
    backoff_s = 0.25
    timeout_s = None
    if args.fault_plan:
        from repro.fault import FaultInjector, FaultPlan
        try:
            fault_plan = FaultPlan.from_file(args.fault_plan)
        except (OSError, ValueError) as error:
            print(f"evaluate: bad fault plan: {error}", file=sys.stderr)
            return 2
        injector = FaultInjector(fault_plan)
        max_retries = fault_plan.retry.max_retries
        backoff_s = fault_plan.retry.backoff_s
        timeout_s = fault_plan.retry.timeout_s
    if args.dag:
        return _evaluate_dag(args, selected, fault_plan, injector,
                             max_retries, backoff_s, timeout_s)
    if args.jobs != 1 and len(selected) > 1:
        from repro.perf import run_parallel
        results = run_parallel([module for _, module in selected],
                               output_dir=args.output_dir, jobs=args.jobs,
                               seed=args.seed, cache=args.cache,
                               max_retries=max_retries,
                               backoff_s=backoff_s, timeout_s=timeout_s,
                               fault_plan=fault_plan, injector=injector)
        if not args.quiet:
            for (_, module), result in zip(selected, results):
                print(f"== {result.title} ==")
                print(render_result(module, result))
                print()
        if args.cache:
            _print_cache_summary(results)
        if injector is not None:
            _print_fault_summary(injector, results, args.output_dir)
        return 0
    runner = None
    if args.cache:
        from repro.cache import run_and_save_cached, store_for
        store = store_for(args.output_dir)

        def runner(module, seed=None):
            return run_and_save_cached(module, args.output_dir,
                                       seed=seed, store=store)
    results = []
    for _, module in selected:
        result = run_module_resilient(
            module, seed=args.seed, max_retries=max_retries,
            backoff_s=backoff_s, fault_plan=fault_plan,
            injector=injector, runner=runner)
        if not args.cache or is_recorded_failure(result):
            result.save_csv(args.output_dir)
        elif result.fault_info is not None:
            result.save_manifest(args.output_dir)
        results.append(result)
        if not args.quiet:
            print(f"== {result.title} ==")
            print(render_result(module, result))
            print()
    if args.cache:
        _print_cache_summary(results)
    if injector is not None:
        _print_fault_summary(injector, results, args.output_dir)
    return 0


def _evaluate_dag(args: argparse.Namespace, selected: list,
                  fault_plan, injector, max_retries: int,
                  backoff_s: float, timeout_s: float | None) -> int:
    """``evaluate --dag``: run each driver through its declarative
    graph (``--jobs`` = node-level parallelism; artifacts byte-identical
    to the imperative path)."""
    from repro.dag import has_graph, run_module_dag

    store = None
    if args.cache:
        from repro.cache import store_for
        store = store_for(args.output_dir)

    def dag_runner(module, seed=None):
        if not has_graph(module):
            # Drivers without graphs keep their imperative path.
            return run_module(module, seed=seed)
        return run_module_dag(module, seed=seed, jobs=args.jobs,
                              store=store, fault_plan=fault_plan,
                              injector=injector,
                              max_retries=max_retries,
                              backoff_s=backoff_s, timeout_s=timeout_s)

    results = []
    for _, module in selected:
        # Node-level retries happen inside the scheduler; a node that
        # exhausts its budget raises DagNodeError, which degrades here
        # (max_retries=0: no whole-graph reruns) to the recorded-failure
        # row naming the failed node.  The injector is not passed down —
        # the scheduler already accounts the failure.
        result = run_module_resilient(module, seed=args.seed,
                                      max_retries=0,
                                      backoff_s=backoff_s,
                                      runner=dag_runner)
        result.save_csv(args.output_dir)
        results.append(result)
        if not args.quiet:
            print(f"== {result.title} ==")
            print(render_result(module, result))
            print()
    if injector is not None:
        _print_fault_summary(injector, results, args.output_dir)
    return 0


def _cmd_dag_show(args: argparse.Namespace) -> int:
    from repro.dag import GraphError, graph_for, has_graph

    known = _known_experiments()
    graphed = sorted(name for name, module in known.items()
                     if has_graph(module))
    if args.experiment not in known:
        print(f"unknown experiment {args.experiment!r}; "
              f"graphs available: {graphed}", file=sys.stderr)
        return 2
    module = known[args.experiment]
    if not has_graph(module):
        print(f"{args.experiment} has no experiment graph (imperative "
              f"driver); graphs available: {graphed}", file=sys.stderr)
        return 2
    try:
        graph = graph_for(module)
    except GraphError as error:
        print(f"dag: {error}", file=sys.stderr)
        return 2
    print(graph.render())
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments import fault_sweep
    from repro.fault import (FaultInjector, FaultPlan,
                             default_chaos_plan, run_chaos_drills)

    if args.fault_plan:
        try:
            plan = FaultPlan.from_file(args.fault_plan)
        except (OSError, ValueError) as error:
            print(f"chaos: bad fault plan: {error}", file=sys.stderr)
            return 2
    else:
        plan = default_chaos_plan(seed=args.seed)
    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    injector = FaultInjector(plan)

    drill_report = run_chaos_drills(injector, output_dir)
    result = run_module(fault_sweep, seed=args.seed)
    result.fault_info = dict(injector.counters)
    result.save_csv(output_dir)

    report_path = output_dir / "chaos_report.json"
    report_path.write_text(
        json.dumps(drill_report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    log_path = injector.write_log(output_dir / "fault_log.json")

    if not args.quiet:
        print(f"== chaos drills (plan seed {plan.seed}) ==")
        print(json.dumps(drill_report, indent=2, sort_keys=True))
        print()
        print(f"== {result.title} ==")
        print(fault_sweep.render(result))
        print()
    counters = injector.counters
    print(f"faults: injected={counters['injected']} "
          f"recovered={counters['recovered']} "
          f"failed={counters['failed']}")
    print(f"chaos report written to {report_path}")
    print(f"fault log written to {log_path}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import time

    from repro.experiments import fleet as fleet_driver
    from repro.obs.events import driver_scope
    from repro.perf.seeds import derive_driver_seed

    if _jobs_error(args.jobs):
        return 2
    try:
        spec = fleet_driver.default_fleet(sessions=args.sessions,
                                          decoder=args.decoder)
    except ValueError as error:
        print(f"fleet: {error}", file=sys.stderr)
        return 2
    derived = derive_driver_seed(args.seed, "fleet")
    with driver_scope("fleet"):
        start = time.perf_counter()
        result = fleet_driver.run_spec(spec, base_seed=derived,
                                       jobs=args.jobs)
        result.duration_s = time.perf_counter() - start
    result.seed = args.seed
    result.derived_seed = derived
    path = result.save_csv(args.output_dir)
    if not args.quiet:
        print(f"== {result.title} ==")
        print(fleet_driver.render(result))
        print(f"fleet dashboard written to {path}")
    return 0


def _cmd_assess(args: argparse.Namespace) -> int:
    try:
        record = soc_by_number(args.soc)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    soc = scale_to_standard(record)
    print(f"{soc.name} scaled to {soc.n_channels} channels:")
    print(f"  area  {to_mm2(soc.area_m2):8.1f} mm^2")
    print(f"  power {to_mw(soc.power_w):8.2f} mW")
    print(f"  raw throughput {to_mbps(soc.sensing_throughput_bps()):.1f} "
          f"Mbps")
    print(f"  {thermal_assess(soc.power_w, soc.area_m2).describe()}")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    try:
        record = soc_by_number(args.soc)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    if not record.wireless:
        print(f"{record.name} is wired; the strategy exploration targets "
              "wireless designs (SoCs 1-8)", file=sys.stderr)
        return 2
    soc = scale_to_standard(record)
    report = explore(soc, target_channels=args.channels)
    rows = [{"strategy": o.strategy,
             "max_channels": o.max_channels,
             f"ratio@{args.channels}": o.power_ratio_at_target,
             "feasible": o.feasible_at_target}
            for o in report.outcomes]
    print(f"strategy exploration for {soc.name} "
          f"(target {args.channels} channels):")
    print(format_table(rows))
    best = report.best_strategy()
    if best is None:
        print("no strategy is feasible at the target channel count")
    else:
        print(f"best at target: {best.strategy} "
              f"(ratio {best.power_ratio_at_target:.2f})")
    return 0


def _cmd_roadmap(args: argparse.Namespace) -> int:
    try:
        record = soc_by_number(args.soc)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    if not record.wireless:
        print(f"{record.name} is wired; roadmap targets wireless designs",
              file=sys.stderr)
        return 2
    from repro.core.roadmap import ChannelRoadmap
    soc = scale_to_standard(record)
    roadmap = ChannelRoadmap(doubling_years=args.doubling_years)
    report = explore(soc, target_channels=2048)
    rows = []
    for outcome in report.outcomes:
        horizon = roadmap.strategy_horizon(outcome.max_channels)
        rows.append({
            "strategy": outcome.strategy,
            "max_channels": outcome.max_channels,
            "overtaken_in": ("never" if horizon == float("inf")
                             else f"{horizon:.0f}"),
        })
    print(f"channel-count roadmap for {soc.name} "
          f"(doubling every {roadmap.doubling_years:g} years):")
    print(format_table(rows))
    return 0


def _cmd_validate(_: argparse.Namespace) -> int:
    from repro.experiments.validate import render_results, validate_all
    results = validate_all()
    print(render_results(results))
    return 0 if all(r.passed for r in results) else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    known = _known_experiments()
    if args.experiment != "all" and args.experiment not in known:
        print(f"unknown experiment {args.experiment!r}; "
              f"available: {sorted(known)} (or 'all')", file=sys.stderr)
        return 2
    if _jobs_error(args.jobs):
        return 2
    obs.enable_tracing()
    obs.enable_metrics()
    if args.experiment == "all":
        from repro.experiments import run_all
        run_all(output_dir=DEFAULT_OUTPUT_DIR, seed=args.seed,
                jobs=args.jobs, cache=args.cache)
        title = f"full evaluation (jobs={args.jobs})"
    else:
        runner = None
        if args.cache:
            from repro.cache import run_and_save_cached

            def runner(module, seed=None):
                return run_and_save_cached(module, DEFAULT_OUTPUT_DIR,
                                           seed=seed)
        # Resilient path: a driver that dies (or recorded degraded
        # FAILURE_COLUMNS rows) still profiles — the spans recorded up
        # to the failure render, and the title reports the degradation
        # instead of a missing-column crash.
        result = run_module_resilient(known[args.experiment],
                                      seed=args.seed, runner=runner)
        title = result.title
        if is_recorded_failure(result) and not args.quiet:
            print(render_result(known[args.experiment], result))
    print(f"== profile: {title} ==")
    print()
    print(obs.TRACER.render_tree())
    print()
    print(f"-- top {args.top} hotspots (by self time) --")
    print(obs.render_hotspots(obs.hotspots(obs.TRACER.roots,
                                           top_n=args.top)))
    snapshot = obs.REGISTRY.snapshot()
    if any(snapshot.values()) and not args.quiet:
        rendered = obs.REGISTRY.render()
        if rendered != "(no metrics recorded)":
            print()
            print("-- metrics --")
            print(rendered)
    return 0


def _repo_root() -> Path:
    """The checkout root (this file lives at ``<root>/src/repro/cli.py``)."""
    return Path(__file__).resolve().parents[2]


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro import analysis
    from repro.analysis.graph import Project

    root = _repo_root()
    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [p for p in (root / "src", root / "tests") if p.exists()]
    baseline_path = (Path(args.baseline) if args.baseline
                     else root / analysis.DEFAULT_BASELINE_PATH)
    try:
        # Single validation path shared with run_rules (rule_by_id).
        rules = analysis.resolve_rules(args.rules or None)
    except KeyError as error:
        print(f"analyze: {error.args[0]}", file=sys.stderr)
        return 2
    try:
        files = analysis.collect_files(paths)
        project = Project(files)
        if args.graph:
            return _dump_graph(args, project)
        findings = analysis.run_rules(project, rules)
    except analysis.AnalysisError as error:
        print(f"analyze: {error}", file=sys.stderr)
        return 2
    line_text_of = {(parsed.display_path, number): text
                    for parsed in files
                    for number, text in enumerate(parsed.lines, start=1)}
    fingerprinted = analysis.fingerprint_findings(findings, line_text_of)

    if args.update_baseline:
        from repro.analysis.baseline import baseline_entry
        entries = [baseline_entry(finding, digest)
                   for finding, digest in fingerprinted]
        analysis.save_baseline(baseline_path, entries)
        print(f"baseline updated: {len(entries)} violation(s) "
              f"grandfathered in {baseline_path}")
        return 0

    try:
        entries = ([] if args.no_baseline
                   else analysis.load_baseline(baseline_path))
    except analysis.AnalysisError as error:
        print(f"analyze: {error}", file=sys.stderr)
        return 2
    new, grandfathered = analysis.split_by_baseline(fingerprinted, entries)
    # Only entries whose file was actually analyzed can be judged stale
    # (a restricted `analyze PATH` run says nothing about the rest).
    analyzed = {parsed.display_path for parsed in files}
    stale = [entry
             for entry in analysis.stale_entries(entries, fingerprinted)
             if entry.get("path") in analyzed]
    if stale and not getattr(args, "quiet", False):
        for entry in stale:
            print(f"analyze: stale baseline entry "
                  f"{entry.get('fingerprint')} ({entry.get('rule')} in "
                  f"{entry.get('path')}): violation no longer exists — "
                  f"prune it with --update-baseline", file=sys.stderr)

    renderers = {"json": analysis.render_json,
                 "sarif": analysis.render_sarif,
                 "text": analysis.render_text}
    rendered = renderers[args.format](new, grandfathered, rules,
                                      len(files))
    if not getattr(args, "quiet", False) or new:
        print(rendered, end="" if rendered.endswith("\n") else "\n")
    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        # --output keeps the chosen machine format (SARIF for code
        # scanning); the default/text run still writes JSON for the CI
        # artifact.
        writer = (analysis.render_sarif if args.format == "sarif"
                  else analysis.render_json)
        out.write_text(writer(new, grandfathered, rules, len(files)))
        if not getattr(args, "quiet", False):
            label = "sarif" if args.format == "sarif" else "json"
            print(f"{label} report written to {out}", file=sys.stderr)
    return 1 if new else 0


def _dump_graph(args: argparse.Namespace, project) -> int:
    """``analyze --graph json|dot``: dump the project call graph."""
    graph = project.call_graph
    if args.graph == "dot":
        rendered = graph.to_dot()
    else:
        rendered = json.dumps(graph.to_json(), indent=2,
                              sort_keys=True) + "\n"
    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(rendered)
        if not getattr(args, "quiet", False):
            print(f"call graph written to {out}", file=sys.stderr)
    else:
        print(rendered, end="")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import store_for

    store = store_for(args.output_dir)
    if args.action == "stats":
        print(json.dumps(store.stats(), indent=2))
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"cache cleared: {removed} entries removed "
              f"({store.root})")
        return 0
    report = store.gc(max_age_days=args.max_age_days,
                      max_bytes=args.max_bytes)
    print(f"cache gc: removed {report['removed']}, "
          f"kept {report['kept']} ({report['kept_bytes']} bytes)")
    return 0


def _load_events_or_fail(path: str) -> list | None:
    """Parse one events.jsonl, printing the error on failure."""
    from repro.obs import analyze
    try:
        return analyze.load_events(path)
    except (OSError, ValueError) as error:
        print(f"obs: {error}", file=sys.stderr)
        return None


def _print_report(data, text: str, as_json: bool) -> None:
    if as_json:
        print(json.dumps(data, indent=2, sort_keys=True, default=str))
    else:
        print(text)


def _cmd_obs_view(args: argparse.Namespace) -> int:
    from repro.obs import analyze
    events = _load_events_or_fail(args.events)
    if events is None:
        return 2
    if args.rollup:
        rows = analyze.rollup(events, include_engine=args.include_engine)
        if args.top is not None:
            rows = rows[:args.top]
        _print_report(rows, analyze.render_rollup(
            events, include_engine=args.include_engine, top_n=args.top),
            args.format == "json")
    else:
        _print_report(analyze.summarize(events),
                      analyze.render_summary(events),
                      args.format == "json")
    return 0


def _cmd_obs_query(args: argparse.Namespace) -> int:
    from repro.obs import analyze
    events = _load_events_or_fail(args.events)
    if events is None:
        return 2
    matched = analyze.filter_events(events, driver=args.driver,
                                    kind=args.kind, name=args.name)
    shown = matched if args.limit is None else matched[:args.limit]
    for event in shown:
        print(json.dumps(event, sort_keys=True, default=str))
    if len(shown) < len(matched):
        print(f"... {len(matched) - len(shown)} more "
              f"({len(matched)} matched)", file=sys.stderr)
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.obs import analyze
    events_a = _load_events_or_fail(args.events_a)
    events_b = _load_events_or_fail(args.events_b)
    if events_a is None or events_b is None:
        return 2
    report = analyze.diff_runs(events_a, events_b,
                               include_engine=args.include_engine)
    _print_report(report, analyze.render_diff(report),
                  args.format == "json")
    return 0 if report["equal"] else 1


def _cmd_obs_critical_path(args: argparse.Namespace) -> int:
    from repro.obs import analyze
    if args.timed:
        try:
            records = json.loads(Path(args.timed).read_text(
                encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(f"obs: bad trace file: {error}", file=sys.stderr)
            return 2
        path = analyze.critical_path_spans(records)
    else:
        if args.events is None:
            print("obs: critical-path needs an events.jsonl (or "
                  "--timed TRACE.json)", file=sys.stderr)
            return 2
        events = _load_events_or_fail(args.events)
        if events is None:
            return 2
        path = analyze.critical_path(events, driver=args.driver)
    _print_report(path, analyze.render_critical_path(path),
                  args.format == "json")
    return 0


def _cmd_obs_bench_gate(args: argparse.Namespace) -> int:
    from repro.obs import bench
    try:
        history = bench.load_history(args.history)
    except ValueError as error:
        print(f"obs: {error}", file=sys.stderr)
        return 2
    if args.input:
        try:
            payload = json.loads(Path(args.input).read_text(
                encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(f"obs: bad bench input: {error}", file=sys.stderr)
            return 2
        record = bench.history_record(payload["entries"],
                                      quick=payload.get("quick", False),
                                      cpus=payload.get("cpus", 1))
        if args.append:
            bench.append_history(record, args.history)
    elif history:
        record = history[-1]
    else:
        print(f"obs: no bench history at {args.history} and no --input",
              file=sys.stderr)
        return 2
    report = bench.check_regressions(record, history,
                                     threshold=args.threshold,
                                     window=args.window)
    _print_report(report, bench.render_gate(report),
                  args.format == "json")
    return 0 if report["ok"] else 1


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs import report as obs_report
    dashboard = obs_report.build_dashboard(args.output_dir,
                                           args.sessions)
    if args.format == "json":
        rendered = json.dumps(dashboard, indent=2, sort_keys=True,
                              default=str) + "\n"
    elif args.format == "html":
        rendered = obs_report.render_html(dashboard)
    else:
        rendered = obs_report.render_markdown(dashboard)
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(rendered, encoding="utf-8")
        print(f"dashboard written to {out}")
    else:
        print(rendered, end="" if rendered.endswith("\n") else "\n")
    return 0


def _add_common_flags(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by every subcommand."""
    parser.add_argument(
        "--trace", action="store_true",
        help="record spans and write a JSON trace next to the outputs")
    parser.add_argument(
        "--metrics", action="store_true",
        help="collect metrics and print the snapshot afterwards")
    parser.add_argument(
        "--events", action="store_true",
        help="record the unified telemetry timeline (spans, metrics, "
             "faults, cache) and write <output-dir>/events.jsonl; "
             "implies --trace and --metrics")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-experiment renderings")


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MINDFUL implantable-BCI design framework")
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list the Table 1 designs")
    list_cmd.set_defaults(func=_cmd_list)

    evaluate = sub.add_parser(
        "evaluate", help="regenerate paper tables/figures")
    evaluate.add_argument("names", nargs="*",
                          help="experiment ids (default: all)")
    evaluate.add_argument("--output-dir", default=str(DEFAULT_OUTPUT_DIR))
    evaluate.add_argument(
        "--seed", type=int, default=None,
        help="RNG seed threaded into stochastic experiments and recorded "
             "in each run manifest")
    evaluate.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the experiment fan-out (1 = serial, "
             "0 = all CPUs); artifacts are byte-identical either way "
             "for a fixed --seed")
    evaluate.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="replay unchanged drivers from the content-addressed "
             "result cache under <output-dir>/.cache")
    evaluate.add_argument(
        "--fault-plan", default=None, metavar="PLAN.json",
        help="inject faults from this plan (schema in "
             "docs/ROBUSTNESS.md) and apply its retry policy; writes "
             "<output-dir>/fault_log.json")
    evaluate.add_argument(
        "--dag", action="store_true",
        help="run each driver through its declarative stage graph "
             "(repro.dag); --jobs then parallelizes independent graph "
             "nodes instead of whole drivers, and --cache enables "
             "stage-granular incremental recompute — artifacts are "
             "byte-identical to the imperative path")
    evaluate.add_argument(
        "--max-retries", type=int, default=2,
        help="bounded retry budget per driver; a driver that still "
             "fails degrades to a recorded-failure row (overridden by "
             "--fault-plan's retry policy)")
    evaluate.set_defaults(func=_cmd_evaluate)

    chaos_cmd = sub.add_parser(
        "chaos",
        help="run the seeded fault-injection drills and the "
             "fault_sweep degradation experiment")
    chaos_cmd.add_argument(
        "--seed", type=int, default=0,
        help="plan seed; a fixed seed makes fault logs and CSVs "
             "byte-identical across runs")
    chaos_cmd.add_argument(
        "--output-dir", default=str(DEFAULT_OUTPUT_DIR / "chaos"),
        help="destination for fault_log.json, chaos_report.json, and "
             "the fault_sweep CSV")
    chaos_cmd.add_argument(
        "--fault-plan", default=None, metavar="PLAN.json",
        help="use this plan instead of the stock chaos plan")
    chaos_cmd.set_defaults(func=_cmd_chaos)

    fleet_cmd = sub.add_parser(
        "fleet",
        help="run the population-scale closed-loop fleet and write "
             "the cohort dashboard CSV")
    fleet_cmd.add_argument(
        "--seed", type=int, default=None,
        help="base run seed; every cohort stream derives from it and "
             "the cohort name, so a fixed seed replays the fleet "
             "byte-identically, serial or --jobs N")
    fleet_cmd.add_argument(
        "--sessions", type=int, default=None,
        help="sessions per cohort (default: the driver's default)")
    fleet_cmd.add_argument(
        "--decoder", choices=("kalman", "wiener", "dnn"), default=None,
        help="keep only default cohorts of this decoder family")
    fleet_cmd.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes to shard cohorts across (1 = serial, "
             "0 = all CPUs); artifacts are byte-identical either way "
             "for a fixed --seed")
    fleet_cmd.add_argument("--output-dir",
                           default=str(DEFAULT_OUTPUT_DIR))
    fleet_cmd.set_defaults(func=_cmd_fleet)

    assess = sub.add_parser("assess",
                            help="scale and safety-check one design")
    assess.add_argument("soc", type=int, help="Table 1 index (1-11)")
    assess.set_defaults(func=_cmd_assess)

    explore_cmd = sub.add_parser(
        "explore", help="compare all strategies for one design")
    explore_cmd.add_argument("soc", type=int, help="Table 1 index (1-8)")
    explore_cmd.add_argument("--channels", type=int, default=2048)
    explore_cmd.set_defaults(func=_cmd_explore)

    roadmap_cmd = sub.add_parser(
        "roadmap", help="years until the channel trend overtakes each "
                        "strategy")
    roadmap_cmd.add_argument("soc", type=int, help="Table 1 index (1-8)")
    roadmap_cmd.add_argument("--doubling-years", type=float, default=7.0)
    roadmap_cmd.set_defaults(func=_cmd_roadmap)

    validate_cmd = sub.add_parser(
        "validate",
        help="score every paper claim against the regenerated results")
    validate_cmd.set_defaults(func=_cmd_validate)

    profile_cmd = sub.add_parser(
        "profile",
        help="run one experiment under the tracer and print the span "
             "tree and hotspots")
    profile_cmd.add_argument("experiment",
                             help="experiment id (e.g. fig5, frontier) "
                                  "or 'all' for the full evaluation")
    profile_cmd.add_argument("--top", type=int, default=10,
                             help="number of hotspots to show")
    profile_cmd.add_argument("--seed", type=int, default=None)
    profile_cmd.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes when profiling 'all' (worker spans are "
             "merged into the printed tree)")
    profile_cmd.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="run the profiled experiments through the result cache "
             "(cache spans appear in the tree)")
    profile_cmd.set_defaults(func=_cmd_profile)

    analyze_cmd = sub.add_parser(
        "analyze",
        help="run the whole-program analyzer over src/ and tests/")
    analyze_cmd.add_argument(
        "paths", nargs="*",
        help="files/directories to analyze (default: the checkout's "
             "src/ and tests/)")
    analyze_cmd.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format printed to stdout")
    analyze_cmd.add_argument(
        "--rule", action="append", dest="rules", metavar="RULE_ID",
        help="run only this rule (repeatable; unknown ids exit 2 "
             "listing the known rules)")
    analyze_cmd.add_argument(
        "--graph", choices=("json", "dot"), default=None,
        help="dump the project call graph instead of running rules")
    analyze_cmd.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the machine report to PATH (JSON, or SARIF "
             "under --format sarif; CI artifact)")
    analyze_cmd.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file of grandfathered violations (default: "
             "<repo>/.analysis-baseline.json)")
    analyze_cmd.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to grandfather every current finding")
    analyze_cmd.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline and report every violation as new")
    analyze_cmd.set_defaults(func=_cmd_analyze)

    cache_cmd = sub.add_parser(
        "cache",
        help="inspect or prune the content-addressed result cache")
    cache_cmd.add_argument("action", choices=("stats", "clear", "gc"),
                           help="stats: entry/size breakdown; clear: "
                                "drop everything; gc: prune by age "
                                "then size")
    cache_cmd.add_argument("--output-dir",
                           default=str(DEFAULT_OUTPUT_DIR),
                           help="run output directory whose .cache to "
                                "operate on")
    cache_cmd.add_argument(
        "--max-age-days", type=float, default=None,
        help="gc: remove entries older than this many days")
    cache_cmd.add_argument(
        "--max-bytes", type=int, default=None,
        help="gc: then remove oldest entries until the store fits")
    cache_cmd.set_defaults(func=_cmd_cache)

    dag_cmd = sub.add_parser(
        "dag",
        help="inspect declarative experiment graphs (repro.dag)")
    dag_sub = dag_cmd.add_subparsers(dest="dag_command", required=True)
    dag_show = dag_sub.add_parser(
        "show", help="print one experiment's stage graph: nodes, "
                     "dataflow, dependencies, per-node policy")
    dag_show.add_argument("experiment",
                          help="experiment id (e.g. fig7, fleet)")
    dag_show.set_defaults(func=_cmd_dag_show)

    obs_cmd = sub.add_parser(
        "obs",
        help="analytics over recorded run telemetry (events.jsonl, "
             "bench history, safety dashboards)")
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)

    obs_view = obs_sub.add_parser(
        "view", help="per-driver event census or per-stage rollup")
    obs_view.add_argument("events", help="path to an events.jsonl")
    obs_view.add_argument("--rollup", action="store_true",
                          help="per-stage self/total event rollup "
                               "instead of the census")
    obs_view.add_argument("--top", type=int, default=None,
                          help="limit the rollup to the N heaviest "
                               "stages")
    obs_view.add_argument("--include-engine", action="store_true",
                          help="include engine-scope events (driver "
                               "tag \"\")")
    obs_view.add_argument("--format", choices=("text", "json"),
                          default="text")
    obs_view.set_defaults(func=_cmd_obs_view)

    obs_query = obs_sub.add_parser(
        "query", help="filter events by driver/kind/name, printed as "
                      "JSONL")
    obs_query.add_argument("events", help="path to an events.jsonl")
    obs_query.add_argument("--driver", default=None,
                           help="exact driver tag (\"\" for engine "
                                "scope)")
    obs_query.add_argument("--kind", default=None,
                           choices=("span_start", "span_end", "metric",
                                    "fault", "cache", "transport"))
    obs_query.add_argument("--name", default=None,
                           help="name substring")
    obs_query.add_argument("--limit", type=int, default=None)
    obs_query.set_defaults(func=_cmd_obs_query)

    obs_diff = obs_sub.add_parser(
        "diff", help="structural diff of two runs' timelines (exit 1 "
                     "on deltas)")
    obs_diff.add_argument("events_a", help="baseline events.jsonl")
    obs_diff.add_argument("events_b", help="candidate events.jsonl")
    obs_diff.add_argument("--include-engine", action="store_true",
                          help="also diff engine-scope events (serial "
                               "vs parallel engines legitimately "
                               "differ there)")
    obs_diff.add_argument("--format", choices=("text", "json"),
                          default="text")
    obs_diff.set_defaults(func=_cmd_obs_diff)

    obs_cp = obs_sub.add_parser(
        "critical-path",
        help="heaviest span chain of a run (structural by default, "
             "--timed for wall clock)")
    obs_cp.add_argument("events", nargs="?", default=None,
                        help="path to an events.jsonl (structural "
                             "mode)")
    obs_cp.add_argument("--driver", default=None,
                        help="restrict to one driver's spans")
    obs_cp.add_argument("--timed", default=None, metavar="TRACE.json",
                        help="use recorded span durations from this "
                             "trace instead (not byte-stable)")
    obs_cp.add_argument("--format", choices=("text", "json"),
                        default="text")
    obs_cp.set_defaults(func=_cmd_obs_critical_path)

    obs_gate = obs_sub.add_parser(
        "bench-gate",
        help="perf-trajectory regression gate over the benchmark "
             "history (exit 1 on regression)")
    obs_gate.add_argument(
        "--history", default=str(Path("results") / "bench_history.jsonl"),
        help="history ledger (one JSON record per benchmark run)")
    obs_gate.add_argument(
        "--input", default=None, metavar="BENCH_perf.json",
        help="gate this benchmark output instead of the ledger's last "
             "entry")
    obs_gate.add_argument(
        "--append", action="store_true",
        help="with --input: also append the run to the history ledger")
    obs_gate.add_argument(
        "--threshold", type=float, default=0.20,
        help="fractional per-kernel slowdown that fails (default 0.20)")
    obs_gate.add_argument(
        "--window", type=int, default=5,
        help="rolling-baseline width (median of the last N comparable "
             "runs)")
    obs_gate.add_argument("--format", choices=("text", "json"),
                          default="text")
    obs_gate.set_defaults(func=_cmd_obs_bench_gate)

    obs_report = obs_sub.add_parser(
        "report",
        help="render the safety-envelope dashboard for a run directory")
    obs_report.add_argument(
        "--output-dir", default=str(DEFAULT_OUTPUT_DIR),
        help="run output directory (fig4.csv/fig7.csv + manifests)")
    obs_report.add_argument(
        "--sessions", nargs="*", default=[], metavar="DIR",
        help="additional session directories folded into the fleet "
             "percentiles")
    obs_report.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the dashboard here instead of stdout")
    obs_report.add_argument("--format", choices=("md", "html", "json"),
                            default="md")
    obs_report.set_defaults(func=_cmd_obs_report)

    for command in (list_cmd, evaluate, fleet_cmd, assess, explore_cmd,
                    roadmap_cmd, validate_cmd, profile_cmd, analyze_cmd,
                    cache_cmd, chaos_cmd):
        _add_common_flags(command)
    return parser


def _trace_output_path(args: argparse.Namespace) -> Path:
    base = Path(getattr(args, "output_dir", DEFAULT_OUTPUT_DIR))
    return base / "trace.json"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    seed = getattr(args, "seed", None)
    if seed is not None:
        obs.set_run_seed(seed)
    # "is True" guards against the obs subcommands, whose positional
    # `events` (a JSONL path) shares the attribute name with the flag.
    events_on = getattr(args, "events", False) is True
    trace_on = getattr(args, "trace", False) or events_on
    metrics_on = getattr(args, "metrics", False) or events_on
    if trace_on:
        obs.enable_tracing()
    if metrics_on:
        obs.enable_metrics()
    if events_on:
        # Span and metric events only exist while their substrates
        # record, so --events implies --trace and --metrics.
        obs.enable_events()
    try:
        code = args.func(args)
        if events_on:
            base = Path(getattr(args, "output_dir", DEFAULT_OUTPUT_DIR))
            events_path = obs.EVENTS.write_jsonl(base / "events.jsonl")
            if not getattr(args, "quiet", False):
                print(f"events written to {events_path}")
        if getattr(args, "trace", False):
            path = _trace_output_path(args)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(obs.TRACER.to_dicts(), indent=2,
                                       default=str) + "\n")
            if not getattr(args, "quiet", False):
                print(f"trace written to {path}")
        if getattr(args, "metrics", False):
            print("-- metrics --")
            print(obs.REGISTRY.render())
        return code
    finally:
        obs.disable_all()
        obs.reset_all()
        if seed is not None:
            obs.set_run_seed(None)


if __name__ == "__main__":
    raise SystemExit(main())
