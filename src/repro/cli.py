"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — list the Table 1 designs.
* ``evaluate [NAMES...]`` — regenerate paper tables/figures (default all),
  printing each rendering and writing CSVs.
* ``assess SOC`` — scale one Table 1 design to 1024 channels and print its
  safety report and headline feasibility numbers.
* ``explore SOC`` — run the full strategy comparison for one design.
* ``roadmap SOC`` — years until the channel-count trend overtakes each
  strategy's frontier.
* ``validate`` — score every machine-checkable paper claim against the
  regenerated results (exit code 0 when all pass).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.explorer import explore
from repro.core.scaling import scale_to_standard
from repro.core.socs import TABLE1, soc_by_number
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.report import DEFAULT_OUTPUT_DIR, format_table
from repro.thermal.budget import assess as thermal_assess
from repro.units import to_mbps, to_mm2, to_mw


def _cmd_list(_: argparse.Namespace) -> int:
    rows = [{"number": r.number, "name": r.name,
             "channels": r.n_channels, "wireless": r.wireless}
            for r in TABLE1]
    print(format_table(rows))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    wanted = set(args.names) if args.names else None
    known = {module.__name__.rsplit(".", 1)[-1]: module
             for module in ALL_EXPERIMENTS}
    if wanted:
        unknown = wanted - set(known)
        if unknown:
            print(f"unknown experiments: {sorted(unknown)}; "
                  f"available: {sorted(known)}", file=sys.stderr)
            return 2
    for name, module in known.items():
        if wanted and name not in wanted:
            continue
        result = module.run()
        result.save_csv(args.output_dir)
        print(f"== {result.title} ==")
        print(module.render(result))
        print()
    return 0


def _cmd_assess(args: argparse.Namespace) -> int:
    try:
        record = soc_by_number(args.soc)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    soc = scale_to_standard(record)
    print(f"{soc.name} scaled to {soc.n_channels} channels:")
    print(f"  area  {to_mm2(soc.area_m2):8.1f} mm^2")
    print(f"  power {to_mw(soc.power_w):8.2f} mW")
    print(f"  raw throughput {to_mbps(soc.sensing_throughput_bps()):.1f} "
          f"Mbps")
    print(f"  {thermal_assess(soc.power_w, soc.area_m2).describe()}")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    try:
        record = soc_by_number(args.soc)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    if not record.wireless:
        print(f"{record.name} is wired; the strategy exploration targets "
              "wireless designs (SoCs 1-8)", file=sys.stderr)
        return 2
    soc = scale_to_standard(record)
    report = explore(soc, target_channels=args.channels)
    rows = [{"strategy": o.strategy,
             "max_channels": o.max_channels,
             f"ratio@{args.channels}": o.power_ratio_at_target,
             "feasible": o.feasible_at_target}
            for o in report.outcomes]
    print(f"strategy exploration for {soc.name} "
          f"(target {args.channels} channels):")
    print(format_table(rows))
    best = report.best_strategy()
    if best is None:
        print("no strategy is feasible at the target channel count")
    else:
        print(f"best at target: {best.strategy} "
              f"(ratio {best.power_ratio_at_target:.2f})")
    return 0


def _cmd_roadmap(args: argparse.Namespace) -> int:
    try:
        record = soc_by_number(args.soc)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    if not record.wireless:
        print(f"{record.name} is wired; roadmap targets wireless designs",
              file=sys.stderr)
        return 2
    from repro.core.roadmap import ChannelRoadmap
    soc = scale_to_standard(record)
    roadmap = ChannelRoadmap(doubling_years=args.doubling_years)
    report = explore(soc, target_channels=2048)
    rows = []
    for outcome in report.outcomes:
        horizon = roadmap.strategy_horizon(outcome.max_channels)
        rows.append({
            "strategy": outcome.strategy,
            "max_channels": outcome.max_channels,
            "overtaken_in": ("never" if horizon == float("inf")
                             else f"{horizon:.0f}"),
        })
    print(f"channel-count roadmap for {soc.name} "
          f"(doubling every {roadmap.doubling_years:g} years):")
    print(format_table(rows))
    return 0


def _cmd_validate(_: argparse.Namespace) -> int:
    from repro.experiments.validate import render_results, validate_all
    results = validate_all()
    print(render_results(results))
    return 0 if all(r.passed for r in results) else 1


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MINDFUL implantable-BCI design framework")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table 1 designs").set_defaults(
        func=_cmd_list)

    evaluate = sub.add_parser(
        "evaluate", help="regenerate paper tables/figures")
    evaluate.add_argument("names", nargs="*",
                          help="experiment ids (default: all)")
    evaluate.add_argument("--output-dir", default=str(DEFAULT_OUTPUT_DIR))
    evaluate.set_defaults(func=_cmd_evaluate)

    assess = sub.add_parser("assess",
                            help="scale and safety-check one design")
    assess.add_argument("soc", type=int, help="Table 1 index (1-11)")
    assess.set_defaults(func=_cmd_assess)

    explore_cmd = sub.add_parser(
        "explore", help="compare all strategies for one design")
    explore_cmd.add_argument("soc", type=int, help="Table 1 index (1-8)")
    explore_cmd.add_argument("--channels", type=int, default=2048)
    explore_cmd.set_defaults(func=_cmd_explore)

    roadmap_cmd = sub.add_parser(
        "roadmap", help="years until the channel trend overtakes each "
                        "strategy")
    roadmap_cmd.add_argument("soc", type=int, help="Table 1 index (1-8)")
    roadmap_cmd.add_argument("--doubling-years", type=float, default=7.0)
    roadmap_cmd.set_defaults(func=_cmd_roadmap)

    sub.add_parser(
        "validate",
        help="score every paper claim against the regenerated results",
    ).set_defaults(func=_cmd_validate)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
