"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — list the Table 1 designs.
* ``evaluate [NAMES...]`` — regenerate paper tables/figures (default all),
  printing each rendering and writing CSVs + run manifests; ``--jobs N``
  fans the drivers out to a process pool with identical artifacts;
  ``--cache`` replays unchanged drivers from the content-addressed
  result cache (``<output-dir>/.cache``, see :mod:`repro.cache`).
* ``assess SOC`` — scale one Table 1 design to 1024 channels and print its
  safety report and headline feasibility numbers.
* ``explore SOC`` — run the full strategy comparison for one design.
* ``roadmap SOC`` — years until the channel-count trend overtakes each
  strategy's frontier.
* ``validate`` — score every machine-checkable paper claim against the
  regenerated results (exit code 0 when all pass).
* ``profile EXPERIMENT`` — run one experiment (or ``all``, optionally
  with ``--jobs``) under the span tracer and print the nested span tree
  plus the top-N hotspots; worker-process spans are merged into the tree.
* ``analyze`` — run the AST invariant linter (:mod:`repro.analysis`)
  over ``src/`` and ``tests/``; non-zero exit on findings not covered by
  the committed baseline.  ``--format json``/``--output`` for machine
  reports, ``--update-baseline`` to grandfather the current findings.
* ``cache {stats,clear,gc}`` — inspect or prune the content-addressed
  result cache under ``<output-dir>/.cache``.
* ``chaos`` — run the fault-injection drills (link, cache) plus the
  ``fault_sweep`` degradation experiment under a seeded
  :class:`repro.fault.FaultPlan`, writing ``fault_log.json`` +
  ``chaos_report.json``; byte-identical for a fixed ``--seed``
  (docs/ROBUSTNESS.md).

Fault flags on ``evaluate``: ``--fault-plan PLAN.json`` injects the
plan's faults and applies its retry policy; ``--max-retries N`` bounds
the per-driver retry budget (failed drivers degrade to recorded-failure
rows instead of killing the run).

Global observability flags (valid after any subcommand):

* ``--trace`` — record spans and write a JSON trace
  (``<output-dir>/trace.json`` for ``evaluate``, ``results/trace.json``
  otherwise).
* ``--metrics`` — collect counters/gauges/histograms and print the
  snapshot after the command finishes.
* ``--quiet`` — suppress per-experiment renderings (artifacts are still
  written).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import obs
from repro.core.explorer import explore
from repro.core.scaling import scale_to_standard
from repro.core.socs import TABLE1, soc_by_number
from repro.experiments import (
    ALL_EXPERIMENTS,
    EXTENSION_EXPERIMENTS,
    experiment_name,
    is_recorded_failure,
    run_module,
    run_module_resilient,
)
from repro.experiments.report import DEFAULT_OUTPUT_DIR, format_table
from repro.thermal.budget import assess as thermal_assess
from repro.units import to_mbps, to_mm2, to_mw


def _known_experiments() -> dict[str, object]:
    """Experiment id -> driver module, extensions included."""
    return {experiment_name(module): module
            for module in ALL_EXPERIMENTS + EXTENSION_EXPERIMENTS}


def _jobs_error(jobs: int) -> bool:
    """Shared ``--jobs`` validation: print the error and return True
    when the value is invalid (negative)."""
    if jobs < 0:
        print("--jobs must be positive (or 0 for all CPUs)",
              file=sys.stderr)
        return True
    return False


def _print_cache_summary(results: list) -> None:
    """One-line driver hit/miss summary for cached runs."""
    hits = sum(1 for result in results
               if result.cache_info and result.cache_info.get("hit"))
    print(f"cache: {hits}/{len(results)} driver hits")


def _cmd_list(_: argparse.Namespace) -> int:
    rows = [{"number": r.number, "name": r.name,
             "channels": r.n_channels, "wireless": r.wireless}
            for r in TABLE1]
    print(format_table(rows))
    return 0


def _print_fault_summary(injector, results: list,
                         output_dir) -> None:
    """Counters line + fault-log path for fault-aware runs."""
    failures = [result.name for result in results
                if is_recorded_failure(result)]
    counters = injector.counters
    print(f"faults: injected={counters['injected']} "
          f"recovered={counters['recovered']} "
          f"failed={counters['failed']}")
    if failures:
        print(f"recorded failures: {', '.join(failures)}")
    log_path = injector.write_log(Path(output_dir) / "fault_log.json")
    print(f"fault log written to {log_path}")


def _cmd_evaluate(args: argparse.Namespace) -> int:
    wanted = set(args.names) if args.names else None
    known = {experiment_name(module): module
             for module in ALL_EXPERIMENTS}
    if wanted:
        unknown = wanted - set(known)
        if unknown:
            print(f"unknown experiments: {sorted(unknown)}; "
                  f"available: {sorted(known)}", file=sys.stderr)
            return 2
    selected = [(name, module) for name, module in known.items()
                if not wanted or name in wanted]
    if _jobs_error(args.jobs):
        return 2
    if args.max_retries < 0:
        print("--max-retries must be non-negative", file=sys.stderr)
        return 2
    fault_plan = None
    injector = None
    max_retries = args.max_retries
    backoff_s = 0.25
    timeout_s = None
    if args.fault_plan:
        from repro.fault import FaultInjector, FaultPlan
        try:
            fault_plan = FaultPlan.from_file(args.fault_plan)
        except (OSError, ValueError) as error:
            print(f"evaluate: bad fault plan: {error}", file=sys.stderr)
            return 2
        injector = FaultInjector(fault_plan)
        max_retries = fault_plan.retry.max_retries
        backoff_s = fault_plan.retry.backoff_s
        timeout_s = fault_plan.retry.timeout_s
    if args.jobs != 1 and len(selected) > 1:
        from repro.perf import run_parallel
        results = run_parallel([module for _, module in selected],
                               output_dir=args.output_dir, jobs=args.jobs,
                               seed=args.seed, cache=args.cache,
                               max_retries=max_retries,
                               backoff_s=backoff_s, timeout_s=timeout_s,
                               fault_plan=fault_plan, injector=injector)
        if not args.quiet:
            for (_, module), result in zip(selected, results):
                print(f"== {result.title} ==")
                print(module.render(result))
                print()
        if args.cache:
            _print_cache_summary(results)
        if injector is not None:
            _print_fault_summary(injector, results, args.output_dir)
        return 0
    runner = None
    if args.cache:
        from repro.cache import run_and_save_cached, store_for
        store = store_for(args.output_dir)

        def runner(module, seed=None):
            return run_and_save_cached(module, args.output_dir,
                                       seed=seed, store=store)
    results = []
    for _, module in selected:
        result = run_module_resilient(
            module, seed=args.seed, max_retries=max_retries,
            backoff_s=backoff_s, fault_plan=fault_plan,
            injector=injector, runner=runner)
        if not args.cache or is_recorded_failure(result):
            result.save_csv(args.output_dir)
        elif result.fault_info is not None:
            result.save_manifest(args.output_dir)
        results.append(result)
        if not args.quiet:
            print(f"== {result.title} ==")
            print(module.render(result))
            print()
    if args.cache:
        _print_cache_summary(results)
    if injector is not None:
        _print_fault_summary(injector, results, args.output_dir)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments import fault_sweep
    from repro.fault import (FaultInjector, FaultPlan,
                             default_chaos_plan, run_chaos_drills)

    if args.fault_plan:
        try:
            plan = FaultPlan.from_file(args.fault_plan)
        except (OSError, ValueError) as error:
            print(f"chaos: bad fault plan: {error}", file=sys.stderr)
            return 2
    else:
        plan = default_chaos_plan(seed=args.seed)
    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    injector = FaultInjector(plan)

    drill_report = run_chaos_drills(injector, output_dir)
    result = run_module(fault_sweep, seed=args.seed)
    result.fault_info = dict(injector.counters)
    result.save_csv(output_dir)

    report_path = output_dir / "chaos_report.json"
    report_path.write_text(
        json.dumps(drill_report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    log_path = injector.write_log(output_dir / "fault_log.json")

    if not args.quiet:
        print(f"== chaos drills (plan seed {plan.seed}) ==")
        print(json.dumps(drill_report, indent=2, sort_keys=True))
        print()
        print(f"== {result.title} ==")
        print(fault_sweep.render(result))
        print()
    counters = injector.counters
    print(f"faults: injected={counters['injected']} "
          f"recovered={counters['recovered']} "
          f"failed={counters['failed']}")
    print(f"chaos report written to {report_path}")
    print(f"fault log written to {log_path}")
    return 0


def _cmd_assess(args: argparse.Namespace) -> int:
    try:
        record = soc_by_number(args.soc)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    soc = scale_to_standard(record)
    print(f"{soc.name} scaled to {soc.n_channels} channels:")
    print(f"  area  {to_mm2(soc.area_m2):8.1f} mm^2")
    print(f"  power {to_mw(soc.power_w):8.2f} mW")
    print(f"  raw throughput {to_mbps(soc.sensing_throughput_bps()):.1f} "
          f"Mbps")
    print(f"  {thermal_assess(soc.power_w, soc.area_m2).describe()}")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    try:
        record = soc_by_number(args.soc)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    if not record.wireless:
        print(f"{record.name} is wired; the strategy exploration targets "
              "wireless designs (SoCs 1-8)", file=sys.stderr)
        return 2
    soc = scale_to_standard(record)
    report = explore(soc, target_channels=args.channels)
    rows = [{"strategy": o.strategy,
             "max_channels": o.max_channels,
             f"ratio@{args.channels}": o.power_ratio_at_target,
             "feasible": o.feasible_at_target}
            for o in report.outcomes]
    print(f"strategy exploration for {soc.name} "
          f"(target {args.channels} channels):")
    print(format_table(rows))
    best = report.best_strategy()
    if best is None:
        print("no strategy is feasible at the target channel count")
    else:
        print(f"best at target: {best.strategy} "
              f"(ratio {best.power_ratio_at_target:.2f})")
    return 0


def _cmd_roadmap(args: argparse.Namespace) -> int:
    try:
        record = soc_by_number(args.soc)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    if not record.wireless:
        print(f"{record.name} is wired; roadmap targets wireless designs",
              file=sys.stderr)
        return 2
    from repro.core.roadmap import ChannelRoadmap
    soc = scale_to_standard(record)
    roadmap = ChannelRoadmap(doubling_years=args.doubling_years)
    report = explore(soc, target_channels=2048)
    rows = []
    for outcome in report.outcomes:
        horizon = roadmap.strategy_horizon(outcome.max_channels)
        rows.append({
            "strategy": outcome.strategy,
            "max_channels": outcome.max_channels,
            "overtaken_in": ("never" if horizon == float("inf")
                             else f"{horizon:.0f}"),
        })
    print(f"channel-count roadmap for {soc.name} "
          f"(doubling every {roadmap.doubling_years:g} years):")
    print(format_table(rows))
    return 0


def _cmd_validate(_: argparse.Namespace) -> int:
    from repro.experiments.validate import render_results, validate_all
    results = validate_all()
    print(render_results(results))
    return 0 if all(r.passed for r in results) else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    known = _known_experiments()
    if args.experiment != "all" and args.experiment not in known:
        print(f"unknown experiment {args.experiment!r}; "
              f"available: {sorted(known)} (or 'all')", file=sys.stderr)
        return 2
    if _jobs_error(args.jobs):
        return 2
    obs.enable_tracing()
    obs.enable_metrics()
    if args.experiment == "all":
        from repro.experiments import run_all
        run_all(output_dir=DEFAULT_OUTPUT_DIR, seed=args.seed,
                jobs=args.jobs, cache=args.cache)
        title = f"full evaluation (jobs={args.jobs})"
    elif args.cache:
        from repro.cache import run_and_save_cached
        result = run_and_save_cached(known[args.experiment],
                                     DEFAULT_OUTPUT_DIR, seed=args.seed)
        title = result.title
    else:
        result = run_module(known[args.experiment], seed=args.seed)
        title = result.title
    print(f"== profile: {title} ==")
    print()
    print(obs.TRACER.render_tree())
    print()
    print(f"-- top {args.top} hotspots (by self time) --")
    print(obs.render_hotspots(obs.hotspots(obs.TRACER.roots,
                                           top_n=args.top)))
    snapshot = obs.REGISTRY.snapshot()
    if any(snapshot.values()) and not args.quiet:
        rendered = obs.REGISTRY.render()
        if rendered != "(no metrics recorded)":
            print()
            print("-- metrics --")
            print(rendered)
    return 0


def _repo_root() -> Path:
    """The checkout root (this file lives at ``<root>/src/repro/cli.py``)."""
    return Path(__file__).resolve().parents[2]


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro import analysis

    root = _repo_root()
    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [p for p in (root / "src", root / "tests") if p.exists()]
    baseline_path = (Path(args.baseline) if args.baseline
                     else root / analysis.DEFAULT_BASELINE_PATH)
    try:
        files = analysis.collect_files(paths)
        findings = analysis.run_rules(files)
    except analysis.AnalysisError as error:
        print(f"analyze: {error}", file=sys.stderr)
        return 2
    line_text_of = {(parsed.display_path, number): text
                    for parsed in files
                    for number, text in enumerate(parsed.lines, start=1)}
    fingerprinted = analysis.fingerprint_findings(findings, line_text_of)

    if args.update_baseline:
        from repro.analysis.baseline import baseline_entry
        entries = [baseline_entry(finding, digest)
                   for finding, digest in fingerprinted]
        analysis.save_baseline(baseline_path, entries)
        print(f"baseline updated: {len(entries)} violation(s) "
              f"grandfathered in {baseline_path}")
        return 0

    try:
        entries = ([] if args.no_baseline
                   else analysis.load_baseline(baseline_path))
    except analysis.AnalysisError as error:
        print(f"analyze: {error}", file=sys.stderr)
        return 2
    new, grandfathered = analysis.split_by_baseline(fingerprinted, entries)

    rules = analysis.all_rules()
    if args.format == "json":
        rendered = analysis.render_json(new, grandfathered, rules,
                                        len(files))
    else:
        rendered = analysis.render_text(new, grandfathered, rules,
                                        len(files))
    if not getattr(args, "quiet", False) or new:
        print(rendered, end="" if rendered.endswith("\n") else "\n")
    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(analysis.render_json(new, grandfathered, rules,
                                            len(files)))
        if not getattr(args, "quiet", False):
            print(f"json report written to {out}", file=sys.stderr)
    return 1 if new else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import store_for

    store = store_for(args.output_dir)
    if args.action == "stats":
        print(json.dumps(store.stats(), indent=2))
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"cache cleared: {removed} entries removed "
              f"({store.root})")
        return 0
    report = store.gc(max_age_days=args.max_age_days,
                      max_bytes=args.max_bytes)
    print(f"cache gc: removed {report['removed']}, "
          f"kept {report['kept']} ({report['kept_bytes']} bytes)")
    return 0


def _add_common_flags(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by every subcommand."""
    parser.add_argument(
        "--trace", action="store_true",
        help="record spans and write a JSON trace next to the outputs")
    parser.add_argument(
        "--metrics", action="store_true",
        help="collect metrics and print the snapshot afterwards")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-experiment renderings")


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MINDFUL implantable-BCI design framework")
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list the Table 1 designs")
    list_cmd.set_defaults(func=_cmd_list)

    evaluate = sub.add_parser(
        "evaluate", help="regenerate paper tables/figures")
    evaluate.add_argument("names", nargs="*",
                          help="experiment ids (default: all)")
    evaluate.add_argument("--output-dir", default=str(DEFAULT_OUTPUT_DIR))
    evaluate.add_argument(
        "--seed", type=int, default=None,
        help="RNG seed threaded into stochastic experiments and recorded "
             "in each run manifest")
    evaluate.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the experiment fan-out (1 = serial, "
             "0 = all CPUs); artifacts are byte-identical either way "
             "for a fixed --seed")
    evaluate.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="replay unchanged drivers from the content-addressed "
             "result cache under <output-dir>/.cache")
    evaluate.add_argument(
        "--fault-plan", default=None, metavar="PLAN.json",
        help="inject faults from this plan (schema in "
             "docs/ROBUSTNESS.md) and apply its retry policy; writes "
             "<output-dir>/fault_log.json")
    evaluate.add_argument(
        "--max-retries", type=int, default=2,
        help="bounded retry budget per driver; a driver that still "
             "fails degrades to a recorded-failure row (overridden by "
             "--fault-plan's retry policy)")
    evaluate.set_defaults(func=_cmd_evaluate)

    chaos_cmd = sub.add_parser(
        "chaos",
        help="run the seeded fault-injection drills and the "
             "fault_sweep degradation experiment")
    chaos_cmd.add_argument(
        "--seed", type=int, default=0,
        help="plan seed; a fixed seed makes fault logs and CSVs "
             "byte-identical across runs")
    chaos_cmd.add_argument(
        "--output-dir", default=str(DEFAULT_OUTPUT_DIR / "chaos"),
        help="destination for fault_log.json, chaos_report.json, and "
             "the fault_sweep CSV")
    chaos_cmd.add_argument(
        "--fault-plan", default=None, metavar="PLAN.json",
        help="use this plan instead of the stock chaos plan")
    chaos_cmd.set_defaults(func=_cmd_chaos)

    assess = sub.add_parser("assess",
                            help="scale and safety-check one design")
    assess.add_argument("soc", type=int, help="Table 1 index (1-11)")
    assess.set_defaults(func=_cmd_assess)

    explore_cmd = sub.add_parser(
        "explore", help="compare all strategies for one design")
    explore_cmd.add_argument("soc", type=int, help="Table 1 index (1-8)")
    explore_cmd.add_argument("--channels", type=int, default=2048)
    explore_cmd.set_defaults(func=_cmd_explore)

    roadmap_cmd = sub.add_parser(
        "roadmap", help="years until the channel trend overtakes each "
                        "strategy")
    roadmap_cmd.add_argument("soc", type=int, help="Table 1 index (1-8)")
    roadmap_cmd.add_argument("--doubling-years", type=float, default=7.0)
    roadmap_cmd.set_defaults(func=_cmd_roadmap)

    validate_cmd = sub.add_parser(
        "validate",
        help="score every paper claim against the regenerated results")
    validate_cmd.set_defaults(func=_cmd_validate)

    profile_cmd = sub.add_parser(
        "profile",
        help="run one experiment under the tracer and print the span "
             "tree and hotspots")
    profile_cmd.add_argument("experiment",
                             help="experiment id (e.g. fig5, frontier) "
                                  "or 'all' for the full evaluation")
    profile_cmd.add_argument("--top", type=int, default=10,
                             help="number of hotspots to show")
    profile_cmd.add_argument("--seed", type=int, default=None)
    profile_cmd.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes when profiling 'all' (worker spans are "
             "merged into the printed tree)")
    profile_cmd.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="run the profiled experiments through the result cache "
             "(cache spans appear in the tree)")
    profile_cmd.set_defaults(func=_cmd_profile)

    analyze_cmd = sub.add_parser(
        "analyze",
        help="run the AST invariant linter over src/ and tests/")
    analyze_cmd.add_argument(
        "paths", nargs="*",
        help="files/directories to analyze (default: the checkout's "
             "src/ and tests/)")
    analyze_cmd.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format printed to stdout")
    analyze_cmd.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the JSON report to PATH (CI artifact)")
    analyze_cmd.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file of grandfathered violations (default: "
             "<repo>/.analysis-baseline.json)")
    analyze_cmd.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to grandfather every current finding")
    analyze_cmd.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline and report every violation as new")
    analyze_cmd.set_defaults(func=_cmd_analyze)

    cache_cmd = sub.add_parser(
        "cache",
        help="inspect or prune the content-addressed result cache")
    cache_cmd.add_argument("action", choices=("stats", "clear", "gc"),
                           help="stats: entry/size breakdown; clear: "
                                "drop everything; gc: prune by age "
                                "then size")
    cache_cmd.add_argument("--output-dir",
                           default=str(DEFAULT_OUTPUT_DIR),
                           help="run output directory whose .cache to "
                                "operate on")
    cache_cmd.add_argument(
        "--max-age-days", type=float, default=None,
        help="gc: remove entries older than this many days")
    cache_cmd.add_argument(
        "--max-bytes", type=int, default=None,
        help="gc: then remove oldest entries until the store fits")
    cache_cmd.set_defaults(func=_cmd_cache)

    for command in (list_cmd, evaluate, assess, explore_cmd, roadmap_cmd,
                    validate_cmd, profile_cmd, analyze_cmd, cache_cmd,
                    chaos_cmd):
        _add_common_flags(command)
    return parser


def _trace_output_path(args: argparse.Namespace) -> Path:
    base = Path(getattr(args, "output_dir", DEFAULT_OUTPUT_DIR))
    return base / "trace.json"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    seed = getattr(args, "seed", None)
    if seed is not None:
        obs.set_run_seed(seed)
    trace_on = getattr(args, "trace", False)
    metrics_on = getattr(args, "metrics", False)
    if trace_on:
        obs.enable_tracing()
    if metrics_on:
        obs.enable_metrics()
    try:
        code = args.func(args)
        if trace_on:
            path = _trace_output_path(args)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(obs.TRACER.to_dicts(), indent=2,
                                       default=str) + "\n")
            if not getattr(args, "quiet", False):
                print(f"trace written to {path}")
        if metrics_on:
            print("-- metrics --")
            print(obs.REGISTRY.render())
        return code
    finally:
        obs.disable_all()
        obs.reset_all()
        if seed is not None:
            obs.set_run_seed(None)


if __name__ == "__main__":
    raise SystemExit(main())
