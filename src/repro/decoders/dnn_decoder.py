"""DNN decoder wrapper: trains a repro.dnn network as a drop-in decoder.

Gives the neural-network workloads the same fit/decode/score interface as
the Kalman and Wiener baselines so the example applications can compare
the decoder families head-to-head on one dataset.
"""

from __future__ import annotations

import numpy as np

from repro.cache.fingerprint import fingerprint
from repro.cache.keys import stage_key
from repro.cache.stages import (
    active_store,
    decode_result,
    encode_result,
    generator_state,
    restore_generator,
)
from repro.dnn.network import Network
from repro.dnn.train import sgd_train
from repro.obs.metrics import inc, observe
from repro.obs.trace import span


class DnnDecoder:
    """Decoder facade over a materialized :class:`~repro.dnn.network.Network`.

    Args:
        network: a network whose compute layers were built with an rng.
        epochs / batch_size / learning_rate: training hyperparameters
            passed to :func:`repro.dnn.train.sgd_train`.
    """

    def __init__(self, network: Network, epochs: int = 20,
                 batch_size: int = 32, learning_rate: float = 0.05) -> None:
        self.network = network
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.history: list[float] = []

    @property
    def fitted(self) -> bool:
        """True after :meth:`fit` has run at least once."""
        return bool(self.history)

    def _parameters(self) -> list[np.ndarray]:
        """The live trainable arrays, in stable layer order."""
        return [param for layer in self.network.layers
                for param in layer.parameters]

    def fit(self, features: np.ndarray, targets: np.ndarray,
            rng: np.random.Generator) -> list[float]:
        """Train the wrapped network; returns (and stores) the loss
        history.

        Training mutates the network in-place, so the memoization under
        an active stage cache (:mod:`repro.cache.stages`) is hand-rolled
        rather than ``@cached_stage``: the key covers the pre-fit
        parameter values, the data, the hyperparameters, and the
        generator's pre-call state; a hit writes the trained parameter
        values back into the live arrays and fast-forwards the
        generator, leaving the decoder exactly as a real fit would.
        """
        store = active_store()
        if store is None:
            return self._fit_uncached(features, targets, rng)
        params = self._parameters()
        key = stage_key("decoders.dnn.fit", fingerprint(__name__), {
            "network": self.network.name,
            "input_shape": list(self.network.input_shape),
            "params": params,
            "epochs": self.epochs,
            "batch_size": self.batch_size,
            "learning_rate": self.learning_rate,
            "features": np.asarray(features, dtype=float),
            "targets": np.asarray(targets, dtype=float),
            "rng": generator_state(rng),
        })
        entry = store.get(key)
        if entry is not None:
            inc("cache.stage_hits")
            payload = entry["payload"]
            for param, trained in zip(params,
                                      decode_result(payload["params"])):
                param[...] = trained
            restore_generator(rng, payload["rng_state"])
            self.history = list(payload["history"])
            return self.history
        inc("cache.stage_misses")
        history = self._fit_uncached(features, targets, rng)
        store.put(key, {"params": encode_result(params),
                        "history": history,
                        "rng_state": generator_state(rng)},
                  kind="stage", label="decoders.dnn.fit")
        return history

    def _fit_uncached(self, features: np.ndarray, targets: np.ndarray,
                      rng: np.random.Generator) -> list[float]:
        """The real training pass (no cache involvement)."""
        with span("decoders.dnn.fit", network=self.network.name,
                  epochs=self.epochs, samples=len(features)):
            self.history = sgd_train(self.network, features, targets, rng,
                                     epochs=self.epochs,
                                     batch_size=self.batch_size,
                                     learning_rate=self.learning_rate)
        inc("decoders.dnn_epochs_trained", len(self.history))
        if self.history:
            observe("decoders.dnn_final_loss", self.history[-1])
        return self.history

    def decode(self, features: np.ndarray) -> np.ndarray:
        """Forward pass over a feature batch."""
        return self.network.forward(np.asarray(features, dtype=float))

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Mean per-dimension correlation between targets and predictions."""
        predictions = self.decode(features)
        targets = np.asarray(targets, dtype=float)
        correlations = []
        for dim in range(targets.shape[1]):
            truth, est = targets[:, dim], predictions[:, dim]
            if np.std(truth) == 0 or np.std(est) == 0:
                correlations.append(0.0)
            else:
                correlations.append(float(np.corrcoef(truth, est)[0, 1]))
        return float(np.mean(correlations))
