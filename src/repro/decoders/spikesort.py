"""Spike detection, template matching, and channel-activity ranking.

This is the substrate behind the paper's *channel dropout* optimization
(Section 6.2): "computational methods such as spike sorting are often used
to reduce the amount of neural data ... filter out data from inactive
neurons."  The pipeline here is the standard hardware-friendly one (cf.
NOEMA, MICRO'21): robust threshold detection per channel, optional template
matching to separate units, and an activity ranking that selects the n'
most informative channels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import inc
from repro.obs.trace import span


def mad_noise_estimate(signal: np.ndarray) -> float:
    """Median-absolute-deviation noise sigma (Quiroga's robust estimator).

    sigma ~= median(|x|) / 0.6745 — robust to the spikes themselves.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.size == 0:
        raise ValueError("cannot estimate noise of an empty signal")
    return float(np.median(np.abs(signal)) / 0.6745)


@dataclass
class SpikeDetector:
    """Per-channel negative-threshold spike detector.

    Attributes:
        threshold_sigmas: detection threshold in noise sigmas (classic
            choice: 4-5).
        refractory_samples: samples to skip after each detection.
    """

    threshold_sigmas: float = 4.5
    refractory_samples: int = 16

    def __post_init__(self) -> None:
        if self.threshold_sigmas <= 0:
            raise ValueError("threshold must be positive (in sigmas)")
        if self.refractory_samples < 0:
            raise ValueError("refractory period must be non-negative")

    def detect(self, signal: np.ndarray) -> np.ndarray:
        """Spike sample-indices on one channel (negative crossings)."""
        signal = np.asarray(signal, dtype=float)
        sigma = mad_noise_estimate(signal)
        threshold = -self.threshold_sigmas * sigma
        below = signal < threshold
        # Crossing = first sample of each below-threshold run.
        crossings = np.flatnonzero(below & ~np.roll(below, 1))
        if below.size and below[0]:
            crossings = np.concatenate([[0], crossings[crossings != 0]])
        if self.refractory_samples == 0 or crossings.size == 0:
            return crossings
        kept = [int(crossings[0])]
        for idx in crossings[1:]:
            if idx - kept[-1] > self.refractory_samples:
                kept.append(int(idx))
        return np.asarray(kept, dtype=int)

    def detect_all(self, data: np.ndarray) -> list[np.ndarray]:
        """Run detection on every row of a (channels, samples) array."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError("expected (channels, samples)")
        with span("decoders.spikesort.detect_all", channels=len(data),
                  samples=data.shape[1]):
            events = [self.detect(row) for row in data]
        inc("decoders.spikes_detected", sum(len(e) for e in events))
        return events


class TemplateMatcher:
    """Nearest-template spike classifier (unit separation).

    Args:
        templates: (n_units, waveform_len) reference waveforms.
    """

    def __init__(self, templates: np.ndarray) -> None:
        templates = np.asarray(templates, dtype=float)
        if templates.ndim != 2 or templates.shape[0] == 0:
            raise ValueError("templates must be (n_units, waveform_len)")
        norms = np.linalg.norm(templates, axis=1, keepdims=True)
        if np.any(norms == 0):
            raise ValueError("templates must be non-zero")
        self.templates = templates
        self._normalized = templates / norms

    @property
    def n_units(self) -> int:
        """Number of reference units."""
        return self.templates.shape[0]

    @property
    def waveform_len(self) -> int:
        """Template length in samples."""
        return self.templates.shape[1]

    def classify(self, snippet: np.ndarray) -> tuple[int, float]:
        """Best-matching unit for a waveform snippet.

        Returns:
            (unit index, cosine similarity in [-1, 1]).
        """
        snippet = np.asarray(snippet, dtype=float)
        if snippet.shape != (self.waveform_len,):
            raise ValueError(
                f"snippet must have length {self.waveform_len}")
        norm = np.linalg.norm(snippet)
        if norm == 0:
            return 0, 0.0
        similarity = self._normalized @ (snippet / norm)
        unit = int(np.argmax(similarity))
        return unit, float(similarity[unit])

    def classify_events(self, signal: np.ndarray,
                        spike_indices: np.ndarray) -> list[tuple[int, float]]:
        """Classify each detected spike in a continuous signal."""
        out = []
        signal = np.asarray(signal, dtype=float)
        for idx in np.asarray(spike_indices, dtype=int):
            snippet = signal[idx:idx + self.waveform_len]
            if snippet.size < self.waveform_len:
                snippet = np.pad(snippet,
                                 (0, self.waveform_len - snippet.size))
            out.append(self.classify(snippet))
        return out


def channel_activity_ranking(data: np.ndarray,
                             detector: SpikeDetector | None = None,
                             ) -> np.ndarray:
    """Channels ordered from most to least active (spike count, then
    variance as the tiebreaker)."""
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError("expected (channels, samples)")
    detector = detector or SpikeDetector()
    counts = np.array([len(idx) for idx in detector.detect_all(data)],
                      dtype=float)
    variances = data.var(axis=1)
    # Lexicographic: primary key counts, secondary variance.
    order = np.lexsort((-variances, -counts))
    return order


def select_active_channels(data: np.ndarray, n_keep: int,
                           detector: SpikeDetector | None = None,
                           ) -> np.ndarray:
    """The channel-dropout selector: indices of the n' most active channels.

    Args:
        data: (channels, samples) recording block.
        n_keep: number of channels to retain (n' of Section 6.2).

    Returns:
        Sorted channel indices of the retained set.

    Raises:
        ValueError: if n_keep is out of range.
    """
    data = np.asarray(data, dtype=float)
    if not 1 <= n_keep <= data.shape[0]:
        raise ValueError(
            f"n_keep must lie in [1, {data.shape[0]}], got {n_keep}")
    ranking = channel_activity_ranking(data, detector)
    return np.sort(ranking[:n_keep])
