"""Unsupervised spike sorting: snippet extraction, PCA, k-means.

Completes the spike-sorting substrate (Lewicki's classic pipeline, cited
in Section 6.2): detected events are cut into waveform snippets, projected
onto their principal components, and clustered into putative units with
k-means.  Everything is plain NumPy — the point is a transparent reference
implementation, not speed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def extract_snippets(signal: np.ndarray, spike_indices: np.ndarray,
                     length: int, pre: int = 8) -> np.ndarray:
    """Cut aligned waveform snippets around detected spikes.

    Args:
        signal: 1-D waveform.
        spike_indices: detection sample indices.
        length: snippet length in samples.
        pre: samples kept before the detection index.

    Returns:
        (n_spikes, length) array; spikes too close to the edges are
        zero-padded.
    """
    signal = np.asarray(signal, dtype=float)
    if length <= 0 or pre < 0 or pre >= length:
        raise ValueError("need 0 <= pre < length")
    snippets = np.zeros((len(spike_indices), length))
    n = signal.size
    for row, idx in enumerate(np.asarray(spike_indices, dtype=int)):
        start = idx - pre
        for offset in range(length):
            pos = start + offset
            if 0 <= pos < n:
                snippets[row, offset] = signal[pos]
    return snippets


def pca_features(snippets: np.ndarray,
                 n_components: int = 3) -> tuple[np.ndarray, np.ndarray]:
    """Project snippets onto their leading principal components.

    Returns:
        (scores of shape (n_snippets, n_components), components).

    Raises:
        ValueError: with fewer snippets than components.
    """
    snippets = np.asarray(snippets, dtype=float)
    if snippets.ndim != 2:
        raise ValueError("snippets must be (n_snippets, length)")
    if snippets.shape[0] < n_components:
        raise ValueError("need at least as many snippets as components")
    centered = snippets - snippets.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    components = vt[:n_components]
    return centered @ components.T, components


def kmeans(features: np.ndarray, k: int, rng: np.random.Generator,
           n_iterations: int = 50,
           n_restarts: int = 4) -> tuple[np.ndarray, np.ndarray]:
    """Plain k-means with k-means++-style seeding and restarts.

    Returns:
        (labels, centroids) of the best (lowest-inertia) restart.

    Raises:
        ValueError: for k outside [1, n_samples].
    """
    features = np.asarray(features, dtype=float)
    n = features.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must lie in [1, {n}]")
    best: tuple[float, np.ndarray, np.ndarray] | None = None
    for _ in range(n_restarts):
        centroids = _seed_centroids(features, k, rng)
        labels = np.zeros(n, dtype=int)
        for _ in range(n_iterations):
            distances = np.linalg.norm(
                features[:, None, :] - centroids[None, :, :], axis=2)
            new_labels = np.argmin(distances, axis=1)
            if np.array_equal(new_labels, labels) and _ > 0:
                break
            labels = new_labels
            for cluster in range(k):
                members = features[labels == cluster]
                if len(members):
                    centroids[cluster] = members.mean(axis=0)
        inertia = float(np.sum(
            (features - centroids[labels]) ** 2))
        if best is None or inertia < best[0]:
            best = (inertia, labels.copy(), centroids.copy())
    assert best is not None
    return best[1], best[2]


def _seed_centroids(features: np.ndarray, k: int,
                    rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids apart."""
    n = features.shape[0]
    chosen = [int(rng.integers(n))]
    for _ in range(1, k):
        distances = np.min(
            np.linalg.norm(features[:, None, :]
                           - features[chosen][None, :, :], axis=2) ** 2,
            axis=1)
        total = distances.sum()
        if total == 0:
            chosen.append(int(rng.integers(n)))
            continue
        chosen.append(int(rng.choice(n, p=distances / total)))
    return features[chosen].astype(float).copy()


@dataclass(frozen=True)
class SortResult:
    """Outcome of sorting one channel's spikes.

    Attributes:
        labels: unit assignment per detected spike.
        templates: mean waveform per unit (n_units, length).
        features: PCA scores used for clustering.
    """

    labels: np.ndarray
    templates: np.ndarray
    features: np.ndarray

    @property
    def n_units(self) -> int:
        """Number of putative units found."""
        return self.templates.shape[0]


def align_snippets(snippets: np.ndarray, pre: int) -> np.ndarray:
    """Re-align snippets so each trough sits at sample ``pre``.

    Detection indices mark threshold crossings, which land at different
    offsets from the trough for different waveform shapes; aligning on
    the trough is what makes the PCA space separate units by shape.
    """
    snippets = np.asarray(snippets, dtype=float)
    aligned = np.zeros_like(snippets)
    length = snippets.shape[1]
    for row, snippet in enumerate(snippets):
        shift = pre - int(np.argmin(snippet))
        if shift > 0:
            aligned[row, shift:] = snippet[:length - shift]
        elif shift < 0:
            aligned[row, :length + shift] = snippet[-shift:]
        else:
            aligned[row] = snippet
    return aligned


def sort_spikes(signal: np.ndarray, spike_indices: np.ndarray,
                n_units: int, rng: np.random.Generator,
                snippet_length: int = 32, pre: int = 8,
                n_components: int = 3) -> SortResult:
    """The full sorting pipeline for one channel.

    Raises:
        ValueError: with fewer spikes than requested units.
    """
    if len(spike_indices) < n_units:
        raise ValueError("fewer spikes than requested units")
    snippets = extract_snippets(signal, spike_indices, snippet_length,
                                pre)
    snippets = align_snippets(snippets, pre)
    scores, _ = pca_features(snippets,
                             min(n_components, snippets.shape[0]))
    labels, _ = kmeans(scores, n_units, rng)
    templates = np.stack([
        snippets[labels == unit].mean(axis=0) if np.any(labels == unit)
        else np.zeros(snippet_length)
        for unit in range(n_units)])
    return SortResult(labels=labels, templates=templates,
                      features=scores)
