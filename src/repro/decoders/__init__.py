"""Baseline decoders and data-reduction substrates.

The paper positions modern DNN decoders against the traditional linear
algorithms BCIs have historically used (Section 2.3): the Kalman filter and
the Wiener filter.  It also leans on spike-sorting-style activity detection
as the mechanism behind the channel-dropout optimization (Section 6.2).
This package implements all three, plus a thin decoder wrapper around the
:mod:`repro.dnn` networks so the examples can compare the families on the
same synthetic datasets.
"""

from repro.decoders.kalman import KalmanFilterDecoder
from repro.decoders.wiener import WienerFilterDecoder
from repro.decoders.spikesort import (
    SpikeDetector,
    TemplateMatcher,
    channel_activity_ranking,
    select_active_channels,
)
from repro.decoders.dnn_decoder import DnnDecoder
from repro.decoders.lda import LdaClassifier
from repro.decoders.cluster import (
    SortResult,
    align_snippets,
    extract_snippets,
    kmeans,
    pca_features,
    sort_spikes,
)

__all__ = [
    "KalmanFilterDecoder",
    "WienerFilterDecoder",
    "SpikeDetector",
    "TemplateMatcher",
    "channel_activity_ranking",
    "select_active_channels",
    "DnnDecoder",
    "LdaClassifier",
    "SortResult",
    "align_snippets",
    "extract_snippets",
    "kmeans",
    "pca_features",
    "sort_spikes",
]
