"""Linear discriminant analysis classifier for discrete BCI decoding.

Motor-imagery and finger-movement BCIs (Yao et al., cited in Section 2)
decode discrete classes from covariance-style features; regularized LDA
remains the reference linear classifier for that family.  Shrinkage
regularization keeps the pooled covariance invertible in the
few-trials-many-channels regime BCIs live in.
"""

from __future__ import annotations

import numpy as np


class LdaClassifier:
    """Shrinkage-regularized linear discriminant analysis.

    Args:
        shrinkage: in [0, 1]; blends the pooled covariance toward a
            scaled identity (Ledoit-Wolf style fixed shrinkage).
    """

    def __init__(self, shrinkage: float = 0.1) -> None:
        if not 0.0 <= shrinkage <= 1.0:
            raise ValueError("shrinkage must lie in [0, 1]")
        self.shrinkage = shrinkage
        self.classes_: np.ndarray | None = None
        self._means: np.ndarray | None = None
        self._precision: np.ndarray | None = None
        self._log_priors: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        """True after :meth:`fit`."""
        return self.classes_ is not None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        """Estimate class means and the shared (shrunk) covariance.

        Raises:
            ValueError: on mismatched data or fewer than two classes.
        """
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValueError("features must be (n_samples, n_features)")
        if len(features) != len(labels):
            raise ValueError("features and labels must align")
        classes = np.unique(labels)
        if classes.size < 2:
            raise ValueError("need at least two classes")

        n, d = features.shape
        means = np.stack([features[labels == c].mean(axis=0)
                          for c in classes])
        centered = features - means[np.searchsorted(classes, labels)]
        pooled = centered.T @ centered / max(1, n - classes.size)
        target = np.trace(pooled) / d * np.eye(d)
        shrunk = (1.0 - self.shrinkage) * pooled + self.shrinkage * target
        # Guard against residual singularity.
        shrunk += 1e-10 * np.eye(d)
        self._precision = np.linalg.inv(shrunk)
        self._means = means
        self.classes_ = classes
        counts = np.array([(labels == c).sum() for c in classes], float)
        self._log_priors = np.log(counts / n)

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Per-class discriminant scores (n_samples, n_classes).

        Raises:
            RuntimeError: before :meth:`fit`.
        """
        if not self.fitted:
            raise RuntimeError("classifier must be fitted first")
        features = np.asarray(features, dtype=float)
        projections = features @ self._precision @ self._means.T
        offsets = 0.5 * np.einsum("cd,de,ce->c", self._means,
                                  self._precision, self._means)
        return projections - offsets + self._log_priors

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most likely class per sample."""
        scores = self.decision_function(features)
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy."""
        labels = np.asarray(labels)
        return float(np.mean(self.predict(features) == labels))
