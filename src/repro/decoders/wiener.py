"""Wiener-filter (regularized linear regression with lags) decoder.

The other traditional BCI decoder the paper cites (Section 2.3): the state
at time t is a linear readout of the last ``n_lags`` feature frames.  No
dynamics model — just ridge regression on a lag-embedded design matrix.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import inc
from repro.obs.trace import span


class WienerFilterDecoder:
    """Lagged linear decoder.

    Args:
        n_lags: number of past feature frames (including current) used per
            prediction.
        regularization: ridge coefficient.
    """

    def __init__(self, n_lags: int = 5, regularization: float = 1e-3) -> None:
        if n_lags < 1:
            raise ValueError("need at least one lag (the current frame)")
        if regularization < 0:
            raise ValueError("regularization must be non-negative")
        self.n_lags = n_lags
        self.regularization = regularization
        self.weights: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        """True after :meth:`fit`."""
        return self.weights is not None

    def _embed(self, observations: np.ndarray) -> np.ndarray:
        """Lag-embed: row t holds frames t-n_lags+1 .. t plus a bias term.

        Early rows use zero padding for missing history.
        """
        t_len, m = observations.shape
        padded = np.vstack([np.zeros((self.n_lags - 1, m)), observations])
        design = np.empty((t_len, self.n_lags * m + 1))
        for t in range(t_len):
            design[t, :-1] = padded[t:t + self.n_lags].reshape(-1)
            design[t, -1] = 1.0
        return design

    def fit(self, states: np.ndarray, observations: np.ndarray) -> None:
        """Fit readout weights by ridge regression.

        Raises:
            ValueError: on mismatched or insufficient data.
        """
        states = np.asarray(states, dtype=float)
        observations = np.asarray(observations, dtype=float)
        if len(states) != len(observations):
            raise ValueError("states and observations must align in time")
        if len(states) <= self.n_lags:
            raise ValueError("need more timesteps than lags")
        with span("decoders.wiener.fit", timesteps=len(states),
                  n_lags=self.n_lags):
            design = self._embed(observations)
            gram = design.T @ design + self.regularization * np.eye(
                design.shape[1])
            self.weights = np.linalg.solve(gram, design.T @ states)

    def decode(self, observations: np.ndarray) -> np.ndarray:
        """Predict states for a feature sequence.

        Raises:
            RuntimeError: if called before :meth:`fit`.
        """
        if not self.fitted:
            raise RuntimeError("decoder must be fitted before decoding")
        observations = np.asarray(observations, dtype=float)
        inc("decoders.wiener_steps", len(observations))
        with span("decoders.wiener.decode",
                  timesteps=len(observations)):
            return self._embed(observations) @ self.weights

    def score(self, states: np.ndarray, observations: np.ndarray) -> float:
        """Mean per-dimension correlation between truth and prediction."""
        decoded = self.decode(observations)
        states = np.asarray(states, dtype=float)
        correlations = []
        for dim in range(states.shape[1]):
            truth, est = states[:, dim], decoded[:, dim]
            if np.std(truth) == 0 or np.std(est) == 0:
                correlations.append(0.0)
            else:
                correlations.append(float(np.corrcoef(truth, est)[0, 1]))
        return float(np.mean(correlations))


def decode_step_batch(weights: np.ndarray, features: np.ndarray,
                      n_lags: int) -> np.ndarray:
    """Batched single-window Wiener decode over a stack of sessions.

    The closed-loop session decodes each feature window in isolation
    (``decode(feature[None, :])``), so the lag history is always the
    zero padding: the design row is ``[0 … 0, feature, 1.0]``.  This
    applies that row to every session's readout in one batched matmul,
    bit-for-bit equal to the scalar per-session decode (the (1, D) @
    (D, k) product runs the same BLAS kernel per slice).

    Args:
        weights: (n, n_lags * m + 1, k) stacked fitted readouts.
        features: (n, m) one feature window per session.
        n_lags: lag count the readouts were fitted with.

    Returns:
        (n, k) decoded states.
    """
    weights = np.asarray(weights, dtype=float)
    features = np.asarray(features, dtype=float)
    n, m = features.shape
    design = np.zeros((n, 1, weights.shape[1]))
    design[:, 0, (n_lags - 1) * m:-1] = features
    design[:, 0, -1] = 1.0
    return np.matmul(design, weights)[:, 0, :]
