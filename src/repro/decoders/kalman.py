"""Kalman-filter neural decoder (Wu et al., NeurIPS 2002).

The classic BCI cursor decoder: latent kinematics x_t follow a linear
dynamical system, neural features y_t are a linear observation of them.

    x_t = A x_{t-1} + w,   w ~ N(0, W)
    y_t = H x_t     + q,   q ~ N(0, Q)

``fit`` estimates (A, W, H, Q) by least squares from training pairs;
``decode`` runs the standard predict/update recursion.  This is the
paper's "traditional algorithm" baseline (Section 2.3) against which the
DNN workloads are positioned.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import inc
from repro.obs.trace import span


class KalmanFilterDecoder:
    """Linear-Gaussian decoder for continuous kinematics.

    Attributes populated by :meth:`fit`:
        A: (k, k) state transition.
        W: (k, k) process noise covariance.
        H: (m, k) observation matrix.
        Q: (m, m) observation noise covariance.
    """

    def __init__(self, regularization: float = 1e-6) -> None:
        if regularization < 0:
            raise ValueError("regularization must be non-negative")
        self.regularization = regularization
        self.A: np.ndarray | None = None
        self.W: np.ndarray | None = None
        self.H: np.ndarray | None = None
        self.Q: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        """True after a successful :meth:`fit`."""
        return self.A is not None

    def fit(self, states: np.ndarray, observations: np.ndarray) -> None:
        """Estimate model matrices from aligned training data.

        Args:
            states: (T, k) latent kinematics (e.g. cursor velocity).
            observations: (T, m) neural features.

        Raises:
            ValueError: on mismatched or insufficient data.
        """
        states = np.asarray(states, dtype=float)
        observations = np.asarray(observations, dtype=float)
        if states.ndim != 2 or observations.ndim != 2:
            raise ValueError("states and observations must be 2-D")
        if len(states) != len(observations):
            raise ValueError("states and observations must align in time")
        if len(states) < 3:
            raise ValueError("need at least 3 timesteps to fit dynamics")

        with span("decoders.kalman.fit", timesteps=len(states)):
            x_prev, x_next = states[:-1], states[1:]
            self.A = _lstsq(x_prev, x_next, self.regularization).T
            resid_w = x_next - x_prev @ self.A.T
            self.W = _covariance(resid_w, self.regularization)

            self.H = _lstsq(states, observations, self.regularization).T
            resid_q = observations - states @ self.H.T
            self.Q = _covariance(resid_q, self.regularization)

    def decode(self, observations: np.ndarray,
               initial_state: np.ndarray | None = None) -> np.ndarray:
        """Run the filter over a feature sequence.

        Args:
            observations: (T, m) neural features.
            initial_state: (k,) prior mean; zeros if omitted.

        Returns:
            (T, k) posterior state means.

        Raises:
            RuntimeError: if called before :meth:`fit`.
        """
        if not self.fitted:
            raise RuntimeError("decoder must be fitted before decoding")
        observations = np.asarray(observations, dtype=float)
        k = self.A.shape[0]
        x = np.zeros(k) if initial_state is None else np.asarray(
            initial_state, dtype=float)
        p = np.eye(k)
        decoded = np.empty((len(observations), k))
        identity = np.eye(k)
        with span("decoders.kalman.decode", timesteps=len(observations)):
            for t, y in enumerate(observations):
                # Predict.
                x = self.A @ x
                p = self.A @ p @ self.A.T + self.W
                # Update.
                s = self.H @ p @ self.H.T + self.Q
                gain = p @ self.H.T @ np.linalg.solve(
                    s, np.eye(s.shape[0]))
                x = x + gain @ (y - self.H @ x)
                p = (identity - gain @ self.H) @ p
                decoded[t] = x
        inc("decoders.kalman_steps", len(observations))
        return decoded

    def score(self, states: np.ndarray, observations: np.ndarray) -> float:
        """Mean correlation across state dimensions between truth and
        decoded trajectories (the standard BCI decoding metric)."""
        decoded = self.decode(observations)
        states = np.asarray(states, dtype=float)
        correlations = []
        for dim in range(states.shape[1]):
            truth, est = states[:, dim], decoded[:, dim]
            if np.std(truth) == 0 or np.std(est) == 0:
                correlations.append(0.0)
            else:
                correlations.append(float(np.corrcoef(truth, est)[0, 1]))
        return float(np.mean(correlations))


def closed_loop_gain_batch(a: np.ndarray, w: np.ndarray,
                           h: np.ndarray, q: np.ndarray,
                           chunk: int = 512):
    """Batched one-step closed-loop Kalman operator over sessions.

    The closed-loop session decodes each feature window with a *fresh*
    :meth:`KalmanFilterDecoder.decode` call (``x = 0``, ``P = I``), so
    the per-window command is an affine function of the feature that
    is constant across the session.  This precomputes that operator
    for a stack of fitted models: decoding observation ``y`` of
    session ``i`` is then

        ``x_prior[i] + gain[i] @ (y - hx_prior[i])``

    bit-for-bit equal to the scalar decode of a 1-row input, because
    every matrix product below replays the scalar operation sequence
    per session slice (batched ``matmul``/``solve`` run the same BLAS
    and LAPACK kernels slice-by-slice).

    Args:
        a: (n, k, k) state transitions.
        w: (n, k, k) process noise covariances.
        h: (n, m, k) observation matrices.
        q: (n, m, m) observation noise covariances.
        chunk: sessions per batched solve (bounds peak memory; the
            result is independent of the chunking).

    Returns:
        ``(gain, x_prior, hx_prior)`` with shapes (n, k, m), (n, k),
        and (n, m).
    """
    a = np.asarray(a, dtype=float)
    w = np.asarray(w, dtype=float)
    h = np.asarray(h, dtype=float)
    q = np.asarray(q, dtype=float)
    n, k, _ = a.shape
    m = h.shape[1]
    gain = np.empty((n, k, m))
    x_prior = np.empty((n, k))
    hx_prior = np.empty((n, m))
    with span("decoders.kalman.gain_batch", sessions=n, channels=m):
        for start in range(0, n, chunk):
            sl = slice(start, min(start + chunk, n))
            ac, hc = a[sl], h[sl]
            # Predict from the reset state, replaying the scalar op
            # order: x = A @ 0, P = (A @ I) @ A.T + W.
            x0 = np.matmul(ac, np.zeros((k, 1)))
            p = np.matmul(np.matmul(ac, np.eye(k)),
                          np.swapaxes(ac, 1, 2)) + w[sl]
            s = np.matmul(np.matmul(hc, p),
                          np.swapaxes(hc, 1, 2)) + q[sl]
            gain[sl] = np.matmul(np.matmul(p, np.swapaxes(hc, 1, 2)),
                                 np.linalg.solve(s, np.eye(m)))
            x_prior[sl] = x0[:, :, 0]
            hx_prior[sl] = np.matmul(hc, x0)[:, :, 0]
    inc("decoders.kalman_gain_batches", n)
    return gain, x_prior, hx_prior


def _lstsq(x: np.ndarray, y: np.ndarray, ridge: float) -> np.ndarray:
    """Ridge-regularized least squares solve of x @ B = y."""
    gram = x.T @ x + ridge * np.eye(x.shape[1])
    return np.linalg.solve(gram, x.T @ y)


def _covariance(residuals: np.ndarray, ridge: float) -> np.ndarray:
    cov = residuals.T @ residuals / max(1, len(residuals) - 1)
    return cov + ridge * np.eye(cov.shape[0])
