"""Cycle-approximate functional simulation of the PE array.

Executes a dense layer on a weight-stationary array of ``mac_hw`` PEs with
time multiplexing, tracking cycles exactly as Eq. 11 predicts
(``MACseq * ceil(#MACop / #MAChw)``) and producing numerically correct
outputs (optionally with fixed-point quantization matching the paper's
8-bit datatype).  Tests cross-check the simulator against both the
analytical schedule model and the floating-point Dense layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.accel.tech import TechnologyNode


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one layer inference on the PE array.

    Attributes:
        outputs: the layer's output vector (post-ReLU if enabled).
        cycles: MAC cycles consumed (matches Eq. 11's step count).
        elapsed_s: cycles * tMAC.
        energy_j: active-MAC energy consumed.
        mac_steps: total accumulate steps executed.
    """

    outputs: np.ndarray
    cycles: int
    elapsed_s: float
    energy_j: float
    mac_steps: int


class PEArraySimulator:
    """A weight-stationary PE array executing one dense layer.

    Each PE holds the weight rows of the MACop assigned to it (its "ROM")
    and executes them sequentially; all PEs run in lock step, so the array
    finishes in ``MACseq * ceil(#MACop / #MAChw)`` cycles.

    Args:
        weight: (out_features, in_features) layer weights.
        bias: (out_features,) bias vector.
        mac_hw: number of physical PEs.
        tech: technology node for timing/energy.
        relu: apply the PE's ReLU stage to outputs.
        fixed_point_bits: if set, quantize weights and activations to this
            many fractional bits (the paper synthesizes an 8-bit datatype).
    """

    def __init__(self, weight: np.ndarray, bias: np.ndarray, mac_hw: int,
                 tech: TechnologyNode, relu: bool = True,
                 fixed_point_bits: int | None = None) -> None:
        weight = np.asarray(weight, dtype=float)
        bias = np.asarray(bias, dtype=float)
        if weight.ndim != 2:
            raise ValueError("weight must be 2-D (out, in)")
        if bias.shape != (weight.shape[0],):
            raise ValueError("bias shape must match output features")
        if mac_hw < 1:
            raise ValueError("need at least one PE")
        if mac_hw > weight.shape[0]:
            raise ValueError("#MAChw cannot exceed #MACop (Eq. 12)")
        self.weight = weight
        self.bias = bias
        self.mac_hw = mac_hw
        self.tech = tech
        self.relu = relu
        self.fixed_point_bits = fixed_point_bits

    def _quantize(self, values: np.ndarray) -> np.ndarray:
        if self.fixed_point_bits is None:
            return values
        scale = 2.0 ** self.fixed_point_bits
        return np.round(values * scale) / scale

    def run(self, inputs: np.ndarray) -> SimulationResult:
        """Execute one inference.

        Args:
            inputs: (in_features,) input activation vector.

        Returns:
            SimulationResult with outputs and exact cycle accounting.
        """
        inputs = np.asarray(inputs, dtype=float)
        out_features, in_features = self.weight.shape
        if inputs.shape != (in_features,):
            raise ValueError(
                f"expected input of shape ({in_features},), got "
                f"{inputs.shape}")

        x = self._quantize(inputs)
        w = self._quantize(self.weight)

        outputs = np.zeros(out_features)
        rounds = math.ceil(out_features / self.mac_hw)
        cycles = 0
        mac_steps = 0
        for round_idx in range(rounds):
            start = round_idx * self.mac_hw
            rows = range(start, min(start + self.mac_hw, out_features))
            # All PEs in this round step through MACseq accumulations in
            # lock step; idle PEs in a ragged final round still burn cycles.
            for step in range(in_features):
                for row in rows:
                    outputs[row] += w[row, step] * x[step]
                    mac_steps += 1
            cycles += in_features
        outputs += self._quantize(self.bias)
        if self.relu:
            outputs = np.maximum(outputs, 0.0)
        outputs = self._quantize(outputs)

        elapsed = cycles * self.tech.t_mac_s
        energy = mac_steps * self.tech.energy_per_mac_j
        return SimulationResult(outputs=outputs, cycles=cycles,
                                elapsed_s=elapsed, energy_j=energy,
                                mac_steps=mac_steps)
