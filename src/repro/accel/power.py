"""Component-level accelerator power model reproducing Fig. 9.

The Fig. 9 accelerator is a DNN-layer engine: a dataflow FSM with input and
output registers drives an array of ``MAChw`` processing elements, each
containing a MAC unit, a ReLU, a small FSM, and a ROM holding its share of
the layer's weights.  The paper synthesizes twelve design points in 130 nm
and observes that PE power grows from ~25 % of layer power in small designs
to ~96 % in large ones, justifying the MAC-only lower bound used downstream.

This model charges (DESIGN.md substitution 1):

* per PE: the MAC/ReLU/FSM core (``p_pe_core``) plus its ROM words
  (``p_rom_word`` each; a PE time-multiplexing k MACop stores
  ``k * MACseq`` weights),
* for the layer control: a fixed dataflow FSM (``p_ctrl_base``) plus
  input registers (MACseq of them) and output registers (#MACop).

The default coefficients are fitted to the Fig. 9 trend (25 % PE share for
designs 1-5, ~80 % at design 9, ~96 % at design 12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.accel.tech import TECH_130NM, TechnologyNode
from repro.units import mw, nw, to_mw, uw


@dataclass(frozen=True)
class LayerDesignPoint:
    """One Fig. 9 accelerator configuration.

    Attributes:
        index: 1-based design number as in the Fig. 9 table.
        mac_seq: accumulate depth per MACop.
        mac_hw: physical MAC units instantiated.
        mac_ops: independent MACop in the layer.
    """

    index: int
    mac_seq: int
    mac_hw: int
    mac_ops: int

    def __post_init__(self) -> None:
        if min(self.mac_seq, self.mac_hw, self.mac_ops) <= 0:
            raise ValueError("design-point parameters must be positive")
        if self.mac_hw > self.mac_ops:
            raise ValueError("#MAChw cannot exceed #MACop (Eq. 12)")

    @property
    def rom_words_per_pe(self) -> int:
        """Weights stored in each PE's ROM."""
        return math.ceil(self.mac_ops / self.mac_hw) * self.mac_seq


#: The twelve design points of the Fig. 9 table.
FIG9_DESIGN_POINTS: tuple[LayerDesignPoint, ...] = (
    LayerDesignPoint(1, 256, 4, 4),
    LayerDesignPoint(2, 256, 4, 8),
    LayerDesignPoint(3, 256, 4, 16),
    LayerDesignPoint(4, 256, 4, 32),
    LayerDesignPoint(5, 256, 4, 64),
    LayerDesignPoint(6, 256, 8, 64),
    LayerDesignPoint(7, 256, 16, 64),
    LayerDesignPoint(8, 256, 32, 64),
    LayerDesignPoint(9, 256, 64, 64),
    LayerDesignPoint(10, 512, 128, 128),
    LayerDesignPoint(11, 1024, 256, 256),
    LayerDesignPoint(12, 2048, 512, 512),
)


@dataclass(frozen=True)
class AcceleratorPowerModel:
    """Power coefficients of the Fig. 9 layer accelerator.

    Attributes:
        tech: technology node providing the MAC core power.
        p_rom_word_w: ROM leakage+read power per stored weight word [W].
        p_reg_w: power per input/output register [W].
        p_ctrl_base_w: fixed dataflow-FSM power [W].
        pe_overhead_w: non-MAC PE logic (ReLU + local FSM) [W].
    """

    tech: TechnologyNode = TECH_130NM
    p_rom_word_w: float = nw(1.0)
    p_reg_w: float = uw(0.768)
    p_ctrl_base_w: float = mw(1.0)
    pe_overhead_w: float = 0.0

    @property
    def p_pe_core_w(self) -> float:
        """Power of one PE's MAC + ReLU + FSM core."""
        return self.tech.p_mac_w + self.pe_overhead_w

    def pe_power(self, point: LayerDesignPoint) -> float:
        """Total PE-array power [W] for a design point."""
        per_pe = self.p_pe_core_w + self.p_rom_word_w * point.rom_words_per_pe
        return point.mac_hw * per_pe

    def control_power(self, point: LayerDesignPoint) -> float:
        """Dataflow FSM + register power [W] for a design point."""
        registers = point.mac_seq + point.mac_ops
        return self.p_ctrl_base_w + self.p_reg_w * registers

    def layer_power(self, point: LayerDesignPoint) -> float:
        """Total accelerator power [W] for a design point."""
        return self.pe_power(point) + self.control_power(point)

    def pe_fraction(self, point: LayerDesignPoint) -> float:
        """PE power / layer power — the Fig. 9 right-hand series."""
        return self.pe_power(point) / self.layer_power(point)

    def layer_latency_s(self, point: LayerDesignPoint) -> float:
        """Execution time of the layer (Eq. 11 with this allocation)."""
        rounds = math.ceil(point.mac_ops / point.mac_hw)
        return point.mac_seq * self.tech.t_mac_s * rounds


def fig9_power_table(model: AcceleratorPowerModel | None = None,
                     ) -> list[dict[str, float]]:
    """The Fig. 9 dataset: one row per design point.

    Returns:
        Rows with keys: design, mac_seq, mac_hw, mac_ops, layer_power_mw,
        pe_power_mw, pe_fraction.
    """
    model = model or AcceleratorPowerModel()
    rows = []
    for point in FIG9_DESIGN_POINTS:
        rows.append({
            "design": point.index,
            "mac_seq": point.mac_seq,
            "mac_hw": point.mac_hw,
            "mac_ops": point.mac_ops,
            "layer_power_mw": to_mw(model.layer_power(point)),
            "pe_power_mw": to_mw(model.pe_power(point)),
            "pe_fraction": model.pe_fraction(point),
        })
    return rows
