"""MAC-unit scheduling: Eq. 11-12 (non-pipelined) and Eq. 14-15 (pipelined).

Given the per-layer (MACseq_i, #MACop_i) profile of a DNN and the real-time
deadline t = 1/f set by the NI sampling rate (Section 5.3, Optimization),
these solvers find the minimum number of physical MAC units (``#MAChw``)
that still meets the deadline:

* **Non-pipelined** (Eq. 11): one shared pool of ``#MAChw`` units executes
  the layers in sequence;

      t_i = MACseq_i * tMAC * ceil(#MACop_i / #MAChw),   sum_i t_i <= t

  subject to ``0 < #MAChw <= max_i #MACop_i`` (Eq. 12).

* **Pipelined** (Eq. 14): each layer i owns ``#MAChw_i`` units and layers
  overlap across inferences, so only the slowest stage must fit in t:

      max_i t_i <= t,   #MAChw = sum_i #MAChw_i   (Eq. 15)

The resulting Eq. 13 power lower bound is ``P_comp = #MAChw * PMAC``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.accel.tech import TechnologyNode
from repro.dnn.macs import LayerMacs


@dataclass(frozen=True)
class Schedule:
    """A feasible accelerator schedule.

    Attributes:
        mac_units: total physical MAC units (#MAChw).
        per_layer_units: unit allocation per layer (equal-valued entries
            referencing the shared pool in the non-pipelined case).
        runtime_s: completion time for one inference (non-pipelined) or the
            slowest stage's time (pipelined initiation interval).
        pipelined: scheduling mode.
        deadline_s: the real-time constraint the schedule satisfies.
    """

    mac_units: int
    per_layer_units: tuple[int, ...]
    runtime_s: float
    pipelined: bool
    deadline_s: float

    def power_w(self, tech: TechnologyNode) -> float:
        """Eq. 13 lower bound: P_comp = #MAChw * PMAC."""
        return self.mac_units * tech.p_mac_w


def _layer_time(profile: LayerMacs, units: int,
                tech: TechnologyNode) -> float:
    """Eq. 11 layer runtime with ``units`` MAC units."""
    rounds = math.ceil(profile.mac_ops / units)
    return profile.mac_seq * tech.t_mac_s * rounds


def _total_time(profiles: list[LayerMacs], units: int,
                tech: TechnologyNode) -> float:
    return sum(_layer_time(p, units, tech) for p in profiles)


def schedule_non_pipelined(profiles: list[LayerMacs],
                           deadline_s: float,
                           tech: TechnologyNode) -> Schedule | None:
    """Minimal shared-pool schedule (Eq. 11-12), or None when infeasible.

    Feasibility is monotone in the unit count, so the minimum is found by
    bisection over [1, max_i #MACop_i].
    """
    _validate(profiles, deadline_s)
    max_units = max(p.mac_ops for p in profiles)
    if _total_time(profiles, max_units, tech) > deadline_s:
        return None
    lo, hi = 1, max_units
    while lo < hi:
        mid = (lo + hi) // 2
        if _total_time(profiles, mid, tech) <= deadline_s:
            hi = mid
        else:
            lo = mid + 1
    runtime = _total_time(profiles, lo, tech)
    return Schedule(mac_units=lo,
                    per_layer_units=tuple([lo] * len(profiles)),
                    runtime_s=runtime, pipelined=False,
                    deadline_s=deadline_s)


def schedule_pipelined(profiles: list[LayerMacs],
                       deadline_s: float,
                       tech: TechnologyNode) -> Schedule | None:
    """Minimal per-layer allocation (Eq. 14-15), or None when infeasible.

    A layer is infeasible even with ``#MAChw_i = #MACop_i`` when a single
    MACop sequence alone exceeds the deadline (MACseq_i * tMAC > t) — the
    intra-MACop serial dependency cannot be parallelized.
    """
    _validate(profiles, deadline_s)
    allocation = []
    worst = 0.0
    for profile in profiles:
        seq_time = profile.mac_seq * tech.t_mac_s
        rounds_budget = math.floor(deadline_s / seq_time)
        if rounds_budget < 1:
            return None
        units = math.ceil(profile.mac_ops / rounds_budget)
        allocation.append(units)
        worst = max(worst, _layer_time(profile, units, tech))
    return Schedule(mac_units=sum(allocation),
                    per_layer_units=tuple(allocation),
                    runtime_s=worst, pipelined=True,
                    deadline_s=deadline_s)


def best_schedule(profiles: list[LayerMacs],
                  deadline_s: float,
                  tech: TechnologyNode) -> Schedule | None:
    """The lower-power of the two scheduling modes (paper: "we report the
    best result between a pipelined and a non-pipelined design")."""
    candidates = [s for s in (schedule_non_pipelined(profiles, deadline_s,
                                                     tech),
                              schedule_pipelined(profiles, deadline_s, tech))
                  if s is not None]
    if not candidates:
        return None
    return min(candidates, key=lambda s: s.mac_units)


@lru_cache(maxsize=4096)
def cached_best_schedule(profiles: tuple[LayerMacs, ...],
                         deadline_s: float,
                         tech: TechnologyNode) -> Schedule | None:
    """Memoized :func:`best_schedule` over hashable profile tuples.

    The strategy sweeps evaluate the same (workload shape, deadline,
    technology) triple once per SoC per grid point; profiles, deadlines
    and technology nodes are all hashable value types, so the schedule
    search only ever runs once per distinct triple in a process.
    """
    return best_schedule(list(profiles), deadline_s, tech)


def compute_power_lower_bound(profiles: list[LayerMacs],
                              deadline_s: float,
                              tech: TechnologyNode) -> float | None:
    """Eq. 13: minimal P_comp [W] over both modes, or None when infeasible."""
    schedule = best_schedule(profiles, deadline_s, tech)
    if schedule is None:
        return None
    return schedule.power_w(tech)


def _validate(profiles: list[LayerMacs], deadline_s: float) -> None:
    if not profiles:
        raise ValueError("need at least one compute layer")
    if deadline_s <= 0:
        raise ValueError("deadline must be positive")
    for profile in profiles:
        if not profile.is_compute:
            raise ValueError("schedules require compute layers "
                             "(non-zero MAC profiles)")
