"""On-chip interconnect model — the routing overhead of Section 8.

"As designs grow, secondary power effects such as routing overhead ...
will become more significant."  For the weight-stationary PE array the
dominant wires are the input broadcast (one activation to all PEs each
cycle) and the output collection tree.  Wire energy scales with length;
array side length scales with sqrt(#PE * PE area), so broadcast energy
per bit grows as sqrt(MAChw) — sub-linear, but no longer negligible at
the hundreds-of-PEs scale of the Fig. 9 large designs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.accel.schedule import Schedule
from repro.accel.tech import TechnologyNode
from repro.dnn.network import Network

#: Wire energy per bit per millimeter at 45 nm-class nodes [J/(bit*mm)].
DEFAULT_WIRE_ENERGY_J_PER_BIT_MM = 6e-14

#: PE tile area including its ROM slice [mm^2].
DEFAULT_PE_AREA_MM2 = 0.01


@dataclass(frozen=True)
class InterconnectModel:
    """Broadcast/collection wiring energy of a PE array.

    Attributes:
        wire_energy_j_per_bit_mm: switching energy per bit per mm.
        pe_area_mm2: physical footprint of one PE tile.
        word_bits: activation word width on the wires.
    """

    wire_energy_j_per_bit_mm: float = DEFAULT_WIRE_ENERGY_J_PER_BIT_MM
    pe_area_mm2: float = DEFAULT_PE_AREA_MM2
    word_bits: int = 8

    def __post_init__(self) -> None:
        if self.wire_energy_j_per_bit_mm < 0:
            raise ValueError("wire energy must be non-negative")
        if self.pe_area_mm2 <= 0:
            raise ValueError("PE area must be positive")
        if self.word_bits < 1:
            raise ValueError("word width must be >= 1")

    def array_side_mm(self, mac_units: int) -> float:
        """Side length of a square array of ``mac_units`` PEs."""
        if mac_units < 1:
            raise ValueError("need at least one PE")
        return math.sqrt(mac_units * self.pe_area_mm2)

    def broadcast_energy_per_word_j(self, mac_units: int) -> float:
        """Energy to broadcast one activation word across the array.

        An H-tree broadcast drives total wire length ~ 2x the array side
        per level-summed distribution; the standard first-order estimate
        charges one traversal of the array diagonal.
        """
        length = math.sqrt(2.0) * self.array_side_mm(mac_units)
        return self.word_bits * self.wire_energy_j_per_bit_mm * length

    def inference_energy_j(self, network: Network,
                           schedule: Schedule) -> float:
        """Interconnect energy of one inference.

        Per layer: one broadcast per accumulation step per round (input
        distribution) plus one collection per MACop (output gather), each
        traversing the allocated sub-array.
        """
        profiles = network.mac_profiles()
        if len(profiles) != len(schedule.per_layer_units):
            raise ValueError("schedule does not match the network")
        total = 0.0
        for profile, units in zip(profiles, schedule.per_layer_units):
            per_word = self.broadcast_energy_per_word_j(units)
            rounds = math.ceil(profile.mac_ops / units)
            broadcasts = profile.mac_seq * rounds
            collections = profile.mac_ops
            total += (broadcasts + collections) * per_word
        return total

    def power_w(self, network: Network, schedule: Schedule,
                inference_rate_hz: float) -> float:
        """Average interconnect power at an inference rate.

        Raises:
            ValueError: for non-positive rates.
        """
        if inference_rate_hz <= 0:
            raise ValueError("inference rate must be positive")
        return (self.inference_energy_j(network, schedule)
                * inference_rate_hz)

    def overhead_fraction(self, network: Network, schedule: Schedule,
                          inference_rate_hz: float,
                          tech: TechnologyNode) -> float:
        """Interconnect power relative to the Eq. 13 MAC bound."""
        mac_power = schedule.power_w(tech)
        if mac_power == 0:
            return math.inf
        return self.power_w(network, schedule,
                            inference_rate_hz) / mac_power
