"""Technology nodes and post-synthesis MAC parameters.

The paper's Results paragraph (Section 5.3) publishes the two numbers the
whole computation analysis consumes per node:

* 45 nm (NanGate open cell library, 100 MHz): tMAC = 2 ns, PMAC = 0.05 mW.
* 12 nm (Section 6.2 technology-scaling step): tMAC = 1 ns, PMAC = 0.026 mW.

The 130 nm entry anchors the Fig. 9 accelerator study (TSMC 130 nm at
100 MHz); the paper reports the resulting power trends rather than unit
constants, so its MAC parameters here are chosen on the published 45 nm
point scaled by classical constant-field rules and validated against the
Fig. 9 power-fraction trend (DESIGN.md substitution 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import mw, ns


@dataclass(frozen=True)
class TechnologyNode:
    """Post-synthesis MAC characteristics of a technology node.

    Attributes:
        name: node label ("45nm"...).
        t_mac_s: latency of one MAC accumulate step [s].
        p_mac_w: power of one busy MAC unit [W].
    """

    name: str
    t_mac_s: float
    p_mac_w: float

    def __post_init__(self) -> None:
        if self.t_mac_s <= 0 or self.p_mac_w <= 0:
            raise ValueError("MAC latency and power must be positive")

    @property
    def energy_per_mac_j(self) -> float:
        """Energy of one accumulate step [J] = PMAC * tMAC."""
        return self.p_mac_w * self.t_mac_s

    def steps_per_second(self) -> float:
        """Throughput of a single MAC unit [steps/s]."""
        return 1.0 / self.t_mac_s


#: Paper Section 5.3, Results: NanGate 45 nm at 100 MHz.
TECH_45NM = TechnologyNode(name="45nm", t_mac_s=ns(2.0), p_mac_w=mw(0.05))

#: Paper Section 6.2, technology-scaling optimization target.
TECH_12NM = TechnologyNode(name="12nm", t_mac_s=ns(1.0), p_mac_w=mw(0.026))

#: Fig. 9 accelerator synthesis node (TSMC 130 nm at 100 MHz); constants
#: back-projected from the 45 nm point (roughly 2x latency, 2x power).
TECH_130NM = TechnologyNode(name="130nm", t_mac_s=ns(4.0), p_mac_w=mw(0.10))

_NODES = {node.name: node for node in (TECH_130NM, TECH_45NM, TECH_12NM)}


def technology_by_name(name: str) -> TechnologyNode:
    """Look up a built-in node by label.

    Raises:
        KeyError: for unknown node names.
    """
    try:
        return _NODES[name]
    except KeyError:
        raise KeyError(
            f"unknown technology {name!r}; available: {sorted(_NODES)}"
        ) from None
