"""Weight-stationary DNN accelerator model (paper Section 5.3, Fig. 9).

The paper bounds on-implant DNN power from below by counting the MAC units
(``#MAChw``) a layer schedule needs to meet the real-time deadline, then
charging each unit its post-synthesis power.  This package implements:

* the technology library with the paper's published MAC synthesis points
  (45 nm: tMAC = 2 ns / PMAC = 0.05 mW; 12 nm: tMAC = 1 ns /
  PMAC = 0.026 mW; 130 nm for the Fig. 9 accelerator),
* the schedule solvers of Eq. 11-12 (non-pipelined) and Eq. 14-15
  (pipelined) that minimize ``#MAChw``,
* the component-level accelerator power model reproducing the Fig. 9
  design-point study (PE power fraction 25 % -> ~96 %), and
* a cycle-approximate functional simulator that executes a dense layer on
  the PE array and checks both results and cycle counts against the
  analytical model.
"""

from repro.accel.tech import (
    TechnologyNode,
    TECH_130NM,
    TECH_45NM,
    TECH_12NM,
    technology_by_name,
)
from repro.accel.schedule import (
    Schedule,
    schedule_non_pipelined,
    schedule_pipelined,
    best_schedule,
    compute_power_lower_bound,
)
from repro.accel.power import (
    AcceleratorPowerModel,
    LayerDesignPoint,
    FIG9_DESIGN_POINTS,
    fig9_power_table,
)
from repro.accel.simulate import PEArraySimulator, SimulationResult
from repro.accel.memory import MemoryModel, MarginReport, assess_memory_margin
from repro.accel.interconnect import InterconnectModel

__all__ = [
    "TechnologyNode",
    "TECH_130NM",
    "TECH_45NM",
    "TECH_12NM",
    "technology_by_name",
    "Schedule",
    "schedule_non_pipelined",
    "schedule_pipelined",
    "best_schedule",
    "compute_power_lower_bound",
    "AcceleratorPowerModel",
    "LayerDesignPoint",
    "FIG9_DESIGN_POINTS",
    "fig9_power_table",
    "PEArraySimulator",
    "SimulationResult",
    "MemoryModel",
    "MarginReport",
    "assess_memory_margin",
    "InterconnectModel",
]
