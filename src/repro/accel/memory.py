"""Second-order accelerator costs: on-chip memory traffic and buffers.

The Eq. 13 bound deliberately excludes "overheads from local memory,
routing, and data movement"; the paper argues such second-order factors
"may be incorporated using the margin between the lower bound and the
total power budget".  This module provides that incorporation: an SRAM
energy model, per-layer buffer sizing from the actual network shapes, and
the resulting memory power — so analyses can report how much of the
margin the memory system actually eats.

Access counts per inference for a weight-stationary PE array:

* weight reads: one per MAC step (from the PE-local ROM — already inside
  the Fig. 9 PE model, so *excluded* here);
* input-activation reads: each MACop streams the layer input once, but a
  broadcast bus amortizes it across the ``MAChw`` parallel PEs — so
  ``MACseq * ceil(MACop / MAChw)`` reads;
* output-activation writes: one per MACop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.accel.schedule import Schedule
from repro.accel.tech import TechnologyNode
from repro.dnn.macs import LayerMacs
from repro.dnn.network import Network
from repro.units import fj

#: SRAM read/write energy per (8-bit) access at 45 nm-class nodes [J].
DEFAULT_SRAM_ACCESS_ENERGY_J = fj(50.0)

#: SRAM leakage per stored bit [W].
DEFAULT_SRAM_LEAKAGE_W_PER_BIT = 1e-11


@dataclass(frozen=True)
class MemoryModel:
    """On-chip activation-buffer energy model.

    Attributes:
        access_energy_j: energy per buffer access (one activation word).
        leakage_w_per_bit: standby power per stored bit.
        word_bits: activation word width (the paper's 8-bit datatype).
    """

    access_energy_j: float = DEFAULT_SRAM_ACCESS_ENERGY_J
    leakage_w_per_bit: float = DEFAULT_SRAM_LEAKAGE_W_PER_BIT
    word_bits: int = 8

    def __post_init__(self) -> None:
        if self.access_energy_j < 0 or self.leakage_w_per_bit < 0:
            raise ValueError("energies must be non-negative")
        if self.word_bits < 1:
            raise ValueError("word width must be >= 1")

    def layer_accesses(self, profile: LayerMacs, mac_units: int) -> int:
        """Buffer accesses for one layer inference (reads + writes)."""
        if mac_units < 1:
            raise ValueError("need at least one MAC unit")
        rounds = math.ceil(profile.mac_ops / mac_units)
        input_reads = profile.mac_seq * rounds
        output_writes = profile.mac_ops
        return input_reads + output_writes

    def buffer_bits(self, network: Network) -> int:
        """Double-buffered activation storage for the widest boundary."""
        input_values = 1
        for dim in network.input_shape:
            input_values *= dim
        widest = max([input_values]
                     + network.compute_layer_output_values())
        return 2 * widest * self.word_bits

    def inference_energy_j(self, network: Network,
                           schedule: Schedule) -> float:
        """Activation-traffic energy of one inference [J]."""
        profiles = network.mac_profiles()
        if len(profiles) != len(schedule.per_layer_units):
            raise ValueError("schedule does not match the network")
        accesses = sum(
            self.layer_accesses(profile, units)
            for profile, units in zip(profiles, schedule.per_layer_units))
        return accesses * self.access_energy_j

    def power_w(self, network: Network, schedule: Schedule,
                inference_rate_hz: float) -> float:
        """Average memory power: dynamic traffic plus buffer leakage."""
        if inference_rate_hz <= 0:
            raise ValueError("inference rate must be positive")
        dynamic = (self.inference_energy_j(network, schedule)
                   * inference_rate_hz)
        leakage = self.buffer_bits(network) * self.leakage_w_per_bit
        return dynamic + leakage


@dataclass(frozen=True)
class MarginReport:
    """How second-order memory costs consume the Eq. 13 margin.

    Attributes:
        mac_power_w: the Eq. 13 lower bound.
        memory_power_w: activation buffer power.
        available_margin_w: budget headroom above the lower bound.
    """

    mac_power_w: float
    memory_power_w: float
    available_margin_w: float

    @property
    def memory_overhead_fraction(self) -> float:
        """Memory power relative to the MAC lower bound."""
        if self.mac_power_w == 0:
            return math.inf if self.memory_power_w else 0.0
        return self.memory_power_w / self.mac_power_w

    @property
    def margin_consumed_fraction(self) -> float:
        """Share of the remaining budget margin the memory system eats."""
        if self.available_margin_w <= 0:
            return math.inf
        return self.memory_power_w / self.available_margin_w

    @property
    def still_fits(self) -> bool:
        """True while memory fits inside the available margin."""
        return self.memory_power_w <= self.available_margin_w


def assess_memory_margin(network: Network, schedule: Schedule,
                         inference_rate_hz: float,
                         budget_margin_w: float,
                         tech: TechnologyNode,
                         model: MemoryModel | None = None) -> MarginReport:
    """Fold the memory model into a Fig. 10-style feasibility check."""
    model = model or MemoryModel()
    return MarginReport(
        mac_power_w=schedule.power_w(tech),
        memory_power_w=model.power_w(network, schedule,
                                     inference_rate_hz),
        available_margin_w=budget_margin_w,
    )
