"""Stage: one node of a declarative experiment graph.

A stage wraps a plain module-level function with a *contract*: the
value names it consumes (``inputs``), the value names it produces
(``outputs``), fixed per-node constants (``consts``), and the per-node
policies the scheduler applies on its behalf — caching
(:mod:`repro.cache`), bounded retries and timeouts
(:mod:`repro.fault`), and a derived seed stream
(:func:`repro.perf.seeds.derive_stream_seed`).

The function itself stays ordinary Python: it takes its inputs (plus
consts, plus ``seed`` when ``seed_label`` is set) as keyword arguments
and returns a dict mapping each declared output name to its value.
Because the contract is declared, the scheduler can dispatch stages in
any valid topological order — or across the warm worker pool — and the
static analyzer (``experiment-contract`` rule) can check declared
inputs/outputs against what the function actually reads and returns.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = ["Stage"]

#: Input name the scheduler injects for seeded stages; stages may not
#: declare it themselves.
SEED_INPUT = "seed"


@dataclass(frozen=True)
class Stage:
    """One node of an :class:`repro.dag.ExperimentGraph`.

    Attributes:
        name: node id, unique within its graph.
        fn: module-level function implementing the stage.  Must be
            importable from the driver module (workers re-resolve it by
            name), accept ``inputs`` + ``consts`` (+ ``seed`` when
            ``seed_label`` is set) as keyword arguments, and return a
            dict with exactly the declared ``outputs`` as keys.
        inputs: value names consumed, each produced by an earlier stage
            or declared as a graph parameter.
        outputs: value names produced; unique across the graph.
        consts: fixed keyword arguments bound at graph build time
            (how one function fans out into several nodes, e.g. one
            explore node per SoC).
        seed_label: when set, the scheduler passes
            ``seed=derive_stream_seed(base, "dag", seed_label)`` — a
            stream independent of dispatch order, so any valid
            topological order replays identically.
        cache: opt the node into stage-granular incremental recompute
            when the scheduler runs with a cache store.
        retry: extra attempts after a failure (None = the engine
            default / fault-plan retry budget).
        timeout_s: per-attempt wall-clock bound (pool dispatch only; a
            serial scheduler cannot preempt).  None = engine default.
    """

    name: str
    fn: Callable[..., Mapping[str, Any]]
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    consts: Mapping[str, Any] = field(default_factory=dict)
    seed_label: str | None = None
    cache: bool = True
    retry: int | None = None
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "outputs", tuple(self.outputs))
        object.__setattr__(self, "consts", dict(self.consts))
        if not self.name:
            raise ValueError("stage name must be non-empty")
        if not callable(self.fn):
            raise TypeError(f"stage {self.name!r}: fn is not callable")
        if self.retry is not None and self.retry < 0:
            raise ValueError(f"stage {self.name!r}: retry must be >= 0")

    @property
    def wants_seed(self) -> bool:
        """True when the scheduler injects a derived ``seed`` kwarg."""
        return self.seed_label is not None

    def call_kwargs(self, values: Mapping[str, Any],
                    seed: int | None = None) -> dict[str, Any]:
        """Assemble the keyword arguments for one execution.

        ``values`` is the scheduler's name -> value environment; the
        stage picks out its declared inputs, binds its consts, and adds
        the injected seed when :attr:`wants_seed`.
        """
        kwargs = {name: values[name] for name in self.inputs}
        kwargs.update(self.consts)
        if self.wants_seed:
            kwargs[SEED_INPUT] = seed
        return kwargs

    def check_signature(self) -> None:
        """Validate the contract against ``fn``'s actual signature.

        Every declared input/const (and the injected seed) must be an
        accepted parameter, and every required parameter must be
        covered — unless the function takes ``**kwargs``, which opts it
        out of the static half of the contract (runtime output checking
        still applies).
        """
        signature = inspect.signature(self.fn)
        params = signature.parameters
        if any(p.kind is inspect.Parameter.VAR_KEYWORD
               for p in params.values()):
            return
        accepted = {name for name, p in params.items()
                    if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                                  inspect.Parameter.KEYWORD_ONLY)}
        provided = set(self.inputs) | set(self.consts)
        if self.wants_seed:
            provided.add(SEED_INPUT)
        unknown = sorted(provided - accepted)
        if unknown:
            raise TypeError(
                f"stage {self.name!r}: declared values {unknown} are not "
                f"parameters of {self.fn.__name__}()")
        required = {name for name, p in params.items()
                    if p.default is inspect.Parameter.empty
                    and p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                                   inspect.Parameter.KEYWORD_ONLY)}
        missing = sorted(required - provided)
        if missing:
            raise TypeError(
                f"stage {self.name!r}: required parameters {missing} of "
                f"{self.fn.__name__}() are not declared as inputs or "
                f"consts")

    def check_outputs(self, produced: Mapping[str, Any]) -> None:
        """Runtime half of the contract: returned keys must equal the
        declared outputs exactly."""
        if not isinstance(produced, Mapping):
            raise TypeError(
                f"stage {self.name!r}: fn must return a dict of outputs, "
                f"got {type(produced).__name__}")
        got = set(produced)
        declared = set(self.outputs)
        if got != declared:
            extra = sorted(got - declared)
            missing = sorted(declared - got)
            raise ValueError(
                f"stage {self.name!r}: returned outputs do not match the "
                f"declaration (missing={missing}, undeclared={extra})")
