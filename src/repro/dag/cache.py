"""Node-level cache keys and output (de)serialization for the DAG
scheduler.

Stage-granular incremental recompute needs a *per-node* content
address.  A node's key folds in:

* a three-part source fingerprint (:func:`stage_fingerprint`): the
  source segment of the stage function itself, the driver module's
  "shell" (everything outside its top-level function bodies — imports,
  constants, Stage declarations), and the transitive in-package import
  closure *excluding* the driver module.  Editing one stage function
  therefore changes exactly that node's key; editing module constants
  or an imported ``repro.*`` module invalidates every node of the
  driver;
* the keys of the producing nodes for each input (provenance, not
  values) — so invalidation propagates to descendants without hashing
  large intermediate values — and a value digest for graph parameters;
* the node's consts, its injected seed (when seeded), and the
  environment (:func:`repro.cache.keys.environment_fields`).

Because provenance flows through keys, every node's key is computable
up front from the graph alone — the scheduler derives all keys before
dispatch, in any order.

Outputs are stored in the same JSON entry format as the driver/stage
caches (:mod:`repro.cache.store`): JSON-able values pass through
:func:`repro.cache.stages.encode_result` (exact ndarray round-trip),
:class:`~repro.experiments.base.ExperimentResult` uses the driver-cache
payload codec, and anything else (SoC records, link budgets, fleet
specs) falls back to pickled bytes in base64.
"""

from __future__ import annotations

import ast
import base64
import hashlib
import pickle
from pathlib import Path
from typing import Any, Mapping

from repro.analysis.engine import AnalysisError
from repro.cache.fingerprint import (default_root, import_closure,
                                     module_source_path, source_digest)
from repro.cache.keys import (KEY_SCHEMA_VERSION, environment_fields,
                              value_digest)
from repro.cache.stages import decode_result, encode_result

__all__ = ["NODE_KIND", "decode_outputs", "encode_outputs", "node_key",
           "stage_fingerprint"]

#: Entry kind recorded for node-cache entries (drives the store's
#: per-kind ``cache.dag_node.hits`` / ``.puts`` counters).
NODE_KIND = "dag_node"


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def stage_fingerprint(module: str, fn_name: str,
                      root: Path | None = None) -> dict[str, str]:
    """Three-part source fingerprint of one stage function.

    Args:
        module: dotted driver module name
            (e.g. ``"repro.experiments.fig7"``).
        fn_name: name of the module-level stage function.
        root: source root to resolve under (tmp-tree tests pass one);
            defaults to the imported package's tree.

    Returns:
        ``{"stage": ..., "shell": ..., "deps": ...}`` hex digests (see
        the module docstring for what each part covers).

    Raises:
        AnalysisError: when the module or the function cannot be found.
    """
    root = (root or default_root()).resolve()
    path = module_source_path(module, root)
    if path is None:
        raise AnalysisError(f"no source for module {module!r} under "
                            f"{root}")
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source)
    lines: list[str | None] = list(source.splitlines())
    stage_sha = None
    for node in tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        first = min([node.lineno]
                    + [d.lineno for d in node.decorator_list]) - 1
        for i in range(first, node.end_lineno):
            lines[i] = None
        # Keep a positional marker so reordering functions still
        # changes the shell.
        lines[first] = f"<def {node.name}>"
        if node.name == fn_name:
            stage_sha = _sha(ast.get_source_segment(source, node) or "")
    if stage_sha is None:
        raise AnalysisError(f"module {module!r} has no top-level "
                            f"function {fn_name!r}")
    shell_sha = _sha("\n".join(line for line in lines
                               if line is not None))
    closure = import_closure(module, root)
    deps = hashlib.sha256()
    for name in sorted(closure):
        if name == module:
            continue
        deps.update(f"{name}:{source_digest(closure[name])}\n".encode())
    return {"stage": stage_sha, "shell": shell_sha,
            "deps": deps.hexdigest()}


def node_key(graph_name: str, node_name: str,
             fingerprint: Mapping[str, str],
             inputs: Mapping[str, str],
             consts: Mapping[str, Any],
             seed: int | None) -> str:
    """Content address of one node execution.

    ``inputs`` maps each input name to its provenance digest — the
    producing node's key, or ``value_digest`` of a graph parameter —
    so a changed ancestor changes every descendant key.
    """
    return value_digest({
        "schema": KEY_SCHEMA_VERSION,
        "kind": NODE_KIND,
        "graph": graph_name,
        "node": node_name,
        "fingerprint": dict(fingerprint),
        "inputs": dict(inputs),
        "consts": value_digest(dict(consts)),
        "seed": seed,
        "env": environment_fields(),
    })


def encode_outputs(outputs: Mapping[str, Any]) -> dict[str, Any]:
    """JSON-able encoding of a node's output dict (see module
    docstring for the codec tiers)."""
    return {name: _encode_value(value)
            for name, value in outputs.items()}


def decode_outputs(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Inverse of :func:`encode_outputs`."""
    return {name: _decode_value(value)
            for name, value in payload.items()}


def _encode_value(value: Any) -> dict[str, Any]:
    from repro.experiments.base import ExperimentResult

    if isinstance(value, ExperimentResult):
        from repro.cache.runner import result_payload
        return {"__result__": result_payload(value, csv_text="")}
    if _lossless(value):
        return {"__json__": encode_result(value)}
    return {"__pickle__": base64.b64encode(
        pickle.dumps(value)).decode("ascii")}


def _decode_value(record: dict[str, Any]) -> Any:
    if "__result__" in record:
        from repro.cache.runner import result_from_payload
        return result_from_payload(record["__result__"])
    if "__json__" in record:
        return decode_result(record["__json__"])
    return pickle.loads(base64.b64decode(record["__pickle__"]))


def _lossless(value: Any) -> bool:
    """True when the JSON tier round-trips ``value`` exactly.

    Tuples (decoded as lists), non-string dict keys (stringified), and
    NumPy scalars (decoded as Python scalars) are excluded — they fall
    through to the pickle tier instead of coming back subtly changed.
    """
    import numpy as np

    if value is None or isinstance(value, (bool, int, float, str)):
        return not isinstance(value, np.generic)
    if isinstance(value, np.ndarray):
        return True
    if isinstance(value, list):
        return all(_lossless(item) for item in value)
    if isinstance(value, dict):
        return all(isinstance(key, str) and _lossless(item)
                   for key, item in value.items())
    return False
