"""Topological dispatch of experiment graphs — serial or warm-pool.

One scheduler runs every :class:`~repro.dag.graph.ExperimentGraph`:

* **any valid order, one timeline** — the caller may supply any valid
  topological order (the schedule-fuzzing suite does); per-node events
  and spans are captured into per-node blocks as nodes run
  (:meth:`repro.obs.events.EventLog.export_tail` /
  :meth:`~repro.obs.events.EventLog.truncate`) and re-adopted in the
  graph's canonical declaration order at the end, so ``events.jsonl``
  is byte-identical regardless of dispatch order or worker count;
* **seeds are order-independent** — a seeded node receives
  ``derive_stream_seed(base, "dag", seed_label)``, a stream that
  depends only on the base seed and the label, never on when or where
  the node runs;
* **stage-granular recompute** — with a cache store attached, each
  node gets a content address (:mod:`repro.dag.cache`); hits replay
  decoded outputs parent-side, misses publish for the next run, and
  editing one stage function invalidates exactly that node and its
  descendants;
* **per-node fault policy** — worker faults from a
  :class:`repro.fault.plan.FaultPlan` keyed ``"<graph>.<node>"`` are
  injected per attempt, retries are bounded (node ``retry`` overrides
  the engine/plan budget), and an exhausted node raises
  :class:`DagNodeError`, which the driver-level
  :func:`repro.experiments.run_module_resilient` wrapper degrades to a
  recorded-failure row;
* **pool dispatch** — with ``jobs > 1``, ready nodes fan out to the
  persistent :class:`repro.perf.pool.WarmPool` as ``"dag_node"`` tasks
  (payloads come back over the shared-memory transport); nodes whose
  function is not importable by name fall back to in-parent execution.

Scheduler bookkeeping counters (``dag.node_runs[.<graph>.<node>]``,
``dag.node_retries``, ``dag.node_failures``, ``cache.node_hits`` /
``cache.node_misses`` and their per-node variants) go to the metrics
registry directly, bypassing the event-emitting helpers — a DAG run of
an uncached graph therefore emits *exactly* the events its stages emit,
which is what keeps it byte-identical to the imperative driver.
"""

from __future__ import annotations

import contextlib
import time
from pathlib import Path
from types import ModuleType
from typing import Any, Iterator, Mapping, Sequence

from repro.cache.keys import value_digest
from repro.cache.store import CacheStore
from repro.dag.cache import (NODE_KIND, decode_outputs, encode_outputs,
                             node_key, stage_fingerprint)
from repro.dag.graph import ExperimentGraph, GraphError
from repro.dag.node import Stage
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.events import driver_scope, emit as emit_event
from repro.obs.trace import span, span_from_dict
from repro.perf.seeds import derive_stream_seed

__all__ = ["DagNodeError", "graph_for", "has_graph", "run_graph",
           "run_module_dag", "run_node_task"]


class DagNodeError(RuntimeError):
    """A node exhausted its retry budget.

    Carries enough context for the recorded-failure degradation row the
    driver-level resilient wrapper writes.
    """

    def __init__(self, graph: str, node: str, attempts: int,
                 error: str) -> None:
        self.graph = graph
        self.node = node
        self.attempts = attempts
        self.error = error
        super().__init__(f"node {graph}.{node} failed after {attempts} "
                         f"attempt(s): {error}")


def has_graph(module: ModuleType) -> bool:
    """True when a driver module exposes a ``build_graph()`` factory."""
    return callable(getattr(module, "build_graph", None))


def graph_for(module: ModuleType) -> ExperimentGraph:
    """The driver's declarative graph (``module.build_graph()``)."""
    if not has_graph(module):
        raise GraphError(f"module {module.__name__!r} declares no "
                         f"experiment graph (no build_graph())")
    graph = module.build_graph()
    if not isinstance(graph, ExperimentGraph):
        raise GraphError(f"{module.__name__}.build_graph() returned "
                         f"{type(graph).__name__}, not ExperimentGraph")
    return graph


def run_node_task(task: Mapping[str, Any]) -> Any:
    """Worker side of one ``"dag_node"`` pool task.

    Re-resolves the stage function by module + name (functions do not
    pickle across the task pipe), runs it under the experiment's driver
    scope, and wraps the output dict in an
    :class:`~repro.experiments.base.ExperimentResult` shell so the
    shared-memory transport (:mod:`repro.perf.shm`) can carry it —
    outputs ride in the pickled summary block.
    """
    import importlib

    from repro.experiments.base import ExperimentResult

    module = importlib.import_module(task["module"])
    fn = getattr(module, task["fn"])
    kwargs = dict(task["inputs"])
    kwargs.update(task["consts"])
    if task["inject_seed"]:
        kwargs["seed"] = task["seed"]
    with driver_scope(task["driver"]):
        outputs = fn(**kwargs)
    if not isinstance(outputs, Mapping):
        raise TypeError(f"dag node {task['name']}: fn returned "
                        f"{type(outputs).__name__}, expected a dict of "
                        f"outputs")
    return ExperimentResult(name=task["name"],
                            title=f"dag node {task['name']}",
                            rows=[], summary={"outputs": dict(outputs)})


def run_graph(graph: ExperimentGraph,
              overrides: Mapping[str, Any] | None = None,
              *,
              jobs: int = 1,
              order: Sequence[str] | None = None,
              base_seed: int | None = None,
              store: CacheStore | None = None,
              source_root: Path | None = None,
              driver: str | None = None,
              fault_plan: Any = None,
              injector: Any = None,
              max_retries: int | None = None,
              backoff_s: float | None = None,
              timeout_s: float | None = None,
              parent_span: Any = None) -> dict[str, Any]:
    """Execute a graph and return its full value environment.

    Args:
        graph: the validated stage DAG.
        overrides: per-run values for declared graph parameters.
        jobs: 1 = serial in-process; >1 = ready nodes fan out to the
            warm pool.
        order: dispatch order (any valid topological order); defaults
            to the canonical declaration order.  Artifacts and
            timelines do not depend on it.
        base_seed: base of the per-node seed streams
            (``derive_stream_seed(base_seed, "dag", seed_label)``).
        store: cache store for stage-granular incremental recompute;
            None disables node caching.
        source_root: source tree node fingerprints resolve against
            (tmp-tree invalidation tests pass one).
        driver: driver tag for worker-side event scoping; defaults to
            the graph name.
        fault_plan: optional :class:`repro.fault.plan.FaultPlan`;
            worker faults are keyed ``"<graph>.<node>"`` and its retry
            policy fills unset ``max_retries``/``backoff_s``/
            ``timeout_s``.
        injector: optional fault-accounting injector (created from the
            plan when omitted).
        max_retries: default extra attempts per node (node ``retry``
            overrides; engine default 2).
        backoff_s: exponential-backoff base between attempts
            (default 0.25).
        timeout_s: default per-attempt wall-clock bound (pool dispatch
            only; node ``timeout_s`` overrides).
        parent_span: open span node telemetry reattaches under (the
            ``experiment.<name>`` span in :func:`run_module_dag`).

    Returns:
        ``{name: value}`` for every parameter and produced output.

    Raises:
        GraphError: unknown override, invalid order, or a node whose
            returned outputs violate its declaration.
        DagNodeError: a node failed beyond its retry budget.
    """
    values = dict(graph.params)
    for name, value in (overrides or {}).items():
        if name not in graph.params:
            raise GraphError(f"graph {graph.name!r} has no parameter "
                             f"{name!r}")
        values[name] = value
    schedule = (tuple(order) if order is not None
                else graph.topological_order())
    if not graph.is_valid_order(schedule):
        raise GraphError(f"graph {graph.name!r}: {list(schedule)} is not "
                         f"a valid topological order")
    if fault_plan is not None:
        if max_retries is None:
            max_retries = fault_plan.retry.max_retries
        if backoff_s is None:
            backoff_s = fault_plan.retry.backoff_s
        if timeout_s is None:
            timeout_s = fault_plan.retry.timeout_s
        if injector is None:
            from repro.fault.injector import FaultInjector
            injector = FaultInjector(fault_plan)
    run = _GraphRun(graph=graph, values=values, schedule=schedule,
                    jobs=jobs, base_seed=base_seed, store=store,
                    source_root=source_root,
                    driver=driver or graph.name, plan=fault_plan,
                    injector=injector,
                    max_retries=2 if max_retries is None else max_retries,
                    backoff_s=0.25 if backoff_s is None else backoff_s,
                    timeout_s=timeout_s, parent_span=parent_span)
    return run.execute()


def run_module_dag(module: ModuleType,
                   seed: int | None = None,
                   *,
                   jobs: int = 1,
                   order: Sequence[str] | None = None,
                   store: CacheStore | None = None,
                   source_root: Path | None = None,
                   fault_plan: Any = None,
                   injector: Any = None,
                   max_retries: int | None = None,
                   backoff_s: float | None = None,
                   timeout_s: float | None = None) -> Any:
    """Run one ported driver through its graph — the DAG counterpart of
    :func:`repro.experiments.run_module`, with identical artifacts.

    Seed handling mirrors the imperative path exactly: the driver seed
    derives from ``(seed, name)``, is installed as the process run seed
    for the duration, and — for graphs declaring a ``base_seed``
    parameter (the fleet) — is passed in as that parameter, just as
    ``run_module`` forwards ``seed`` to drivers that accept it.
    """
    from repro.experiments import experiment_name
    from repro.obs.manifest import current_seed, set_run_seed

    name = experiment_name(module)
    graph = graph_for(module)
    if seed is None:
        seed = current_seed()
    driver_seed = derive_stream_seed(seed, name)
    overrides: dict[str, Any] = {}
    if driver_seed is not None and "base_seed" in graph.params:
        overrides["base_seed"] = driver_seed
    previous_seed = current_seed()
    if driver_seed is not None:
        set_run_seed(driver_seed)
    try:
        with driver_scope(name):
            start = time.perf_counter()
            with span(f"experiment.{name}") as parent:
                environment = run_graph(
                    graph, overrides=overrides, jobs=jobs, order=order,
                    base_seed=driver_seed, store=store,
                    source_root=source_root, driver=name,
                    fault_plan=fault_plan, injector=injector,
                    max_retries=max_retries, backoff_s=backoff_s,
                    timeout_s=timeout_s, parent_span=parent)
            result = environment.get("result")
            if result is None:
                raise GraphError(f"graph {graph.name!r} produced no "
                                 f"'result' output")
            result.duration_s = time.perf_counter() - start
            _metrics.inc("experiments.runs")
    finally:
        if driver_seed is not None:
            set_run_seed(previous_seed)
    result.seed = seed
    result.derived_seed = driver_seed
    return result


class _GraphRun:
    """State of one scheduled graph execution (see :func:`run_graph`)."""

    def __init__(self, graph: ExperimentGraph, values: dict[str, Any],
                 schedule: tuple[str, ...], jobs: int,
                 base_seed: int | None, store: CacheStore | None,
                 source_root: Path | None, driver: str, plan: Any,
                 injector: Any, max_retries: int, backoff_s: float,
                 timeout_s: float | None, parent_span: Any) -> None:
        self.graph = graph
        self.values = values
        self.schedule = schedule
        self.jobs = jobs
        self.base_seed = base_seed
        self.store = store
        self.source_root = source_root
        self.driver = driver
        self.plan = plan
        self.injector = injector
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.timeout_s = timeout_s
        self.events_on = _events.events_enabled()
        self.parent_children = getattr(parent_span, "children", None)
        self.keys = self._compute_keys()
        self.block_events: dict[str, list[dict[str, Any]]] = {}
        self.block_spans: dict[str, list[Any]] = {}
        self.block_metrics: dict[str, list[dict[str, Any]]] = {}

    # -- shared plumbing --------------------------------------------------

    def task_name(self, stage: Stage) -> str:
        return f"{self.graph.name}.{stage.name}"

    def node_seed(self, stage: Stage) -> int | None:
        if not stage.wants_seed:
            return None
        return derive_stream_seed(self.base_seed, "dag",
                                  stage.seed_label)

    def node_budget(self, stage: Stage) -> int:
        return (stage.retry if stage.retry is not None
                else self.max_retries)

    def node_timeout(self, stage: Stage) -> float | None:
        return (stage.timeout_s if stage.timeout_s is not None
                else self.timeout_s)

    def _compute_keys(self) -> dict[str, str]:
        """Every node's content address, derived up front (provenance
        flows through keys, so no values are needed)."""
        if self.store is None:
            return {}
        provenance = {name: value_digest(self.values[name])
                      for name in self.graph.params}
        keys: dict[str, str] = {}
        for stage in self.graph.stages:
            fp = stage_fingerprint(stage.fn.__module__,
                                   stage.fn.__name__,
                                   root=self.source_root)
            key = node_key(self.graph.name, stage.name, fp,
                           {name: provenance[name]
                            for name in stage.inputs},
                           stage.consts, self.node_seed(stage))
            keys[stage.name] = key
            for out in stage.outputs:
                provenance[out] = key
        return keys

    def _count(self, name: str, value: float = 1.0) -> None:
        """Registry-direct counter (never emits an event — scheduler
        bookkeeping must not perturb the stage-only timeline)."""
        if _metrics.metrics_enabled():
            _metrics.REGISTRY.inc(name, value)

    def _count_run(self, stage: Stage) -> None:
        self._count("dag.node_runs")
        self._count(f"dag.node_runs.{self.task_name(stage)}")

    def _count_cache(self, stage: Stage, hit: bool) -> None:
        which = "hits" if hit else "misses"
        self._count(f"cache.node_{which}")
        self._count(f"cache.node_{which}.{self.task_name(stage)}")

    @contextlib.contextmanager
    def _capture(self, name: str) -> Iterator[None]:
        """Capture events (and spans under the parent) emitted in the
        block into the node's telemetry block."""
        event_mark = len(_events.EVENTS) if self.events_on else 0
        span_mark = (len(self.parent_children)
                     if self.parent_children is not None else 0)
        try:
            yield
        finally:
            if self.events_on:
                tail = _events.EVENTS.export_tail(event_mark)
                if tail:
                    self.block_events.setdefault(name, []).extend(tail)
                    _events.EVENTS.truncate(event_mark)
            if self.parent_children is not None:
                fresh = self.parent_children[span_mark:]
                if fresh:
                    self.block_spans.setdefault(name, []).extend(fresh)
                    del self.parent_children[span_mark:]

    def _flush(self) -> None:
        """Re-adopt every captured block in canonical declaration order
        — the step that makes any dispatch order serialize the same."""
        for stage in self.graph.stages:
            spans = self.block_spans.get(stage.name)
            if spans:
                if self.parent_children is not None:
                    self.parent_children.extend(spans)
                else:
                    _trace.TRACER.adopt(spans)
            for state in self.block_metrics.get(stage.name, ()):
                _metrics.REGISTRY.merge_state(state)
            if self.events_on:
                records = self.block_events.get(stage.name)
                if records:
                    _events.EVENTS.adopt(records)
        self.block_events.clear()
        self.block_spans.clear()
        self.block_metrics.clear()

    def _node_failed(self, stage: Stage, attempts: int,
                     error: str) -> None:
        if self.injector is not None:
            self.injector.record_failed("worker",
                                        target=self.task_name(stage),
                                        attempts=attempts)
        raise DagNodeError(self.graph.name, stage.name, attempts, error)

    def _apply_plan_fault(self, stage: Stage, attempt: int) -> None:
        """Serial-path fault injection (crash raises; slow/hang sleep —
        an in-process scheduler cannot preempt)."""
        if self.plan is None:
            return
        name = self.task_name(stage)
        kind, seconds = self.plan.worker.fault_for(name, attempt)
        if kind is None:
            return
        if self.injector is not None:
            self.injector.record_worker_fault(name, attempt, kind,
                                              seconds=seconds)
        if kind == "crash":
            from repro.fault.plan import InjectedWorkerFault
            raise InjectedWorkerFault(name, attempt)
        if kind in ("slow", "hang") and seconds > 0:
            time.sleep(seconds)

    def _record_plan_fault(self, stage: Stage, attempt: int) -> None:
        """Pool-path fault accounting (the worker applies the fault
        itself, deterministically from the same plan)."""
        if self.plan is None or self.injector is None:
            return
        name = self.task_name(stage)
        kind, seconds = self.plan.worker.fault_for(name, attempt)
        if kind is not None:
            self.injector.record_worker_fault(name, attempt, kind,
                                              seconds=seconds)

    # -- cache ------------------------------------------------------------

    def _cache_lookup(self, stage: Stage) -> bool:
        """Probe the node cache; on a hit, install the decoded outputs.
        Emits hit/miss events inside the caller's capture block."""
        key = self.keys.get(stage.name)
        if key is None or not stage.cache:
            return False
        entry = self.store.get(key)
        name = self.task_name(stage)
        if entry is None:
            self._count_cache(stage, hit=False)
            emit_event("cache", "node.miss", node=name, key=key[:12])
            return False
        self._count_cache(stage, hit=True)
        emit_event("cache", "node.hit", node=name, key=key[:12])
        outputs = decode_outputs(entry["payload"]["outputs"])
        stage.check_outputs(outputs)
        self.values.update(outputs)
        return True

    def _cache_publish(self, stage: Stage,
                       outputs: Mapping[str, Any]) -> None:
        key = self.keys.get(stage.name)
        if key is None or not stage.cache:
            return
        self.store.put(key, {"outputs": encode_outputs(outputs)},
                       kind=NODE_KIND, label=self.task_name(stage))

    # -- execution --------------------------------------------------------

    def execute(self) -> dict[str, Any]:
        try:
            if self.jobs > 1:
                self._run_pool()
            else:
                self._run_serial()
        finally:
            # Completed blocks flush even when a node failed, so a
            # degraded run's timeline is still deterministic.
            self._flush()
        return self.values

    def _run_serial(self) -> None:
        for name in self.schedule:
            stage = self.graph.stage(name)
            with self._capture(name):
                if self._cache_lookup(stage):
                    continue
                outputs = self._execute_in_process(stage)
                stage.check_outputs(outputs)
                self.values.update(outputs)
                self._cache_publish(stage, outputs)

    def _execute_in_process(self, stage: Stage) -> Mapping[str, Any]:
        """Bounded-retry in-process execution of one node."""
        budget = self.node_budget(stage)
        error_text = ""
        for attempt in range(budget + 1):
            if attempt > 0:
                if self.backoff_s > 0:
                    time.sleep(self.backoff_s * 2.0 ** (attempt - 1))
                self._count("dag.node_retries")
            self._count_run(stage)
            try:
                self._apply_plan_fault(stage, attempt)
                outputs = stage.fn(**stage.call_kwargs(
                    self.values, seed=self.node_seed(stage)))
            except Exception as error:
                self._count("dag.node_failures")
                error_text = f"{type(error).__name__}: {error}"
                continue
            if attempt > 0 and self.injector is not None:
                self.injector.record_recovered(
                    "worker", target=self.task_name(stage),
                    attempts=attempt + 1)
            return outputs
        self._node_failed(stage, budget + 1, error_text)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- pool dispatch ----------------------------------------------------

    def _pool_safe(self, stage: Stage) -> bool:
        """True when the worker can re-resolve ``fn`` by name (a
        module-level function); closures fall back to in-parent runs."""
        import sys

        module = sys.modules.get(stage.fn.__module__)
        return (module is not None
                and getattr(module, stage.fn.__name__, None)
                is stage.fn)

    def _run_pool(self) -> None:
        from repro.perf import shm as _shm
        from repro.perf.pool import PoolTaskError, get_pool

        pool = get_pool(self.jobs)
        plan_record = (self.plan.to_dict()
                       if self.plan is not None else None)
        trace_on = _trace.tracing_enabled()
        metrics_on = _metrics.metrics_enabled()

        pending: dict[str, int] = {}
        done: set[str] = set()

        def submit(stage: Stage, attempt: int) -> None:
            self._record_plan_fault(stage, attempt)
            self._count_run(stage)
            task = {
                "kind": "dag_node",
                "name": self.task_name(stage),
                "driver": self.driver,
                "module": stage.fn.__module__,
                "fn": stage.fn.__name__,
                "inputs": {name: self.values[name]
                           for name in stage.inputs},
                "consts": dict(stage.consts),
                "inject_seed": stage.wants_seed,
                "seed": self.node_seed(stage),
                "cache": False,
                "output_dir": "",
                "plan": plan_record,
                "attempt": attempt,
                "trace_on": trace_on,
                "metrics_on": metrics_on,
                "events_on": self.events_on,
                "shm_min_bytes": _shm.SHM_MIN_BYTES,
            }
            pending[stage.name] = pool.submit(task)

        def start_ready() -> None:
            """Submit (or locally resolve) every node whose inputs are
            available; cache hits complete inline and may unlock more."""
            progressed = True
            while progressed:
                progressed = False
                for name in self.schedule:
                    if name in done or name in pending:
                        continue
                    stage = self.graph.stage(name)
                    if any(dep not in done
                           for dep in self.graph.dependencies(stage)):
                        continue
                    if self.store is not None:
                        hit = False
                        with self._capture(name):
                            hit = self._cache_lookup(stage)
                        if hit:
                            done.add(name)
                            progressed = True
                            continue
                    if not self._pool_safe(stage):
                        with self._capture(name):
                            outputs = self._execute_in_process(stage)
                            stage.check_outputs(outputs)
                            self.values.update(outputs)
                            self._cache_publish(stage, outputs)
                        done.add(name)
                        progressed = True
                        continue
                    submit(stage, 0)

        start_ready()
        for name in self.schedule:
            if name in done:
                continue
            stage = self.graph.stage(name)
            if name not in pending:
                start_ready()
            if name in done:
                continue
            payload = None
            error_text = ""
            attempts_used = 0
            budget = self.node_budget(stage)
            for attempt in range(budget + 1):
                attempts_used = attempt + 1
                if attempt > 0:
                    if self.backoff_s > 0:
                        time.sleep(self.backoff_s * 2.0 ** (attempt - 1))
                    self._count("dag.node_retries")
                    submit(stage, attempt)
                elif name not in pending:
                    submit(stage, 0)
                task_id = pending[name]
                try:
                    header = pool.wait(
                        task_id, timeout_s=self.node_timeout(stage))
                except PoolTaskError as error:
                    self._count("dag.node_failures")
                    error_text = str(error)
                    continue
                payload = _shm.unpack_payload(header)
                pool.release(task_id)
                break
            pending.pop(name, None)
            if payload is None:
                self._node_failed(stage, attempts_used, error_text)
            outputs = dict(payload["result"].summary["outputs"])
            stage.check_outputs(outputs)
            if payload.get("events"):
                self.block_events.setdefault(name, []).extend(
                    payload["events"])
            if payload.get("spans"):
                self.block_spans.setdefault(name, []).extend(
                    span_from_dict(record)
                    for record in payload["spans"])
            if payload.get("metrics"):
                self.block_metrics.setdefault(name, []).append(
                    payload["metrics"])
            if attempts_used > 1 and self.injector is not None:
                self.injector.record_recovered(
                    "worker", target=self.task_name(stage),
                    attempts=attempts_used)
            self.values.update(outputs)
            done.add(name)
            with self._capture(name):
                self._cache_publish(stage, outputs)
            start_ready()
