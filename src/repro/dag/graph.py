"""ExperimentGraph: a validated DAG of :class:`repro.dag.node.Stage`.

The graph is declarative data, not behavior: it names the stages, their
value-level dataflow (who produces what, who consumes it), and the
tunable parameters the caller may override.  Validation happens at
construction — duplicate node names, duplicate output producers,
undeclared inputs, cycles, and stages declared before their producers
are all rejected with :class:`GraphError` — so a graph that exists can
always be scheduled.

Declaration order doubles as the *canonical* order: it must itself be a
valid topological order (drivers naturally write stages in execution
order), and the scheduler uses it to canonicalize telemetry so every
valid dispatch order yields the same events.jsonl.  Alternative orders
for fuzzing come from :meth:`ExperimentGraph.topological_orders` and
:meth:`ExperimentGraph.random_order` — the latter derives its picks
from :func:`repro.perf.seeds.derive_stream_seed` rather than an RNG, so
order generation is itself seed-stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from repro.dag.node import SEED_INPUT, Stage
from repro.perf.seeds import derive_stream_seed

__all__ = ["ExperimentGraph", "GraphError"]


class GraphError(ValueError):
    """An experiment graph that violates the stage contract."""


@dataclass(frozen=True)
class ExperimentGraph:
    """A named, validated stage DAG plus its parameter defaults.

    Attributes:
        name: experiment id (matches the driver module name for graphs
            built by ``build_graph()``).
        stages: the nodes, in canonical (declaration) order.
        params: externally supplied value names with their defaults;
            the scheduler may override them per run (e.g. the fleet's
            ``base_seed``).
    """

    name: str
    stages: tuple[Stage, ...]
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))
        object.__setattr__(self, "params", dict(self.params))
        self._validate()

    # -- validation -------------------------------------------------------

    def _validate(self) -> None:
        if not self.name:
            raise GraphError("graph name must be non-empty")
        if not self.stages:
            raise GraphError(f"graph {self.name!r} has no stages")
        seen: set[str] = set()
        for stage in self.stages:
            if stage.name in seen:
                raise GraphError(f"graph {self.name!r}: duplicate stage "
                                 f"name {stage.name!r}")
            seen.add(stage.name)
        available = set(self.params)
        if SEED_INPUT in available:
            raise GraphError(f"graph {self.name!r}: {SEED_INPUT!r} is "
                             f"reserved for seed injection and cannot be "
                             f"a parameter")
        producer: dict[str, str] = {}
        for stage in self.stages:
            if SEED_INPUT in stage.inputs or SEED_INPUT in stage.outputs:
                raise GraphError(
                    f"graph {self.name!r}: stage {stage.name!r} declares "
                    f"{SEED_INPUT!r}, which is reserved for seed "
                    f"injection (use seed_label)")
            # Declaration order must be a valid topological order: every
            # input is a param or an output of an *earlier* stage.  This
            # both rejects cycles/undeclared inputs and fixes the
            # canonical order the scheduler uses for telemetry.
            for name in stage.inputs:
                if name not in available:
                    raise GraphError(
                        f"graph {self.name!r}: stage {stage.name!r} reads "
                        f"{name!r}, which is neither a parameter nor an "
                        f"output of an earlier stage (undeclared input, "
                        f"cycle, or out-of-order declaration)")
            for name in stage.outputs:
                if name in self.params:
                    raise GraphError(
                        f"graph {self.name!r}: stage {stage.name!r} "
                        f"output {name!r} collides with a parameter")
                if name in producer:
                    raise GraphError(
                        f"graph {self.name!r}: output {name!r} produced "
                        f"by both {producer[name]!r} and {stage.name!r}")
                producer[name] = stage.name
                available.add(name)
            stage.check_signature()

    # -- structure --------------------------------------------------------

    def stage(self, name: str) -> Stage:
        """Look one stage up by name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"graph {self.name!r} has no stage {name!r}")

    @property
    def producers(self) -> dict[str, str]:
        """Output value name -> producing stage name."""
        out: dict[str, str] = {}
        for stage in self.stages:
            for name in stage.outputs:
                out[name] = stage.name
        return out

    def dependencies(self, stage: Stage) -> tuple[str, ...]:
        """Names of the stages whose outputs ``stage`` consumes, in
        canonical order."""
        producers = self.producers
        wanted = {producers[name] for name in stage.inputs
                  if name in producers}
        return tuple(s.name for s in self.stages if s.name in wanted)

    def is_valid_order(self, order: Sequence[str]) -> bool:
        """True when ``order`` is a permutation of the stage names that
        respects every dataflow edge."""
        names = [s.name for s in self.stages]
        if sorted(order) != sorted(names):
            return False
        position = {name: i for i, name in enumerate(order)}
        for stage in self.stages:
            for dep in self.dependencies(stage):
                if position[dep] > position[stage.name]:
                    return False
        return True

    def topological_order(self) -> tuple[str, ...]:
        """The canonical order (declaration order, validated topological
        at construction)."""
        return tuple(s.name for s in self.stages)

    def topological_orders(self, limit: int = 64) -> Iterator[tuple[str, ...]]:
        """Enumerate valid topological orders (up to ``limit``).

        Depth-first over the ready set in canonical order; mainly a test
        utility for small graphs.
        """
        deps = {s.name: set(self.dependencies(s)) for s in self.stages}
        names = [s.name for s in self.stages]
        emitted = 0

        def walk(prefix: list[str],
                 done: set[str]) -> Iterator[tuple[str, ...]]:
            nonlocal emitted
            if emitted >= limit:
                return
            if len(prefix) == len(names):
                emitted += 1
                yield tuple(prefix)
                return
            for name in names:
                if name in done or not deps[name] <= done:
                    continue
                prefix.append(name)
                done.add(name)
                yield from walk(prefix, done)
                done.remove(name)
                prefix.pop()
                if emitted >= limit:
                    return

        yield from walk([], set())

    def random_order(self, seed: int) -> tuple[str, ...]:
        """A seed-stable valid topological order.

        Kahn's algorithm with the ready-set pick derived from
        ``derive_stream_seed(seed, "order", step)`` — no RNG object, so
        the order depends only on ``seed`` and the graph shape.  Used by
        the schedule-fuzzing suite.
        """
        deps = {s.name: set(self.dependencies(s)) for s in self.stages}
        remaining = [s.name for s in self.stages]
        done: set[str] = set()
        order: list[str] = []
        step = 0
        while remaining:
            ready = [name for name in remaining if deps[name] <= done]
            pick = ready[derive_stream_seed(seed, "order", str(step))
                         % len(ready)]
            remaining.remove(pick)
            done.add(pick)
            order.append(pick)
            step += 1
        return tuple(order)

    # -- rendering --------------------------------------------------------

    def render(self) -> str:
        """Human-readable graph listing (the ``dag show`` CLI output)."""
        lines = [f"experiment {self.name}: {len(self.stages)} stage(s)"]
        if self.params:
            pairs = ", ".join(f"{k}={v!r}"
                              for k, v in sorted(self.params.items()))
            lines.append(f"  params: {pairs}")
        for stage in self.stages:
            ins = ", ".join(stage.inputs) or "-"
            outs = ", ".join(stage.outputs) or "-"
            lines.append(f"  {stage.name}: [{ins}] -> [{outs}]")
            deps = self.dependencies(stage)
            if deps:
                lines.append(f"    after: {', '.join(deps)}")
            flags = []
            if stage.consts:
                pairs = ", ".join(f"{k}={v!r}" for k, v
                                  in sorted(stage.consts.items()))
                flags.append(f"consts({pairs})")
            if stage.seed_label is not None:
                flags.append(f"seed:{stage.seed_label}")
            if not stage.cache:
                flags.append("nocache")
            if stage.retry is not None:
                flags.append(f"retry={stage.retry}")
            if stage.timeout_s is not None:
                flags.append(f"timeout={stage.timeout_s:g}s")
            if flags:
                lines.append(f"    policy: {', '.join(flags)}")
        return "\n".join(lines)
