"""Declarative experiment DAGs (the ``repro.dag`` layer).

Experiments are declared as graphs of :class:`Stage` nodes — named
functions with explicit inputs, outputs, and per-node policy (cache,
retry, timeout, seed stream) — collected into a validated
:class:`ExperimentGraph`.  One scheduler (:func:`run_graph` /
:func:`run_module_dag`) dispatches any valid topological order, serially
or across the warm worker pool, and produces byte-identical artifacts
regardless of order or worker count.  See ``docs/DAG.md`` for the node
contract and migration guide.
"""

from repro.dag.graph import ExperimentGraph, GraphError
from repro.dag.node import Stage
from repro.dag.scheduler import (DagNodeError, graph_for, has_graph,
                                 run_graph, run_module_dag)

__all__ = ["DagNodeError", "ExperimentGraph", "GraphError", "Stage",
           "graph_for", "has_graph", "run_graph", "run_module_dag"]
