"""Performance engine: warm-worker parallel execution, zero-copy result
transport, and seed derivation.

* :mod:`repro.perf.parallel` — fan the experiment drivers out to the
  persistent warm-worker pool (``run_all(jobs=N)`` / ``python -m repro
  evaluate --jobs N``), merging each worker's spans, metrics, and events
  back into the parent's observability state in driver order.
* :mod:`repro.perf.pool` — the pool itself: workers spawned once, kept
  warm across ``run_parallel`` calls (:func:`get_pool` /
  :func:`shutdown_pool`), crashed or hung workers respawned with their
  segments quarantined.
* :mod:`repro.perf.shm` — shared-memory result transport: numeric
  result columns and telemetry export blocks cross the process boundary
  through a ``/dev/shm`` segment the parent adopts without a pickle
  round-trip, unlinked deterministically.
* :mod:`repro.perf.seeds` — deterministic per-driver and per-stream
  seed derivation, the mechanism that makes serial and parallel runs of
  the same base seed byte-identical (and whole-grid Monte-Carlo
  batching bit-exact per scheme).

The vectorized hot kernels themselves live with the code they speed up
(``repro.compress.rice``, ``repro.core.frontier``,
``repro.link.channel.measure_ber_sweep`` / ``measure_ber_grid``,
``repro.thermal.grid``); ``benchmarks/test_bench_perf.py`` records their
before/after numbers in ``BENCH_perf.json``.  See
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

from repro.perf.parallel import resolve_jobs, run_parallel
from repro.perf.pool import (
    PoolTaskError,
    PoolTimeout,
    WarmPool,
    get_pool,
    shutdown_pool,
)
from repro.perf.seeds import derive_driver_seed, derive_stream_seed
from repro.perf.shm import (
    SHM_MIN_BYTES,
    pack_payload,
    reclaim_segment,
    segment_name,
    split_rows,
    unpack_payload,
)

__all__ = [
    "PoolTaskError",
    "PoolTimeout",
    "SHM_MIN_BYTES",
    "WarmPool",
    "derive_driver_seed",
    "derive_stream_seed",
    "get_pool",
    "pack_payload",
    "reclaim_segment",
    "resolve_jobs",
    "run_parallel",
    "segment_name",
    "shutdown_pool",
    "split_rows",
    "unpack_payload",
]
