"""Performance engine: parallel experiment execution and seed derivation.

* :mod:`repro.perf.parallel` — fan the experiment drivers out to a
  process pool (``run_all(jobs=N)`` / ``python -m repro evaluate
  --jobs N``), merging each worker's spans and metrics back into the
  parent's observability state.
* :mod:`repro.perf.seeds` — deterministic per-driver seed derivation,
  the mechanism that makes serial and parallel runs of the same base
  seed byte-identical.

The vectorized hot kernels themselves live with the code they speed up
(``repro.compress.rice``, ``repro.core.frontier``,
``repro.link.channel.measure_ber_sweep``, ``repro.thermal.grid``);
``benchmarks/test_bench_perf.py`` records their before/after numbers in
``BENCH_perf.json``.  See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

from repro.perf.parallel import resolve_jobs, run_parallel
from repro.perf.seeds import derive_driver_seed

__all__ = ["derive_driver_seed", "resolve_jobs", "run_parallel"]
