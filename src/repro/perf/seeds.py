"""Deterministic per-driver and per-stream seed derivation.

One base seed (the CLI's ``--seed``) must reproduce the full evaluation
whether the drivers run serially or fanned out across worker processes.
A shared sequential RNG cannot give that: in a serial run driver B would
consume the stream where driver A left off, while in a parallel run both
would start fresh.  Instead every driver gets its own seed, derived from
``(base_seed, driver name)`` by hashing — order- and schedule-independent
by construction, so serial and parallel runs draw identical streams and
produce byte-identical CSVs.

:func:`derive_stream_seed` generalizes the same construction to any
labelled substream — the whole-grid Monte-Carlo batcher
(:func:`repro.link.channel.measure_ber_grid`) derives one independent
stream per modulation scheme from ``(base_seed, "mc", scheme name)``,
so evaluating the grid in one pass draws exactly what per-scheme sweeps
would.

Kept free of package-internal imports so :mod:`repro.experiments` can use
it without creating an import cycle with :mod:`repro.perf.parallel`.
"""

from __future__ import annotations

import hashlib

__all__ = ["derive_driver_seed", "derive_stream_seed"]


def derive_stream_seed(base_seed: int | None, *labels: str) -> int | None:
    """Stable 63-bit seed for one labelled substream of a base seed.

    Args:
        base_seed: the run-level seed; ``None`` (unseeded run) passes
            through unchanged.
        labels: the substream's path (e.g. ``("mc", "16-QAM")``),
            joined with ``:`` into the hash input — the same scheme
            that has always derived per-driver seeds, so
            ``derive_stream_seed(s, name) == derive_driver_seed(s,
            name)`` and existing goldens hold.

    Returns:
        A seed unique to ``(base_seed, *labels)``, or ``None`` when the
        run is unseeded.
    """
    if base_seed is None:
        return None
    joined = ":".join((str(base_seed), *labels))
    digest = hashlib.sha256(joined.encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def derive_driver_seed(base_seed: int | None, name: str) -> int | None:
    """Per-driver seed for one experiment under a base run seed.

    Args:
        base_seed: the run-level seed; ``None`` (unseeded run) passes
            through unchanged.
        name: the experiment id (e.g. ``"fig7"``).

    Returns:
        A stable 63-bit seed unique to ``(base_seed, name)``, or ``None``
        when the run is unseeded.
    """
    return derive_stream_seed(base_seed, name)
