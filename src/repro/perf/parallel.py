"""Process-pool parallel experiment engine.

:func:`run_parallel` fans experiment drivers out to a
``ProcessPoolExecutor`` (fork start method where available, so workers
inherit the imported interpreter state instead of re-importing it).  Each
worker:

* runs exactly one driver through the same
  :func:`repro.experiments.run_module` path the serial engine uses, so
  the per-driver seed derivation (:mod:`repro.perf.seeds`) — and hence
  every random draw — matches the serial run exactly;
* writes that driver's CSV + manifest itself (artifact filenames are
  per-driver, so concurrent writers never collide);
* exports its recorded span forest and metrics state back to the parent,
  which adopts the spans into the process-wide tracer
  (:meth:`~repro.obs.trace.Tracer.adopt`) and folds the metrics into the
  global registry (:meth:`~repro.obs.metrics.MetricsRegistry.merge_state`).

The contract tested in ``tests/perf/test_parallel.py``: for a fixed seed,
``run_all(jobs=4)`` produces CSVs byte-identical to the serial run.

Experiment modules are addressed by name across the process boundary
(module objects don't pickle); the worker resolves the name back to the
driver module before running it.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from pathlib import Path
from typing import Any, Sequence

from repro.obs import events as _events
from repro.obs import manifest as _manifest
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.trace import span, span_from_dict

__all__ = ["run_parallel", "resolve_jobs"]


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means one worker per
    CPU; negative values are rejected."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("jobs must be positive (or 0 for all CPUs)")
    return jobs


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where the platform offers it (cheap start, inherited
    imports); the default start method otherwise."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _run_one(name: str, seed: int | None, output_dir: str,
             trace_on: bool, metrics_on: bool,
             cache: bool = False,
             plan_record: dict[str, Any] | None = None,
             attempt: int = 0,
             events_on: bool = False) -> dict[str, Any]:
    """Worker-side entry: run one driver, save its CSV, export obs state.

    Runs in the worker process.  Workers are reused across tasks (and,
    under fork, inherit the parent's obs state), so each task starts by
    resetting the tracer and registry to get a clean per-driver window.

    With ``cache`` on, the driver goes through
    :func:`repro.cache.run_and_save_cached` against the store under
    ``output_dir`` — safe to share across workers (atomic writes +
    file locking in :class:`repro.cache.CacheStore`).

    With a fault plan, the plan's worker faults for ``(name, attempt)``
    are applied before the driver runs: crashes raise
    :class:`repro.fault.plan.InjectedWorkerFault` back to the parent
    (which retries), slow/hang faults sleep first.  Fault decisions are
    plan-driven, not random, so the parent can account them without a
    side channel.
    """
    import importlib

    from repro.experiments import run_module

    _trace.TRACER.reset()
    _metrics.REGISTRY.reset()
    _events.EVENTS.reset()
    if trace_on:
        _trace.enable()
    else:
        _trace.disable()
    if metrics_on:
        _metrics.enable()
    else:
        _metrics.disable()
    if events_on:
        _events.enable()
    else:
        _events.disable()

    if plan_record is not None:
        from repro.fault.plan import FaultPlan, InjectedWorkerFault
        plan = FaultPlan.from_dict(plan_record)
        kind, seconds = plan.worker.fault_for(name, attempt)
        if kind == "crash":
            raise InjectedWorkerFault(name, attempt)
        if kind in ("slow", "hang") and seconds > 0:
            time.sleep(seconds)

    module = importlib.import_module(f"repro.experiments.{name}")
    if cache:
        from repro.cache import run_and_save_cached
        result = run_and_save_cached(module, output_dir, seed=seed)
    else:
        result = run_module(module, seed=seed)
        result.save_csv(output_dir)
    return {
        "name": name,
        "pid": os.getpid(),
        "result": result,
        "spans": _trace.TRACER.to_dicts() if trace_on else [],
        "metrics": (_metrics.REGISTRY.export_state()
                    if metrics_on else None),
        "events": _events.EVENTS.to_dicts() if events_on else [],
    }


def _merge_payload(payload: dict[str, Any]) -> None:
    """Fold one worker's span forest, metrics, and timeline events into
    the parent's process-wide observability state.

    Called in driver submission order (never completion order), so the
    merged event timeline is deterministic for a fixed seed — the
    byte-identity contract of ``events.jsonl`` under ``--jobs N``.
    """
    if payload["spans"]:
        roots = []
        for record in payload["spans"]:
            root = span_from_dict(record)
            root.attrs.setdefault("worker_pid", payload["pid"])
            roots.append(root)
        _trace.TRACER.adopt(roots)
    if payload["metrics"] is not None:
        _metrics.REGISTRY.merge_state(payload["metrics"])
    if payload.get("events"):
        _events.EVENTS.adopt(payload["events"])


def run_parallel(modules: Sequence[Any],
                 output_dir: Path | str,
                 jobs: int | None = None,
                 seed: int | None = None,
                 cache: bool = False,
                 max_retries: int = 2,
                 backoff_s: float = 0.25,
                 timeout_s: float | None = None,
                 fault_plan: Any = None,
                 injector: Any = None) -> list[Any]:
    """Run experiment drivers across a process pool.

    Args:
        modules: driver modules (each with ``run``/``render``), as in
            :data:`repro.experiments.ALL_EXPERIMENTS`.
        output_dir: destination for the per-driver CSVs + manifests
            (written by the workers).
        jobs: worker count; ``None``/``0`` uses every CPU.
        seed: base run seed; each driver derives its own from it
            (:func:`repro.perf.seeds.derive_driver_seed`), identically to
            the serial path.
        cache: route each worker's driver through the shared
            content-addressed cache under ``output_dir`` (see
            :mod:`repro.cache`).
        max_retries: extra attempts per driver after a worker crash or
            timeout; always bounded.
        backoff_s: base of the exponential backoff slept before each
            retry (``backoff_s * 2**(attempt-1)``); 0 retries
            immediately.
        timeout_s: per-driver wall-clock bound on each attempt; a
            too-slow worker counts as a failed attempt (the abandoned
            worker still drains — injected hangs must be finite).
        fault_plan: optional :class:`repro.fault.plan.FaultPlan` whose
            worker faults the pool applies (crash/slow/hang per
            driver+attempt).
        injector: optional :class:`repro.fault.injector.FaultInjector`
            that accounts worker faults parent-side (created on the
            fly when a plan is given without one).

    Returns:
        The :class:`~repro.experiments.base.ExperimentResult` objects in
        the order of ``modules`` (not completion order).  A driver that
        exhausts its retry budget yields a recorded-failure result
        (:func:`repro.experiments.is_recorded_failure`) instead of
        raising — one bad driver degrades, the run completes.
    """
    from repro.experiments import _failure_result, experiment_name

    if max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    jobs = resolve_jobs(jobs)
    if seed is None:
        seed = _manifest.current_seed()
    names = [experiment_name(module) for module in modules]
    trace_on = _trace.tracing_enabled()
    metrics_on = _metrics.metrics_enabled()
    events_on = _events.events_enabled()
    plan_record = fault_plan.to_dict() if fault_plan is not None else None
    if injector is None and fault_plan is not None:
        from repro.fault.injector import FaultInjector
        injector = FaultInjector(fault_plan)

    def submit(pool: ProcessPoolExecutor, name: str, attempt: int):
        if injector is not None and plan_record is not None:
            kind, seconds = fault_plan.worker.fault_for(name, attempt)
            if kind is not None:
                injector.record_worker_fault(name, attempt, kind,
                                             seconds=seconds)
        return pool.submit(_run_one, name, seed, str(output_dir),
                           trace_on, metrics_on, cache, plan_record,
                           attempt, events_on)

    payloads: list[dict[str, Any]] = []
    failures: list[tuple[int, str, int, str]] = []
    with span("experiments.run_parallel", jobs=jobs, n_experiments=len(names)):
        with ProcessPoolExecutor(max_workers=jobs,
                                 mp_context=_pool_context()) as pool:
            futures = [submit(pool, name, 0) for name in names]
            for index, name in enumerate(names):
                future = futures[index]
                payload = None
                error_text = ""
                attempts_used = 0
                # Bounded retry: at most max_retries resubmissions.
                for attempt in range(max_retries + 1):
                    attempts_used = attempt + 1
                    if attempt > 0:
                        if backoff_s > 0:
                            time.sleep(backoff_s * 2.0 ** (attempt - 1))
                        _metrics.inc("experiments.retries")
                        future = submit(pool, name, attempt)
                    try:
                        payload = future.result(timeout=timeout_s)
                        break
                    except (Exception, FutureTimeoutError) as error:
                        _metrics.inc("experiments.worker_failures")
                        error_text = _describe(error)
                if payload is None:
                    failures.append((index, name, attempts_used,
                                     error_text))
                elif attempts_used > 1:
                    payload["attempts"] = attempts_used
                payloads.append(payload)

    results: list[Any] = []
    for index, name in enumerate(names):
        payload = payloads[index]
        if payload is None:
            continue
        _merge_payload(payload)
        result = payload["result"]
        attempts = payload.get("attempts")
        if attempts is not None:
            result.fault_info = {"injected": attempts - 1, "recovered": 1,
                                 "failed": 0, "attempts": attempts}
            result.save_manifest(output_dir)
            if injector is not None:
                injector.record_recovered("worker", target=name,
                                          attempts=attempts)
        results.append(result)
    for index, name, attempts, error in failures:
        if injector is not None:
            injector.record_failed("worker", target=name,
                                   attempts=attempts)
        result = _failure_result(name, attempts=attempts, error=error,
                                 seed=seed)
        result.save_csv(output_dir)
        results.insert(index, result)
        _metrics.inc("experiments.recorded_failures")
    _metrics.inc("experiments.parallel_runs", len(names))
    return results


def _describe(error: BaseException) -> str:
    """Compact one-line description of a worker failure."""
    if isinstance(error, FutureTimeoutError) or isinstance(error,
                                                           TimeoutError):
        return "timeout"
    return f"{type(error).__name__}: {error}"
