"""Process-pool parallel experiment engine.

:func:`run_parallel` fans experiment drivers out to a
``ProcessPoolExecutor`` (fork start method where available, so workers
inherit the imported interpreter state instead of re-importing it).  Each
worker:

* runs exactly one driver through the same
  :func:`repro.experiments.run_module` path the serial engine uses, so
  the per-driver seed derivation (:mod:`repro.perf.seeds`) — and hence
  every random draw — matches the serial run exactly;
* writes that driver's CSV + manifest itself (artifact filenames are
  per-driver, so concurrent writers never collide);
* exports its recorded span forest and metrics state back to the parent,
  which adopts the spans into the process-wide tracer
  (:meth:`~repro.obs.trace.Tracer.adopt`) and folds the metrics into the
  global registry (:meth:`~repro.obs.metrics.MetricsRegistry.merge_state`).

The contract tested in ``tests/perf/test_parallel.py``: for a fixed seed,
``run_all(jobs=4)`` produces CSVs byte-identical to the serial run.

Experiment modules are addressed by name across the process boundary
(module objects don't pickle); the worker resolves the name back to the
driver module before running it.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Sequence

from repro.obs import manifest as _manifest
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.trace import span, span_from_dict

__all__ = ["run_parallel", "resolve_jobs"]


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means one worker per
    CPU; negative values are rejected."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("jobs must be positive (or 0 for all CPUs)")
    return jobs


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where the platform offers it (cheap start, inherited
    imports); the default start method otherwise."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _run_one(name: str, seed: int | None, output_dir: str,
             trace_on: bool, metrics_on: bool,
             cache: bool = False) -> dict[str, Any]:
    """Worker-side entry: run one driver, save its CSV, export obs state.

    Runs in the worker process.  Workers are reused across tasks (and,
    under fork, inherit the parent's obs state), so each task starts by
    resetting the tracer and registry to get a clean per-driver window.

    With ``cache`` on, the driver goes through
    :func:`repro.cache.run_and_save_cached` against the store under
    ``output_dir`` — safe to share across workers (atomic writes +
    file locking in :class:`repro.cache.CacheStore`).
    """
    import importlib

    from repro.experiments import run_module

    _trace.TRACER.reset()
    _metrics.REGISTRY.reset()
    if trace_on:
        _trace.enable()
    else:
        _trace.disable()
    if metrics_on:
        _metrics.enable()
    else:
        _metrics.disable()

    module = importlib.import_module(f"repro.experiments.{name}")
    if cache:
        from repro.cache import run_and_save_cached
        result = run_and_save_cached(module, output_dir, seed=seed)
    else:
        result = run_module(module, seed=seed)
        result.save_csv(output_dir)
    return {
        "name": name,
        "pid": os.getpid(),
        "result": result,
        "spans": _trace.TRACER.to_dicts() if trace_on else [],
        "metrics": (_metrics.REGISTRY.export_state()
                    if metrics_on else None),
    }


def _merge_payload(payload: dict[str, Any]) -> None:
    """Fold one worker's span forest and metrics into the parent's
    process-wide tracer and registry."""
    if payload["spans"]:
        roots = []
        for record in payload["spans"]:
            root = span_from_dict(record)
            root.attrs.setdefault("worker_pid", payload["pid"])
            roots.append(root)
        _trace.TRACER.adopt(roots)
    if payload["metrics"] is not None:
        _metrics.REGISTRY.merge_state(payload["metrics"])


def run_parallel(modules: Sequence[Any],
                 output_dir: Path | str,
                 jobs: int | None = None,
                 seed: int | None = None,
                 cache: bool = False) -> list[Any]:
    """Run experiment drivers across a process pool.

    Args:
        modules: driver modules (each with ``run``/``render``), as in
            :data:`repro.experiments.ALL_EXPERIMENTS`.
        output_dir: destination for the per-driver CSVs + manifests
            (written by the workers).
        jobs: worker count; ``None``/``0`` uses every CPU.
        seed: base run seed; each driver derives its own from it
            (:func:`repro.perf.seeds.derive_driver_seed`), identically to
            the serial path.
        cache: route each worker's driver through the shared
            content-addressed cache under ``output_dir`` (see
            :mod:`repro.cache`).

    Returns:
        The :class:`~repro.experiments.base.ExperimentResult` objects in
        the order of ``modules`` (not completion order).
    """
    from repro.experiments import experiment_name

    jobs = resolve_jobs(jobs)
    if seed is None:
        seed = _manifest.current_seed()
    names = [experiment_name(module) for module in modules]
    trace_on = _trace.tracing_enabled()
    metrics_on = _metrics.metrics_enabled()

    with span("experiments.run_parallel", jobs=jobs, n_experiments=len(names)):
        with ProcessPoolExecutor(max_workers=jobs,
                                 mp_context=_pool_context()) as pool:
            futures = [pool.submit(_run_one, name, seed, str(output_dir),
                                   trace_on, metrics_on, cache)
                       for name in names]
            payloads = [future.result() for future in futures]

    for payload in payloads:
        _merge_payload(payload)
    _metrics.inc("experiments.parallel_runs", len(payloads))
    return [payload["result"] for payload in payloads]
