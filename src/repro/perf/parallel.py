"""Warm-pool parallel experiment engine with zero-copy result transport.

:func:`run_parallel` fans experiment drivers out to the persistent
warm-worker pool (:mod:`repro.perf.pool`): workers import the driver
closure once and then serve many invocations, so repeated parallel runs
in one process pay pool startup exactly once.  Each worker:

* runs exactly one driver per task through the same
  :func:`repro.experiments.run_module` path the serial engine uses, so
  the per-driver seed derivation (:mod:`repro.perf.seeds`) — and hence
  every random draw — matches the serial run exactly;
* writes that driver's CSV + manifest itself (artifact filenames are
  per-driver, so concurrent writers never collide);
* ships its result and telemetry back through shared memory
  (:mod:`repro.perf.shm`): numeric result columns and the
  span/metrics/event export blocks land in a ``/dev/shm`` segment the
  parent adopts without a pickle round-trip, unlinking it
  deterministically (small payloads with no telemetry fall back to
  pipe pickling — the recorded ``perf.transport.mode``).

The parent adopts each worker's spans, metrics, and events into the
process-wide observability state *in driver submission order*, which is
what keeps ``events.jsonl`` byte-identical run-to-run under ``--jobs N``
(tests/perf/test_parallel.py).

With ``cache=True`` the parent probes the content-addressed store
*before* submitting anything (:func:`repro.cache.probe_driver`): a hit
driver is never enqueued — its stored result replays in the parent,
inline and in driver order, emitting the same cache events a serial
cached run would.

Experiment modules are addressed by name across the process boundary
(module objects don't pickle); the worker resolves the name back to the
driver module before running it.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from pathlib import Path
from typing import Any, Sequence

from repro.obs import events as _events
from repro.obs import manifest as _manifest
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.trace import span, span_from_dict
from repro.perf import shm as _shm
from repro.perf.pool import PoolTaskError, get_pool

__all__ = ["run_parallel", "resolve_jobs"]


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means one worker per
    CPU; negative values are rejected."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("jobs must be positive (or 0 for all CPUs)")
    return jobs


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where the platform offers it (cheap start, inherited
    imports); the default start method otherwise."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _merge_payload(payload: dict[str, Any]) -> None:
    """Fold one worker's span forest, metrics, and timeline events into
    the parent's process-wide observability state.

    Called in driver submission order (never completion order), so the
    merged event timeline is deterministic for a fixed seed — the
    byte-identity contract of ``events.jsonl`` under ``--jobs N``.
    """
    if payload["spans"]:
        roots = []
        for record in payload["spans"]:
            root = span_from_dict(record)
            root.attrs.setdefault("worker_pid", payload["pid"])
            roots.append(root)
        _trace.TRACER.adopt(roots)
    if payload["metrics"] is not None:
        _metrics.REGISTRY.merge_state(payload["metrics"])
    if payload.get("events"):
        _events.EVENTS.adopt(payload["events"])


def _record_transport(name: str, stats: dict[str, Any]) -> None:
    """Account one payload's transport cost (satellite: auditable wins).

    The *event* carries only sizes that are a pure function of the run
    seed (packed column bytes + the pickled result remainder) so the
    parallel timeline stays byte-identical across repeats; the actual
    moved total — which includes telemetry blocks whose pickled size
    varies with PIDs and RSS readings — goes to the metrics registry
    directly, bypassing the event-emitting module helpers.
    """
    _events.emit("transport", name, mode=stats["mode"],
                 bytes=stats["result_bytes"],
                 column_bytes=stats["column_bytes"],
                 packed_columns=stats["packed_columns"],
                 rows=stats["rows"])
    if _metrics.metrics_enabled():
        registry = _metrics.REGISTRY
        registry.inc("perf.transport.bytes", stats["total_bytes"])
        registry.inc(f"perf.transport.mode.{stats['mode']}")
        registry.inc("perf.transport.payloads")
        registry.set_gauge(f"perf.transport.bytes.{name}",
                           stats["total_bytes"])


def run_parallel(modules: Sequence[Any],
                 output_dir: Path | str,
                 jobs: int | None = None,
                 seed: int | None = None,
                 cache: bool = False,
                 max_retries: int = 2,
                 backoff_s: float = 0.25,
                 timeout_s: float | None = None,
                 fault_plan: Any = None,
                 injector: Any = None,
                 shm_min_bytes: int | None = None) -> list[Any]:
    """Run experiment drivers across the persistent warm-worker pool.

    Args:
        modules: driver modules (each with ``run``/``render``), as in
            :data:`repro.experiments.ALL_EXPERIMENTS`.
        output_dir: destination for the per-driver CSVs + manifests
            (written by the workers).
        jobs: worker count; ``None``/``0`` uses every CPU.
        seed: base run seed; each driver derives its own from it
            (:func:`repro.perf.seeds.derive_driver_seed`), identically to
            the serial path.
        cache: probe the content-addressed cache under ``output_dir``
            parent-side and short-circuit hits before enqueueing;
            misses run in workers with the store active (see
            :mod:`repro.cache`).
        max_retries: extra attempts per driver after a worker crash or
            timeout; always bounded.
        backoff_s: base of the exponential backoff slept before each
            retry (``backoff_s * 2**(attempt-1)``); 0 retries
            immediately.
        timeout_s: per-driver wall-clock bound on each attempt; a
            too-slow worker is killed and respawned, its segment
            reclaimed, and the attempt counts as failed.
        fault_plan: optional :class:`repro.fault.plan.FaultPlan` whose
            worker faults the pool applies (crash/slow/hang per
            driver+attempt); an injected crash kills the warm worker
            for real and the pool respawns it.
        injector: optional :class:`repro.fault.injector.FaultInjector`
            that accounts worker faults parent-side (created on the
            fly when a plan is given without one).
        shm_min_bytes: packed-column threshold for shared-memory vs
            pickle transport (default :data:`repro.perf.shm.SHM_MIN_BYTES`;
            tests pass 0 to force the shm path).

    Returns:
        The :class:`~repro.experiments.base.ExperimentResult` objects in
        the order of ``modules`` (not completion order).  A driver that
        exhausts its retry budget yields a recorded-failure result
        (:func:`repro.experiments.is_recorded_failure`) instead of
        raising — one bad driver degrades, the run completes.
    """
    from repro.experiments import _failure_result, experiment_name

    if max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    jobs = resolve_jobs(jobs)
    if seed is None:
        seed = _manifest.current_seed()
    names = [experiment_name(module) for module in modules]
    trace_on = _trace.tracing_enabled()
    metrics_on = _metrics.metrics_enabled()
    events_on = _events.events_enabled()
    plan_record = fault_plan.to_dict() if fault_plan is not None else None
    if injector is None and fault_plan is not None:
        from repro.fault.injector import FaultInjector
        injector = FaultInjector(fault_plan)
    if shm_min_bytes is None:
        shm_min_bytes = _shm.SHM_MIN_BYTES

    # Cache short-circuit: probe silently, before anything is enqueued.
    probes: dict[str, Any] = {}
    store = None
    if cache:
        from repro.cache import probe_driver, store_for
        store = store_for(output_dir)
        for name, module in zip(names, modules):
            probe = probe_driver(module, seed=seed, store=store)
            if probe.hit:
                probes[name] = probe

    def make_spec(name: str, attempt: int) -> dict[str, Any]:
        return {"name": name, "seed": seed,
                "output_dir": str(output_dir),
                "trace_on": trace_on, "metrics_on": metrics_on,
                "events_on": events_on, "cache": cache,
                "plan": plan_record, "attempt": attempt,
                "shm_min_bytes": shm_min_bytes}

    def record_fault(name: str, attempt: int) -> None:
        if injector is not None and fault_plan is not None:
            kind, seconds = fault_plan.worker.fault_for(name, attempt)
            if kind is not None:
                injector.record_worker_fault(name, attempt, kind,
                                             seconds=seconds)

    pool = get_pool(jobs)
    # Per driver, one of: ("payload", payload, stats),
    # ("hit", probe), ("failure", attempts, error).
    outcomes: list[tuple[str, Any, Any]] = []
    with span("experiments.run_parallel", jobs=jobs,
              n_experiments=len(names)):
        task_ids: dict[str, int] = {}
        for name in names:
            if name in probes:
                continue
            record_fault(name, 0)
            task_ids[name] = pool.submit(make_spec(name, 0))
        for name in names:
            if name in probes:
                outcomes.append(("hit", probes[name], None))
                continue
            task_id = task_ids[name]
            payload = stats = None
            error_text = ""
            attempts_used = 0
            # Bounded retry: at most max_retries resubmissions.
            for attempt in range(max_retries + 1):
                attempts_used = attempt + 1
                if attempt > 0:
                    if backoff_s > 0:
                        time.sleep(backoff_s * 2.0 ** (attempt - 1))
                    _metrics.inc("experiments.retries")
                    record_fault(name, attempt)
                    task_id = pool.submit(make_spec(name, attempt))
                try:
                    header = pool.wait(task_id, timeout_s=timeout_s)
                except PoolTaskError as error:
                    _metrics.inc("experiments.worker_failures")
                    error_text = str(error)
                    continue
                payload = _shm.unpack_payload(header)
                stats = header["stats"]
                pool.release(task_id)
                break
            if payload is None:
                outcomes.append(("failure", attempts_used, error_text))
            else:
                if attempts_used > 1:
                    payload["attempts"] = attempts_used
                outcomes.append(("payload", payload, stats))

    results: list[Any] = []
    failures: list[tuple[int, str, int, str]] = []
    for index, (name, outcome) in enumerate(zip(names, outcomes)):
        kind, first, second = outcome
        if kind == "failure":
            failures.append((index, name, first, second))
            continue
        if kind == "hit":
            # Replay in driver order so cache events interleave exactly
            # as a serial cached run's would.
            from repro.cache import run_and_save_cached
            result = run_and_save_cached(modules[index], output_dir,
                                         seed=seed, store=store,
                                         probe=first)
            results.append(result)
            continue
        payload, stats = first, second
        _merge_payload(payload)
        _record_transport(name, stats)
        result = payload["result"]
        attempts = payload.get("attempts")
        if attempts is not None:
            result.fault_info = {"injected": attempts - 1, "recovered": 1,
                                 "failed": 0, "attempts": attempts}
            result.save_manifest(output_dir)
            if injector is not None:
                injector.record_recovered("worker", target=name,
                                          attempts=attempts)
        results.append(result)
    for index, name, attempts, error in failures:
        if injector is not None:
            injector.record_failed("worker", target=name,
                                   attempts=attempts)
        result = _failure_result(name, attempts=attempts, error=error,
                                 seed=seed)
        result.save_csv(output_dir)
        results.insert(index, result)
        _metrics.inc("experiments.recorded_failures")
    _metrics.inc("experiments.parallel_runs", len(names))
    return results
