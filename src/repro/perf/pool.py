"""Persistent warm-worker pool behind the parallel experiment engine.

:class:`WarmPool` replaces the per-call ``ProcessPoolExecutor`` churn:
workers are spawned once (fork start method where available), import the
driver closure on their first task, and then serve many driver
invocations over a task pipe — a warm worker runs a driver at the cost
of the driver alone, no interpreter or import startup.  The module-level
:func:`get_pool` keeps one pool alive across ``run_parallel`` calls for
the life of the process (``python -m repro evaluate --jobs N`` twice in
one process pays pool startup once).

Scheduling is deterministic where it matters: tasks go to the
lowest-numbered idle worker, and the *parent* collects results in
submission order regardless of completion order, so which worker ran
which driver never shows in artifacts or event timelines.

Fault containment, matching the contracts of
``tests/fault/test_worker_faults.py``:

* an injected worker *crash* really kills the worker process (it sends
  its error reply, then ``os._exit``) — the parent reaps it, respawns a
  fresh worker, and retries within the bounded budget;
* a *timeout* kills the hung worker outright (no abandoned-worker
  drain), respawns, and reports ``"timeout"``;
* either way the parent reclaims the dead task's shared-memory segment
  (:func:`repro.perf.shm.reclaim_segment`) — parent-chosen names make
  quarantine possible without hearing from the worker.
"""

from __future__ import annotations

import atexit
import os
import secrets
import time
from collections import deque
from multiprocessing import connection
from typing import Any

from repro.perf import shm as _shm

__all__ = ["WarmPool", "PoolTaskError", "PoolTimeout", "get_pool",
           "shutdown_pool"]

#: Exit code of a worker that self-destructs after an injected crash.
_CRASH_EXIT = 70

#: Test hook (read in the worker, inherited via fork at spawn time):
#: name a driver here and the worker running it dies *after* writing its
#: shared-memory segment but *before* replying — the crash-mid-write
#: scenario the quarantine path exists for.
_EXIT_AFTER_PACK_ENV = "REPRO_TEST_EXIT_AFTER_PACK"


class PoolTaskError(RuntimeError):
    """A task attempt failed (worker error, injected crash, or death)."""


class PoolTimeout(PoolTaskError):
    """A task attempt exceeded its wall-clock bound."""

    def __str__(self) -> str:  # the recorded-failure error text
        return "timeout"


def _describe(error: BaseException) -> str:
    """Compact one-line description of a worker-side failure."""
    return f"{type(error).__name__}: {error}"


def _execute_task(task: dict[str, Any]) -> dict[str, Any]:
    """Worker side: run one driver task and pack its payload.

    Mirrors the serial :func:`repro.experiments.run_module` path
    exactly — per-driver seed derivation happens inside ``run_module``,
    and the worker resets the process-wide tracer/registry/event log
    first so no observability state (or RNG state: every draw flows
    from the derived seed installed per task) bleeds between tasks on
    a reused worker.
    """
    import importlib

    from repro.obs import events as _events
    from repro.obs import metrics as _metrics
    from repro.obs import trace as _trace

    name = task["name"]
    _trace.TRACER.reset()
    _metrics.REGISTRY.reset()
    _events.EVENTS.reset()
    (_trace.enable if task["trace_on"] else _trace.disable)()
    (_metrics.enable if task["metrics_on"] else _metrics.disable)()
    (_events.enable if task["events_on"] else _events.disable)()

    try:
        if task["plan"] is not None:
            from repro.fault.plan import FaultPlan, InjectedWorkerFault
            plan = FaultPlan.from_dict(task["plan"])
            kind, seconds = plan.worker.fault_for(name, task["attempt"])
            if kind == "crash":
                raise InjectedWorkerFault(name, task["attempt"])
            if kind in ("slow", "hang") and seconds > 0:
                time.sleep(seconds)

        if task.get("kind") == "fleet_cohort":
            from repro.fleet.engine import run_cohort_task
            result = run_cohort_task(task)
        elif task.get("kind") == "dag_node":
            from repro.dag.scheduler import run_node_task
            result = run_node_task(task)
        else:
            from repro.experiments import run_module
            module = importlib.import_module(
                f"repro.experiments.{name}")
            if task["cache"]:
                from repro.cache import run_and_save_cached
                result = run_and_save_cached(module,
                                             task["output_dir"],
                                             seed=task["seed"])
            else:
                result = run_module(module, seed=task["seed"])
                result.save_csv(task["output_dir"])
        payload = {
            "name": name,
            "pid": os.getpid(),
            "result": result,
            "spans": (_trace.TRACER.to_dicts()
                      if task["trace_on"] else []),
            "metrics": (_metrics.REGISTRY.export_state()
                        if task["metrics_on"] else None),
            "events": (_events.EVENTS.to_dicts()
                       if task["events_on"] else []),
        }
        header = _shm.pack_payload(payload, segment=task["segment"],
                                   min_bytes=task["shm_min_bytes"])
        if os.environ.get(_EXIT_AFTER_PACK_ENV) == name:
            os._exit(_CRASH_EXIT)  # simulated death between write+reply
        return {"ok": True, "task_id": task["task_id"],
                "header": header}
    except Exception as error:
        exit_after = type(error).__name__ == "InjectedWorkerFault"
        return {"ok": False, "task_id": task["task_id"],
                "error": _describe(error), "exit": exit_after}


def _worker_main(child_conn, parent_conn=None) -> None:
    """Warm-worker serve loop: handle tasks until sentinel or EOF."""
    if parent_conn is not None:
        parent_conn.close()  # let the parent's EOF detection work
    while True:
        try:
            task = child_conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        reply = _execute_task(task)
        try:
            child_conn.send(reply)
        except (BrokenPipeError, OSError):
            break
        if reply.get("exit"):
            child_conn.close()
            os._exit(_CRASH_EXIT)  # injected crash: die for real
    child_conn.close()


class _Worker:
    """Parent-side handle on one pool process."""

    __slots__ = ("id", "proc", "conn", "task_id", "served")

    def __init__(self, worker_id: int, proc, conn) -> None:
        self.id = worker_id
        self.proc = proc
        self.conn = conn
        self.task_id: int | None = None  # task currently running
        self.served = 0


class WarmPool:
    """A fixed-size pool of persistent warm workers.

    Tasks are dicts (see :meth:`submit`); results come back through
    :meth:`wait` as shared-memory transport headers
    (:mod:`repro.perf.shm`).  One pool instance may serve many
    ``run_parallel`` calls — see :func:`get_pool`.
    """

    def __init__(self, jobs: int, mp_context=None) -> None:
        if jobs < 1:
            raise ValueError("a pool needs at least one worker")
        if mp_context is None:
            from repro.perf.parallel import _pool_context
            mp_context = _pool_context()
        self.jobs = jobs
        self._ctx = mp_context
        # Segment names must not collide with leftovers of crashed
        # *previous* processes (pids recycle), hence the random tag —
        # names are infrastructure, never recorded in any artifact.
        self._tag = f"{os.getpid():x}-{secrets.token_hex(3)}"
        self._next_task = 0
        self._queue: deque[int] = deque()
        self._tasks: dict[int, dict[str, Any]] = {}
        self._closed = False
        self.respawns = 0
        self.tasks_completed = 0
        self._workers = [self._spawn(index) for index in range(jobs)]

    # -- lifecycle --------------------------------------------------------

    def _spawn(self, worker_id: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn, parent_conn),
            name=f"repro-warm-{worker_id}", daemon=True)
        proc.start()
        child_conn.close()
        return _Worker(worker_id, proc, parent_conn)

    def _respawn(self, worker: _Worker) -> None:
        """Replace a dead (or killed) worker with a fresh process,
        failing over whatever task it was running."""
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join(timeout=5.0)
        if worker.task_id is not None:
            self._fail_task(worker.task_id,
                            f"WorkerDied: exit code {worker.proc.exitcode}")
            worker.task_id = None
        fresh = self._spawn(worker.id)
        worker.proc, worker.conn = fresh.proc, fresh.conn
        self.respawns += 1

    def shutdown(self) -> None:
        """Stop every worker and reclaim any outstanding segments."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        for record in self._tasks.values():
            _shm.reclaim_segment(record["segment"])
        self._tasks.clear()
        self._queue.clear()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- task flow --------------------------------------------------------

    def submit(self, spec: dict[str, Any]) -> int:
        """Enqueue one task; returns its id for :meth:`wait`.

        ``spec`` carries the driver invocation (name/seed/output_dir/
        obs flags/cache/plan/attempt/shm_min_bytes); the pool adds the
        task id and the parent-chosen segment name.
        """
        if self._closed:
            raise RuntimeError("pool is shut down")
        task_id = self._next_task
        self._next_task += 1
        segment = _shm.segment_name(self._tag, task_id)
        task = dict(spec, task_id=task_id, segment=segment)
        self._tasks[task_id] = {"task": task, "segment": segment,
                                "done": False, "reply": None,
                                "error": None, "worker": None}
        self._queue.append(task_id)
        self._dispatch()
        return task_id

    def _idle_worker(self) -> _Worker | None:
        for worker in self._workers:  # lowest id first
            if worker.task_id is None:
                return worker
        return None

    def _dispatch(self) -> None:
        while self._queue:
            worker = self._idle_worker()
            if worker is None:
                return
            task_id = self._queue.popleft()
            record = self._tasks[task_id]
            try:
                worker.conn.send(record["task"])
            except (BrokenPipeError, OSError):
                self._respawn(worker)  # dead while idle; retry dispatch
                self._queue.appendleft(task_id)
                continue
            worker.task_id = task_id
            record["worker"] = worker

    def _fail_task(self, task_id: int, error: str) -> None:
        record = self._tasks[task_id]
        record["done"] = True
        record["error"] = error
        record["worker"] = None
        _shm.reclaim_segment(record["segment"])

    def _collect(self, worker: _Worker) -> None:
        """Drain one reply (or detect death) on a busy worker."""
        try:
            reply = worker.conn.recv()
        except (EOFError, OSError):
            self._respawn(worker)
            self._dispatch()
            return
        record = self._tasks[reply["task_id"]]
        record["done"] = True
        record["reply"] = reply
        record["worker"] = None
        worker.task_id = None
        worker.served += 1
        self.tasks_completed += 1
        if not reply.get("ok"):
            _shm.reclaim_segment(record["segment"])
            if reply.get("exit"):
                # Injected crash: the worker killed itself right after
                # replying — reap it now so the next dispatch gets a
                # live process.
                worker.proc.join(timeout=5.0)
                self._respawn(worker)
        self._dispatch()

    def _kill_task(self, task_id: int) -> None:
        """Hard-stop a timed-out task: kill its worker (if running) and
        quarantine its segment."""
        record = self._tasks[task_id]
        worker = record["worker"]
        if worker is None:  # still queued — just drop it
            try:
                self._queue.remove(task_id)
            except ValueError:
                pass
        else:
            worker.task_id = None  # _respawn must not double-fail it
            worker.proc.terminate()
            self._respawn(worker)
        record["done"] = True
        record["error"] = "timeout"
        record["worker"] = None
        _shm.reclaim_segment(record["segment"])
        self._dispatch()

    def wait(self, task_id: int,
             timeout_s: float | None = None) -> dict[str, Any]:
        """Block until one task finishes; return its transport header.

        Raises:
            PoolTimeout: the attempt exceeded ``timeout_s`` (its worker
                was killed and respawned, its segment reclaimed).
            PoolTaskError: the worker reported an error or died.
        """
        record = self._tasks[task_id]
        deadline = (None if timeout_s is None
                    else time.monotonic() + timeout_s)
        while not record["done"]:
            busy = [w for w in self._workers if w.task_id is not None]
            if not busy:
                self._dispatch()
                if record["done"]:
                    break
                if not any(w.task_id is not None
                           for w in self._workers):
                    raise RuntimeError(
                        f"task {task_id} is neither running nor "
                        "dispatchable")
                continue
            remaining = (None if deadline is None
                         else deadline - time.monotonic())
            if remaining is not None and remaining <= 0:
                self._kill_task(task_id)
                break
            ready = connection.wait([w.conn for w in busy],
                                    timeout=remaining)
            if not ready:
                self._kill_task(task_id)
                break
            for conn in ready:
                for worker in busy:
                    if worker.conn is conn:
                        self._collect(worker)
                        break
        reply = record["reply"]
        error = record["error"]
        if error == "timeout":
            self._tasks.pop(task_id, None)
            raise PoolTimeout(error)
        if error is not None:
            self._tasks.pop(task_id, None)
            raise PoolTaskError(error)
        if not reply.get("ok"):
            self._tasks.pop(task_id, None)
            raise PoolTaskError(reply.get("error", "worker error"))
        # Keep the record until release(): if the caller dies between
        # wait and unpack, shutdown still sweeps the segment.
        return reply["header"]

    def release(self, task_id: int) -> None:
        """Forget a task whose header was consumed (unpacked)."""
        self._tasks.pop(task_id, None)


# -- the persistent process-wide pool ------------------------------------

_POOL: WarmPool | None = None
_ATEXIT_REGISTERED = False


def get_pool(jobs: int) -> WarmPool:
    """The process-wide warm pool, (re)sized to ``jobs`` workers.

    Reused across ``run_parallel`` calls when the size matches — the
    warm path.  A size change (or a shut-down pool) tears the old one
    down and starts fresh.
    """
    global _POOL, _ATEXIT_REGISTERED
    if _POOL is not None and (_POOL.closed or _POOL.jobs != jobs):
        _POOL.shutdown()
        _POOL = None
    if _POOL is None:
        _POOL = WarmPool(jobs)
        if not _ATEXIT_REGISTERED:
            atexit.register(shutdown_pool)
            _ATEXIT_REGISTERED = True
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent pool (tests and interpreter exit)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None
