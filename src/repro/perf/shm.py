"""Zero-copy shared-memory transport for parallel worker payloads.

The warm-worker engine (:mod:`repro.perf.pool`) moves each finished
driver's payload — the numeric ``ExperimentResult`` columns plus the
span/metrics/event telemetry blocks — back to the parent through a
``multiprocessing.shared_memory`` segment instead of pickling the whole
payload through a pipe.  Only a small header (dtype/shape/column names
and block offsets) crosses the pipe; the parent maps the segment and
reads the column arrays in place (``np.frombuffer`` over the mapped
buffer, no intermediate copy) before unlinking it.

Lifecycle protocol (no resource-tracker leaks, verified by
``tests/fault/test_shm_lifecycle.py``):

* the *parent* chooses every segment name up front (one per task), so it
  can reclaim the segment of a worker that died mid-write without a side
  channel (:func:`reclaim_segment`);
* the *worker* creates the segment, writes, closes its mapping, and
  immediately unregisters it from its resource tracker — the worker
  never owns cleanup;
* the *parent* attaches (which re-registers), decodes, then closes and
  unlinks deterministically inside :func:`unpack_payload` — under the
  fork start method both processes share one tracker and the
  register/unregister pairs balance to zero.

Transport mode is chosen *deterministically* from sizes that are a pure
function of the run seed: the packed column bytes and whether telemetry
blocks exist at all (a per-run flag).  Telemetry block sizes themselves
are **not** deterministic (pickled RSS/PID integers vary in width), so
they never feed the mode decision and never appear in event attributes —
only in the metrics registry (see :mod:`repro.perf.parallel`).
"""

from __future__ import annotations

import pickle
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

__all__ = ["SHM_MIN_BYTES", "pack_payload", "unpack_payload",
           "reclaim_segment", "segment_name", "split_rows"]

#: Below this many packed column bytes (and with no telemetry riding
#: along), pickling through the pipe is cheaper than a page-granular
#: segment plus three syscalls — the engine records mode="pickle".
SHM_MIN_BYTES = 4096

#: Fixed pickle protocol so header/block sizes are stable across runs.
_PICKLE_PROTOCOL = 4

#: Numeric column kinds the transport packs as raw arrays.  The order of
#: checks matters: bool is an int subtype, so it is classified first.
_KIND_DTYPES = {"bool": np.bool_, "int": np.int64, "float": np.float64}


def segment_name(tag: str, task_id: int) -> str:
    """Deterministic parent-chosen segment name for one task."""
    return f"repro-{tag}-{task_id}"


def _value_kind(value: Any) -> str | None:
    """Packable kind of one cell, or None for anything else."""
    if isinstance(value, (bool, np.bool_)):
        return "bool"
    if isinstance(value, (int, np.integer)):
        return "int" if -2 ** 63 <= int(value) < 2 ** 63 else None
    if isinstance(value, (float, np.floating)):
        return "float"
    return None


def split_rows(rows: list[dict[str, Any]]):
    """Split result rows into packable numeric columns and a remainder.

    A column packs only when every cell is uniformly bool, int, or
    float (mixed int/float stays pickled: packing would silently turn
    ints into floats on round-trip).  Rows with heterogeneous key sets
    don't pack at all.

    Returns:
        ``(columns, rest_rows, row_keys)`` where ``columns`` is a list
        of ``(name, kind, array)`` triples, ``rest_rows`` holds the
        unpacked remainder of each row (same order), and ``row_keys``
        is the shared key order used to reassemble rows exactly.
    """
    if not rows:
        return [], [], []
    row_keys = list(rows[0].keys())
    key_set = set(row_keys)
    if any(set(row.keys()) != key_set for row in rows[1:]):
        return [], [dict(row) for row in rows], row_keys
    columns = []
    packed_names = set()
    for key in row_keys:
        values = [row[key] for row in rows]
        kinds = {_value_kind(value) for value in values}
        if len(kinds) == 1 and None not in kinds:
            kind = kinds.pop()
            array = np.array(values, dtype=_KIND_DTYPES[kind])
            columns.append((key, kind, array))
            packed_names.add(key)
    rest_rows = [{key: row[key] for key in row_keys
                  if key not in packed_names} for row in rows]
    return columns, rest_rows, row_keys


def _result_fields(result: Any) -> dict[str, Any]:
    """Everything on an ExperimentResult except its rows."""
    return {
        "name": result.name,
        "title": result.title,
        "summary": result.summary,
        "columns": result.columns,
        "seed": result.seed,
        "derived_seed": result.derived_seed,
        "duration_s": result.duration_s,
        "cache_info": result.cache_info,
        "fault_info": result.fault_info,
    }


def pack_payload(payload: dict[str, Any],
                 segment: str | None,
                 min_bytes: int = SHM_MIN_BYTES) -> dict[str, Any]:
    """Encode one worker payload for transport (worker side).

    Args:
        payload: ``{"name", "pid", "result", "spans", "metrics",
            "events"}`` as assembled by the worker loop.
        segment: parent-chosen segment name; ``None`` forces pickle
            transport.
        min_bytes: packed-column threshold below which (absent
            telemetry) the payload pickles through the pipe instead.

    Returns:
        A small picklable header.  ``header["transport"]`` is ``"shm"``
        or ``"pickle"``; the stats block carries both the deterministic
        sizes (``result_bytes``, ``column_bytes`` — safe for event
        attributes) and the actual moved total (``total_bytes`` —
        metrics registry only).
    """
    result = payload["result"]
    columns, rest_rows, row_keys = split_rows(result.rows)
    column_bytes = int(sum(array.nbytes for _, _, array in columns))
    rest = {
        "result": _result_fields(result),
        "cached_csv_text": result.cached_csv_text,
        "rest_rows": rest_rows,
        "row_keys": row_keys,
        "row_count": len(result.rows),
    }
    rest_bytes = pickle.dumps(rest, protocol=_PICKLE_PROTOCOL)
    spans_bytes = pickle.dumps(payload["spans"],
                               protocol=_PICKLE_PROTOCOL)
    metrics_bytes = pickle.dumps(payload["metrics"],
                                 protocol=_PICKLE_PROTOCOL)
    events_bytes = pickle.dumps(payload["events"],
                                protocol=_PICKLE_PROTOCOL)
    has_telemetry = (bool(payload["spans"]) or bool(payload["events"])
                     or payload["metrics"] is not None)
    telemetry_bytes = (len(spans_bytes) + len(metrics_bytes)
                       + len(events_bytes))
    stats = {
        "rows": len(result.rows),
        "packed_columns": len(columns),
        "column_bytes": column_bytes,
        "result_bytes": column_bytes + len(rest_bytes),
        "telemetry_bytes": telemetry_bytes,
    }

    use_shm = segment is not None and (column_bytes >= min_bytes
                                       or has_telemetry)
    if not use_shm:
        stats["mode"] = "pickle"
        stats["total_bytes"] = stats["result_bytes"] + telemetry_bytes
        return {"transport": "pickle", "name": payload["name"],
                "pid": payload["pid"], "payload": payload,
                "stats": stats}

    layout = []
    offset = 0
    for name, kind, array in columns:
        layout.append(("column", name, kind, offset, len(array)))
        offset += array.nbytes
        offset += (-offset) % 8  # 8-byte alignment for the next array
    blocks = {}
    for label, blob in (("rest", rest_bytes), ("spans", spans_bytes),
                        ("metrics", metrics_bytes),
                        ("events", events_bytes)):
        blocks[label] = (offset, len(blob))
        offset += len(blob)
    total = max(offset, 1)

    shm = shared_memory.SharedMemory(name=segment, create=True,
                                     size=total)
    try:
        buffer = shm.buf
        for (_, name, kind, start, count), (_, _, array) in zip(
                layout, columns):
            view = np.frombuffer(buffer, dtype=_KIND_DTYPES[kind],
                                 count=count, offset=start)
            view[:] = array
            del view
        for label, blob in (("rest", rest_bytes),
                            ("spans", spans_bytes),
                            ("metrics", metrics_bytes),
                            ("events", events_bytes)):
            start, length = blocks[label]
            buffer[start:start + length] = blob
        del buffer
    finally:
        shm.close()
        _untrack(shm)

    stats["mode"] = "shm"
    stats["total_bytes"] = total
    return {"transport": "shm", "name": payload["name"],
            "pid": payload["pid"], "segment": segment, "size": total,
            "columns": [entry[1:] for entry in layout],
            "blocks": blocks, "stats": stats}


def unpack_payload(header: dict[str, Any]) -> dict[str, Any]:
    """Decode a transport header back into a worker payload (parent).

    For shm transport this attaches the segment, adopts the column
    arrays straight out of the mapped buffer, reassembles the result
    rows, and closes + unlinks the segment before returning — the
    deterministic end of the segment's life.
    """
    if header["transport"] == "pickle":
        return header["payload"]

    shm = shared_memory.SharedMemory(name=header["segment"])
    try:
        buffer = shm.buf
        column_values: dict[str, list[Any]] = {}
        for name, kind, start, count in header["columns"]:
            view = np.frombuffer(buffer, dtype=_KIND_DTYPES[kind],
                                 count=count, offset=start)
            column_values[name] = view.tolist()
            del view
        parts = {}
        for label, (start, length) in header["blocks"].items():
            parts[label] = pickle.loads(bytes(buffer[start:start
                                                     + length]))
        del buffer
    finally:
        shm.close()
        shm.unlink()

    rest = parts["rest"]
    rows = []
    rest_rows = rest["rest_rows"]
    for index in range(rest["row_count"]):
        leftover = rest_rows[index] if index < len(rest_rows) else {}
        row = {}
        for key in rest["row_keys"]:
            if key in column_values:
                row[key] = column_values[key][index]
            else:
                row[key] = leftover[key]
        rows.append(row)

    from repro.experiments.base import ExperimentResult

    fields = rest["result"]
    result = ExperimentResult(
        name=fields["name"], title=fields["title"], rows=rows,
        summary=fields["summary"], columns=fields["columns"],
        seed=fields["seed"], derived_seed=fields["derived_seed"],
        duration_s=fields["duration_s"],
        cache_info=fields["cache_info"],
        fault_info=fields["fault_info"])
    result.cached_csv_text = rest["cached_csv_text"]
    return {"name": header["name"], "pid": header["pid"],
            "result": result, "spans": parts["spans"],
            "metrics": parts["metrics"], "events": parts["events"]}


def reclaim_segment(name: str) -> bool:
    """Quarantine-reclaim a segment a dead or killed worker may have
    left behind: attach and unlink if it exists.

    Safe to call unconditionally — returns False when the name was
    never created or is already gone.
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return False
    try:
        shm.close()
    finally:
        shm.unlink()
    return True


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Drop the creating process's resource-tracker registration.

    The worker creates the segment but the *parent* owns unlinking, so
    the worker's registration must go — otherwise the tracker reports a
    leak (and under spawn would unlink a live segment) at worker exit.
    The registered name is the private ``_name`` (leading slash on
    POSIX), falling back to the public one.
    """
    registered = getattr(shm, "_name", None) or shm.name
    try:
        resource_tracker.unregister(registered, "shared_memory")
    except Exception:  # pragma: no cover - tracker absent on Windows
        pass
