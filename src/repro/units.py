"""Unit helpers and physical constants used throughout the MINDFUL framework.

All internal computation in :mod:`repro` uses base SI units (watts, meters,
joules, hertz, seconds).  BCI literature, however, reports quantities in a mix
of mW, cm^2, mm^2, pJ/bit, kHz, and dB.  This module provides explicit,
name-carrying conversion helpers so call sites read like the paper's
equations (``mw(38.9)``, ``mw_per_cm2(40.0)``) instead of bare magic factors.

The module also centralizes the physical constants the wireless-link model
depends on (Boltzmann constant, body temperature) so that the link-budget
derivation in :mod:`repro.link` is auditable in one place.
"""

from __future__ import annotations

import math

# --------------------------------------------------------------------------
# Physical constants
# --------------------------------------------------------------------------

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Human body temperature [K]; thermal noise floor reference for an implanted
#: receiver sits at body temperature, not the 290 K lab convention.
BODY_TEMPERATURE_K = 310.0

#: Safe power-density limit for an implanted device [W/m^2].
#: The paper (Section 3.2) uses 40 mW/cm^2 following Wolf & Reichert.
SAFE_POWER_DENSITY = 40e-3 / 1e-4  # 40 mW/cm^2 expressed in W/m^2

#: Maximum safe tissue temperature increase [K] (Section 3.2, 1-2 degC).
SAFE_TEMPERATURE_RISE_K = 1.0

#: Target channel spacing for one-channel-per-neuron sensing [m]
#: (Section 3.2, <= 20 um).
TARGET_CHANNEL_SPACING = 20e-6


# --------------------------------------------------------------------------
# Power
# --------------------------------------------------------------------------

def mw(value: float) -> float:
    """Convert milliwatts to watts."""
    return value * 1e-3


def to_mw(watts: float) -> float:
    """Convert watts to milliwatts."""
    return watts * 1e3


def uw(value: float) -> float:
    """Convert microwatts to watts."""
    return value * 1e-6


def to_uw(watts: float) -> float:
    """Convert watts to microwatts."""
    return watts * 1e6


def nw(value: float) -> float:
    """Convert nanowatts to watts."""
    return value * 1e-9


# --------------------------------------------------------------------------
# Area
# --------------------------------------------------------------------------

def mm2(value: float) -> float:
    """Convert square millimeters to square meters."""
    return value * 1e-6


def to_mm2(m2: float) -> float:
    """Convert square meters to square millimeters."""
    return m2 * 1e6


def cm2(value: float) -> float:
    """Convert square centimeters to square meters."""
    return value * 1e-4


def to_cm2(m2: float) -> float:
    """Convert square meters to square centimeters."""
    return m2 * 1e4


def mm(value: float) -> float:
    """Convert millimeters to meters."""
    return value * 1e-3


def um(value: float) -> float:
    """Convert micrometers to meters."""
    return value * 1e-6


def to_um(m: float) -> float:
    """Convert meters to micrometers."""
    return m * 1e6


# --------------------------------------------------------------------------
# Power density
# --------------------------------------------------------------------------

def mw_per_cm2(value: float) -> float:
    """Convert mW/cm^2 (the unit of Table 1) to W/m^2."""
    return value * 1e-3 / 1e-4


def to_mw_per_cm2(w_per_m2: float) -> float:
    """Convert W/m^2 to mW/cm^2."""
    return w_per_m2 * 1e-4 / 1e-3


# --------------------------------------------------------------------------
# Energy
# --------------------------------------------------------------------------

def pj(value: float) -> float:
    """Convert picojoules to joules."""
    return value * 1e-12


def to_pj(joules: float) -> float:
    """Convert joules to picojoules."""
    return joules * 1e12


def fj(value: float) -> float:
    """Convert femtojoules to joules."""
    return value * 1e-15


# --------------------------------------------------------------------------
# Frequency / rate / time
# --------------------------------------------------------------------------

def khz(value: float) -> float:
    """Convert kilohertz to hertz."""
    return value * 1e3


def to_khz(hz: float) -> float:
    """Convert hertz to kilohertz."""
    return hz / 1e3


def mhz(value: float) -> float:
    """Convert megahertz to hertz."""
    return value * 1e6


def mbps(value: float) -> float:
    """Convert megabits/second to bits/second."""
    return value * 1e6


def to_mbps(bps: float) -> float:
    """Convert bits/second to megabits/second."""
    return bps * 1e-6


def gbps(value: float) -> float:
    """Convert gigabits/second to bits/second."""
    return value * 1e9


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * 1e-9


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1e3


def to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * 1e6


# --------------------------------------------------------------------------
# Decibels
# --------------------------------------------------------------------------

def db_to_linear(db: float) -> float:
    """Convert a power ratio in decibels to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises:
        ValueError: if ``ratio`` is not strictly positive.
    """
    if ratio <= 0.0:
        raise ValueError(f"dB undefined for non-positive ratio {ratio!r}")
    return 10.0 * math.log10(ratio)


def thermal_noise_density(temperature_k: float = BODY_TEMPERATURE_K,
                          noise_figure_db: float = 0.0) -> float:
    """One-sided thermal noise power spectral density N0 [W/Hz].

    Args:
        temperature_k: physical temperature of the receiver front end.
        noise_figure_db: receiver noise figure folded into N0.
    """
    if temperature_k <= 0.0:
        raise ValueError("temperature must be positive")
    return BOLTZMANN * temperature_k * db_to_linear(noise_figure_db)
