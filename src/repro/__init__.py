"""MINDFUL reproduction: system-level design analysis for implantable BCIs.

A faithful, substrate-complete reimplementation of *MINDFUL: Safe,
Implantable, Large-Scale Brain-Computer Interfaces from a System-Level
Design Perspective* (MICRO 2025).  See DESIGN.md for the system inventory
and EXPERIMENTS.md for the paper-vs-measured record.

Quick start::

    from repro.core import scale_to_standard, wireless_socs
    from repro.thermal import assess

    bisc = scale_to_standard(wireless_socs()[0])
    print(assess(bisc.power_w, bisc.area_m2).describe())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
