"""Committed baseline of grandfathered violations.

The baseline lets the linter gate CI from day one: existing violations
are fingerprinted into ``.analysis-baseline.json`` and tolerated, while
anything new fails the run.  Fingerprints hash the rule id, the file, the
*normalized text* of the offending line, and an occurrence index — so
they survive unrelated edits that shift line numbers, but a new
violation (new line text, or one more copy of an old one) is always new.

The on-disk format is deterministic (sorted entries, sorted keys, fixed
indentation) so ``load -> save`` round-trips byte-identically — the
property ``tests/analysis/test_baseline.py`` pins.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import AnalysisError, Finding

__all__ = ["DEFAULT_BASELINE_PATH", "baseline_entry", "fingerprint",
           "fingerprint_findings", "load_baseline", "save_baseline",
           "split_by_baseline", "stale_entries"]

#: Baseline file name looked up at the repository root by the CLI.
DEFAULT_BASELINE_PATH = ".analysis-baseline.json"

#: Baseline schema version (bump when the entry shape changes).
SCHEMA_VERSION = 1


def fingerprint(rule: str, path: str, line_text: str,
                occurrence: int) -> str:
    """Stable id of one violation, independent of its line number."""
    payload = "\x1f".join([rule, path, " ".join(line_text.split()),
                           str(occurrence)])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def fingerprint_findings(findings: Sequence[Finding],
                         line_text_of: dict[tuple[str, int], str],
                         ) -> list[tuple[Finding, str]]:
    """Pair each finding with its fingerprint.

    Args:
        findings: findings in report order.
        line_text_of: ``(path, line) -> source line`` for every finding.

    Duplicate (rule, path, line-text) triples are disambiguated by an
    occurrence counter in report order, so two identical violations on
    different lines of one file get distinct fingerprints.
    """
    occurrences: Counter[tuple[str, str, str]] = Counter()
    out = []
    for finding in findings:
        text = line_text_of.get((finding.path, finding.line), "")
        key = (finding.rule, finding.path, " ".join(text.split()))
        index = occurrences[key]
        occurrences[key] += 1
        out.append((finding, fingerprint(finding.rule, finding.path,
                                         text, index)))
    return out


def baseline_entry(finding: Finding, digest: str) -> dict[str, object]:
    """The JSON record persisted for one grandfathered violation."""
    return {
        "fingerprint": digest,
        "path": finding.path,
        "rule": finding.rule,
        "message": finding.message,
    }


def save_baseline(path: Path | str,
                  entries: Sequence[dict[str, object]]) -> Path:
    """Write baseline entries deterministically; returns the path."""
    path = Path(path)
    ordered = sorted(
        entries,
        key=lambda e: (str(e.get("rule", "")), str(e.get("path", "")),
                       str(e.get("fingerprint", ""))))
    document = {"schema_version": SCHEMA_VERSION, "entries": ordered}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: Path | str) -> list[dict[str, object]]:
    """Read baseline entries (empty list when the file is absent).

    Raises:
        AnalysisError: on malformed baseline documents.
    """
    path = Path(path)
    if not path.exists():
        return []
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise AnalysisError(
            f"unreadable baseline {path}: {error}") from error
    entries = document.get("entries") if isinstance(document, dict) else None
    if not isinstance(entries, list) or not all(
            isinstance(e, dict) and "fingerprint" in e for e in entries):
        raise AnalysisError(
            f"malformed baseline {path}: expected "
            "{'schema_version': ..., 'entries': [{'fingerprint': ...}]}")
    return entries


def split_by_baseline(fingerprinted: Sequence[tuple[Finding, str]],
                      entries: Sequence[dict[str, object]],
                      ) -> tuple[list[tuple[Finding, str]],
                                 list[tuple[Finding, str]]]:
    """Partition findings into (new, grandfathered) against a baseline."""
    known = {str(entry["fingerprint"]) for entry in entries}
    fresh = [(f, d) for f, d in fingerprinted if d not in known]
    old = [(f, d) for f, d in fingerprinted if d in known]
    return fresh, old


def stale_entries(entries: Sequence[dict[str, object]],
                  fingerprinted: Sequence[tuple[Finding, str]],
                  ) -> list[dict[str, object]]:
    """Baseline entries whose violation no longer exists.

    A stale entry matches no current finding's fingerprint — the
    grandfathered violation was fixed (or its line rewritten, which
    re-fingerprints it as new).  Stale entries are dead suppressions at
    the baseline layer; the CLI surfaces them so the file gets pruned
    instead of silently masking a future regression.
    """
    current = {digest for _, digest in fingerprinted}
    return [entry for entry in entries
            if str(entry["fingerprint"]) not in current]
