"""Rule ``determinism``: RNGs are threaded, never ambient.

PR 2's parallel experiment engine guarantees byte-identical CSVs between
serial and process-pool runs because every random draw flows from a
``numpy.random.Generator`` derived per driver from the run seed
(:mod:`repro.perf.seeds`).  Ambient randomness breaks that silently, so
this rule forbids:

* legacy global-state NumPy randomness (``np.random.seed``,
  ``np.random.rand``, ``np.random.RandomState``, ...);
* the stdlib :mod:`random` module (global Mersenne state);
* time-derived seeds (``default_rng(time.time())``,
  ``seed=time.time_ns()``);
* constructing ``np.random.default_rng`` inside library code — the only
  sanctioned construction site is :func:`repro.obs.manifest.seeded_rng`,
  which honors the CLI ``--seed``.  Everywhere else, generators are
  *parameters*.

Tests (``test_*.py`` / ``conftest.py``) may construct pinned generators
directly; the legacy-API and stdlib-``random`` checks still apply there.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ParsedFile, Rule, register_rule
from repro.analysis.graph.project import Project

__all__ = ["DeterminismRule", "LEGACY_NUMPY_RANDOM"]

#: Legacy ``numpy.random`` globals (the pre-Generator API surface).
LEGACY_NUMPY_RANDOM = frozenset({
    "seed", "rand", "randn", "randint", "random", "ranf",
    "random_sample", "sample", "random_integers", "choice", "shuffle",
    "permutation", "uniform", "normal", "standard_normal", "poisson",
    "binomial", "exponential", "beta", "gamma", "lognormal", "laplace",
    "RandomState", "get_state", "set_state",
})

#: Call targets whose result is wall-clock time.
_TIME_CALLS = {("time", "time"), ("time", "time_ns"),
               ("time", "monotonic"), ("time", "perf_counter"),
               ("datetime", "now"), ("datetime", "utcnow")}


def _dotted(node: ast.expr) -> tuple[str, ...]:
    """('np', 'random', 'seed') for nested attribute access, else ()."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _is_time_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = _dotted(node.func)
    return len(dotted) >= 2 and dotted[-2:] in _TIME_CALLS


def _contains_time_call(node: ast.AST) -> ast.Call | None:
    for child in ast.walk(node):
        if _is_time_call(child):
            return child
    return None


def _is_test_file(parsed: ParsedFile) -> bool:
    name = parsed.path.name
    return name.startswith("test_") or name == "conftest.py"


def _is_sanctioned_rng_factory(parsed: ParsedFile) -> bool:
    """obs/manifest.py is the one library construction site."""
    parts = parsed.path.parts
    return len(parts) >= 2 and parts[-2:] == ("obs", "manifest.py")


@register_rule
class DeterminismRule(Rule):
    """Forbid ambient randomness; RNGs must be injected Generators."""

    rule_id = "determinism"
    description = ("legacy np.random globals, stdlib random, time-derived "
                   "seeds, or internal default_rng() construction")

    def check(self, project: Project) -> Iterator[Finding]:
        for parsed in project:
            yield from self._check_module(parsed)

    def _check_module(self, parsed: ParsedFile) -> Iterator[Finding]:
        allow_rng_construction = (_is_test_file(parsed)
                                  or _is_sanctioned_rng_factory(parsed))
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield from self._emit(
                            parsed, node,
                            "stdlib 'random' uses hidden global state; "
                            "thread a numpy.random.Generator instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield from self._emit(
                        parsed, node,
                        "stdlib 'random' uses hidden global state; "
                        "thread a numpy.random.Generator instead")
            elif isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if (len(dotted) >= 3 and dotted[-3] in ("np", "numpy")
                        and dotted[-2] == "random"
                        and dotted[-1] in LEGACY_NUMPY_RANDOM):
                    yield from self._emit(
                        parsed, node,
                        f"legacy global-state API "
                        f"{'.'.join(dotted[-3:])}; draw from an injected "
                        "numpy.random.Generator")
            elif isinstance(node, ast.Call):
                yield from self._check_call(parsed, node,
                                            allow_rng_construction)
            elif isinstance(node, ast.Assign):
                yield from self._check_seed_assign(parsed, node)

    def _check_call(self, parsed: ParsedFile, node: ast.Call,
                    allow_rng_construction: bool) -> Iterator[Finding]:
        dotted = _dotted(node.func)
        is_rng_factory = bool(dotted) and dotted[-1] in (
            "default_rng", "RandomState")
        if is_rng_factory and not allow_rng_construction:
            yield from self._emit(
                parsed, node,
                f"internal {dotted[-1]}() construction; accept a "
                "numpy.random.Generator parameter (the sanctioned "
                "factory is repro.obs.manifest.seeded_rng)")
        if is_rng_factory:
            for arg in list(node.args) + [k.value for k in node.keywords]:
                clock = _contains_time_call(arg)
                if clock is not None:
                    yield from self._emit(
                        parsed, clock,
                        "time-derived RNG seed defeats reproducible "
                        "runs; derive seeds from the run seed "
                        "(repro.perf.seeds)")
        for keyword in node.keywords:
            if keyword.arg and "seed" in keyword.arg.lower():
                clock = _contains_time_call(keyword.value)
                if clock is not None:
                    yield from self._emit(
                        parsed, clock,
                        f"time-derived value for {keyword.arg!r}; derive "
                        "seeds from the run seed (repro.perf.seeds)")

    def _check_seed_assign(self, parsed: ParsedFile,
                           node: ast.Assign) -> Iterator[Finding]:
        names = [t.id for t in node.targets
                 if isinstance(t, ast.Name) and "seed" in t.id.lower()]
        if not names:
            return
        clock = _contains_time_call(node.value)
        if clock is not None:
            yield from self._emit(
                parsed, clock,
                f"time-derived value for {names[0]!r}; derive seeds "
                "from the run seed (repro.perf.seeds)")

    def _emit(self, parsed: ParsedFile, node: ast.AST,
              message: str) -> Iterator[Finding]:
        found = self.finding(parsed, node, message)
        if found is not None:
            yield found
