"""Rule ``export-hygiene``: honest public surfaces, no mutable defaults.

Two checks that keep module interfaces trustworthy as the codebase grows:

* **``__all__`` consistency** — in any module declaring ``__all__``,
  every listed name must actually be bound at module level, and every
  public (non-underscore) top-level function or class must be listed.
  A stale ``__all__`` silently narrows or widens ``import *`` surfaces
  and misleads readers about the supported API.
* **mutable default arguments** — ``def f(x=[])``, ``def f(x={})``,
  ``def f(x=set())`` share one instance across calls; the fix is a
  ``None`` default (or ``dataclasses.field(default_factory=...)``,
  which this rule deliberately does not flag).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ParsedFile, Rule, register_rule
from repro.analysis.graph.project import Project

__all__ = ["ExportHygieneRule"]

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict",
                  "OrderedDict", "Counter", "deque"}


def _module_bindings(tree: ast.Module) -> set[str]:
    """Every name bound at module top level (defs, classes, imports,
    assignments — including inside top-level try/if blocks)."""
    bound: set[str] = set()

    def visit_body(body: list[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add((alias.asname
                               or alias.name.split(".", 1)[0]))
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound.add(alias.asname or alias.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            bound.add(sub.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    bound.add(node.target.id)
            elif isinstance(node, (ast.If, ast.Try)):
                visit_body(node.body)
                for handler in getattr(node, "handlers", []):
                    visit_body(handler.body)
                visit_body(node.orelse)
                visit_body(getattr(node, "finalbody", []))

    visit_body(tree.body)
    return bound


def _declared_all(tree: ast.Module) -> tuple[list[str], ast.AST] | None:
    """(names, node) of a literal ``__all__`` declaration, if any."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == "__all__"
                   for t in node.targets):
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)) and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in node.value.elts):
            return [e.value for e in node.value.elts], node
    return None


@register_rule
class ExportHygieneRule(Rule):
    """__all__ must match reality; defaults must be immutable."""

    rule_id = "export-hygiene"
    description = ("__all__ inconsistent with module bindings/public "
                   "defs, or mutable default argument")

    def check(self, project: Project) -> Iterator[Finding]:
        for parsed in project:
            yield from self._check_all(parsed)
            yield from self._check_defaults(parsed)

    def _check_all(self, parsed: ParsedFile) -> Iterator[Finding]:
        declared = _declared_all(parsed.tree)
        if declared is None:
            return
        names, node = declared
        bound = _module_bindings(parsed.tree)
        for name in names:
            if name not in bound:
                found = self.finding(
                    parsed, node,
                    f"__all__ exports {name!r}, which the module never "
                    "binds")
                if found is not None:
                    yield found
        listed = set(names)
        for top in parsed.tree.body:
            if not isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                continue
            if top.name.startswith("_") or top.name in listed:
                continue
            kind = "class" if isinstance(top, ast.ClassDef) else "function"
            found = self.finding(
                parsed, top,
                f"public {kind} {top.name!r} missing from __all__ "
                "(export it or make it private)")
            if found is not None:
                yield found

    def _check_defaults(self, parsed: ParsedFile) -> Iterator[Finding]:
        for node in ast.walk(parsed.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if isinstance(default, _MUTABLE_LITERALS):
                    label = type(default).__name__.lower()
                elif (isinstance(default, ast.Call)
                      and isinstance(default.func, ast.Name)
                      and default.func.id in _MUTABLE_CALLS):
                    label = f"{default.func.id}()"
                else:
                    continue
                where = getattr(node, "name", "<lambda>")
                found = self.finding(
                    parsed, default,
                    f"mutable default argument ({label}) in {where}; "
                    "use None and create the value inside the function")
                if found is not None:
                    yield found
