"""Rule ``driver-telemetry``: registered drivers report into the
observability layer.

The unified run timeline (:mod:`repro.obs.events`) is only as complete
as the drivers feeding it: a driver that never opens a span renders its
work invisible to ``python -m repro obs view``/``critical-path``, and
one that never exports a metric contributes nothing to the
percentile/histogram summaries the dashboards aggregate.  Every module
listed in ``ALL_EXPERIMENTS`` / ``EXTENSION_EXPERIMENTS`` must
therefore:

* open at least one span (``with span("<name>.<stage>"): ...``) around
  its work, and
* export at least one metric (a call to ``inc``, ``observe``, or
  ``set_gauge``).

Registry discovery mirrors the ``experiment-contract`` rule (the
``repro/experiments/__init__.py`` path within the analyzed set); drivers
the registry names but the tree lacks are that rule's finding, not ours.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ParsedFile, Rule, register_rule
from repro.analysis.graph.project import Project
from repro.analysis.rules.contracts import _registered_drivers

__all__ = ["DriverTelemetryRule", "METRIC_CALLS"]

#: Metric-export entry points of :mod:`repro.obs.metrics`.
METRIC_CALLS = ("inc", "observe", "set_gauge")

_REGISTRY_SUFFIX = ("repro", "experiments", "__init__.py")


def _callee_name(node: ast.AST) -> str | None:
    """Trailing name of a call target (``span`` or ``obs.span``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _opens_span(parsed: ParsedFile) -> bool:
    """True when any ``with`` block enters a ``span(...)`` context."""
    for node in ast.walk(parsed.tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if (isinstance(expr, ast.Call)
                    and _callee_name(expr.func) == "span"):
                return True
    return False


def _exports_metric(parsed: ParsedFile) -> bool:
    """True when any metric-export helper is called."""
    for node in ast.walk(parsed.tree):
        if (isinstance(node, ast.Call)
                and _callee_name(node.func) in METRIC_CALLS):
            return True
    return False


@register_rule
class DriverTelemetryRule(Rule):
    """Registered drivers must span their work and export metrics."""

    rule_id = "driver-telemetry"
    description = ("registered driver never opens a span or never "
                   "exports a metric (invisible to the run timeline "
                   "and dashboards)")

    def check(self, project: Project) -> Iterator[Finding]:
        by_path = {parsed.path.resolve(): parsed for parsed in project}
        registries = [parsed for parsed in project
                      if parsed.path.parts[-3:] == _REGISTRY_SUFFIX]
        for registry in registries:
            package_dir = registry.path.resolve().parent
            for module_name, _ in _registered_drivers(registry):
                driver = by_path.get(package_dir / f"{module_name}.py")
                if driver is None:
                    continue  # experiment-contract reports the gap
                if not _opens_span(driver):
                    found = self.finding(
                        driver, None,
                        "driver never opens a span (with span(...)); "
                        "its stages are invisible to the event "
                        "timeline and critical-path analytics",
                        line=1, col=0)
                    if found is not None:
                        yield found
                if not _exports_metric(driver):
                    found = self.finding(
                        driver, None,
                        "driver never exports a metric (no inc/observe/"
                        "set_gauge call); dashboards and percentile "
                        "summaries see none of its results",
                        line=1, col=0)
                    if found is not None:
                        yield found
