"""Rule ``experiment-contract``: registered drivers declare their schema.

``repro.experiments`` registers every figure/table driver in
``ALL_EXPERIMENTS`` / ``EXTENSION_EXPERIMENTS``; the CLI, the serial
engine, and the process-pool engine all discover work from those tuples.
A registered driver therefore must honor the contract the engines assume:

* ``run()`` and ``render(result)`` exist at module level;
* the CSV schema is declared as a non-empty module-level ``COLUMNS``
  list/tuple of strings (the explicit column order ``save_csv`` writes);
* ``run()`` builds an :class:`repro.experiments.base.ExperimentResult`
  whose ``name=`` literal matches the module name — that name keys the
  ``<name>.csv`` + ``<name>.manifest.json`` pair, so a mismatch silently
  orphans the manifest — and which is constructed with
  ``columns=COLUMNS`` so the declared schema is what gets written.

The rule finds the registry by path (``repro/experiments/__init__.py``
within the analyzed set), so the fixture corpus can mirror the layout.

Drivers ported to the declarative DAG layer (:mod:`repro.dag`) get a
second, static half of the stage contract: every ``Stage(...)``
declaration in a module defining ``build_graph()`` is checked —

* ``fn`` must be a module-level function of the driver (the warm-pool
  workers re-resolve it by name);
* the declared ``inputs`` + ``consts`` keys (+ the injected ``seed``
  when ``seed_label`` is set) must match the function's actual
  signature: no undeclared values, every required parameter covered
  (``**kwargs`` opts the function out);
* when every ``return`` in the function is a dict literal with constant
  string keys, those keys must equal the declared ``outputs``.

Dynamic declarations (computed names, comprehension-built tuples) are
skipped — the scheduler's runtime checks
(:meth:`repro.dag.node.Stage.check_signature` / ``check_outputs``)
still cover them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ParsedFile, Rule, register_rule
from repro.analysis.graph.project import Project

__all__ = ["ExperimentContractRule", "REGISTRY_TUPLES"]

#: Module-level tuples listing registered driver modules.
REGISTRY_TUPLES = ("ALL_EXPERIMENTS", "EXTENSION_EXPERIMENTS")

_REGISTRY_SUFFIX = ("repro", "experiments", "__init__.py")


def _registered_drivers(parsed: ParsedFile) -> list[tuple[str, ast.AST]]:
    """Driver module names listed in the registry tuples."""
    drivers: list[tuple[str, ast.AST]] = []
    for node in parsed.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        names = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if not any(name in REGISTRY_TUPLES for name in names):
            continue
        value = node.value
        # Tolerate `TUPLE_A + (x,)`-style concatenations by walking all
        # Name elements of any tuple/list display in the expression.
        for sub in ast.walk(value):
            if isinstance(sub, (ast.Tuple, ast.List)):
                for element in sub.elts:
                    if isinstance(element, ast.Name):
                        drivers.append((element.id, element))
    return drivers


def _module_contract(parsed: ParsedFile, module_name: str) -> list[str]:
    """Contract violations of one driver module (empty when clean)."""
    problems: list[str] = []
    top = parsed.tree.body
    defs = {n.name for n in top
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))}
    for required in ("run", "render"):
        if required not in defs:
            problems.append(f"missing module-level def {required}()")

    columns_ok = False
    for node in top:
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == "COLUMNS"
                   for t in node.targets):
            continue
        value = node.value
        if (isinstance(value, (ast.List, ast.Tuple)) and value.elts
                and all(isinstance(e, ast.Constant)
                        and isinstance(e.value, str)
                        for e in value.elts)):
            columns_ok = True
    if not columns_ok:
        problems.append("missing non-empty COLUMNS list of column names "
                        "(the declared CSV schema)")

    result_calls = [
        node for node in ast.walk(parsed.tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "ExperimentResult"]
    if not result_calls:
        problems.append("never constructs ExperimentResult (no CSV or "
                        "manifest will be emitted)")
        return problems
    names = set()
    passes_columns = False
    for call in result_calls:
        for keyword in call.keywords:
            if keyword.arg == "name" and isinstance(
                    keyword.value, ast.Constant):
                names.add(keyword.value.value)
            if keyword.arg == "columns":
                passes_columns = True
    if module_name not in names:
        problems.append(
            f"ExperimentResult name= must be {module_name!r} (it keys "
            f"the CSV/manifest pair); found {sorted(map(str, names))}")
    if not passes_columns:
        problems.append("ExperimentResult(...) must pass "
                        "columns=COLUMNS so the declared schema is the "
                        "written one")
    return problems


def _const_str_items(node: ast.AST | None) -> list[str] | None:
    """The strings of a tuple/list display of constants, else None."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    items: list[str] = []
    for element in node.elts:
        if (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            items.append(element.value)
        else:
            return None
    return items


def _function_params(
        fn: ast.FunctionDef | ast.AsyncFunctionDef
) -> tuple[set[str], set[str], bool]:
    """``(accepted, required, has_var_keyword)`` of a def's signature."""
    args = fn.args
    if args.kwarg is not None:
        return set(), set(), True
    named = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    accepted = {a.arg for a in named}
    positional = list(args.posonlyargs) + list(args.args)
    required = {a.arg for a in
                positional[:len(positional) - len(args.defaults)]}
    required |= {a.arg for a, default
                 in zip(args.kwonlyargs, args.kw_defaults)
                 if default is None}
    return accepted, required, False


def _literal_return_keys(
        fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str] | None:
    """The union of returned dict-literal keys, or None when any return
    is not a dict literal with constant string keys (skip the check)."""
    keys: set[str] = set()
    saw_return = False
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue  # nested scopes return elsewhere
        if isinstance(node, ast.Return):
            saw_return = True
            value = node.value
            if not isinstance(value, ast.Dict):
                return None
            for key in value.keys:
                if (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    keys.add(key.value)
                else:
                    return None
        stack.extend(ast.iter_child_nodes(node))
    return keys if saw_return else None


def _stage_declarations(parsed: ParsedFile) -> list[ast.Call]:
    """Every ``Stage(...)`` call in a module defining ``build_graph``."""
    top_defs = {n.name for n in parsed.tree.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))}
    if "build_graph" not in top_defs:
        return []
    return [node for node in ast.walk(parsed.tree)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "Stage"]


def _stage_contract(parsed: ParsedFile) -> list[tuple[ast.AST, str]]:
    """Static stage-declaration violations of one DAG-ported driver."""
    problems: list[tuple[ast.AST, str]] = []
    top_defs = {n.name: n for n in parsed.tree.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))}
    for call in _stage_declarations(parsed):
        keywords = {k.arg: k.value for k in call.keywords
                    if k.arg is not None}
        name_node = call.args[0] if call.args else keywords.get("name")
        label = (name_node.value
                 if isinstance(name_node, ast.Constant)
                 and isinstance(name_node.value, str) else "<dynamic>")
        fn_node = (call.args[1] if len(call.args) > 1
                   else keywords.get("fn"))
        if not (isinstance(fn_node, ast.Name)
                and fn_node.id in top_defs):
            problems.append((call, (
                f"Stage {label!r}: fn must be a module-level function "
                f"of the driver (workers re-resolve it by name)")))
            continue
        fn_def = top_defs[fn_node.id]
        inputs = _const_str_items(keywords.get("inputs"))
        if "inputs" not in keywords:
            inputs = []
        outputs = _const_str_items(keywords.get("outputs"))
        if "outputs" not in keywords:
            outputs = []
        consts_node = keywords.get("consts")
        consts: list[str] | None = []
        if consts_node is not None:
            if (isinstance(consts_node, ast.Dict)
                    and all(isinstance(k, ast.Constant)
                            and isinstance(k.value, str)
                            for k in consts_node.keys)):
                consts = [k.value for k in consts_node.keys]
            else:
                consts = None
        seed_node = keywords.get("seed_label")
        seeded = (seed_node is not None
                  and not (isinstance(seed_node, ast.Constant)
                           and seed_node.value is None))
        accepted, required, var_keyword = _function_params(fn_def)
        if not var_keyword and inputs is not None and consts is not None:
            provided = set(inputs) | set(consts)
            if seeded:
                provided.add("seed")
            unknown = sorted(provided - accepted)
            if unknown:
                problems.append((call, (
                    f"Stage {label!r}: declared values {unknown} are "
                    f"not parameters of {fn_node.id}()")))
            missing = sorted(required - provided)
            if missing:
                problems.append((call, (
                    f"Stage {label!r}: required parameters {missing} "
                    f"of {fn_node.id}() are not declared as inputs or "
                    f"consts")))
        if outputs is not None:
            returned = _literal_return_keys(fn_def)
            if returned is not None and returned != set(outputs):
                problems.append((call, (
                    f"Stage {label!r}: {fn_node.id}() returns keys "
                    f"{sorted(returned)} but declares outputs "
                    f"{sorted(outputs)}")))
    return problems


@register_rule
class ExperimentContractRule(Rule):
    """Registered experiment drivers must honor the engine contract."""

    rule_id = "experiment-contract"
    description = ("registered driver missing run/render, a declared "
                   "COLUMNS schema, a manifest-keyed ExperimentResult, "
                   "or a Stage declaration that contradicts its "
                   "function's signature or returned outputs")

    def check(self, project: Project) -> Iterator[Finding]:
        by_path = {parsed.path.resolve(): parsed for parsed in project}
        registries = [parsed for parsed in project
                      if parsed.path.parts[-3:] == _REGISTRY_SUFFIX]
        for registry in registries:
            package_dir = registry.path.resolve().parent
            for module_name, node in _registered_drivers(registry):
                driver_path = package_dir / f"{module_name}.py"
                driver = by_path.get(driver_path)
                if driver is None:
                    found = self.finding(
                        registry, node,
                        f"registered driver {module_name!r} has no "
                        f"module {module_name}.py in the analyzed tree")
                    if found is not None:
                        yield found
                    continue
                for problem in _module_contract(driver, module_name):
                    found = self.finding(driver, None, problem,
                                         line=1, col=0)
                    if found is not None:
                        yield found
                for node_, problem in _stage_contract(driver):
                    found = self.finding(driver, node_, problem)
                    if found is not None:
                        yield found
