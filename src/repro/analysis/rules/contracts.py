"""Rule ``experiment-contract``: registered drivers declare their schema.

``repro.experiments`` registers every figure/table driver in
``ALL_EXPERIMENTS`` / ``EXTENSION_EXPERIMENTS``; the CLI, the serial
engine, and the process-pool engine all discover work from those tuples.
A registered driver therefore must honor the contract the engines assume:

* ``run()`` and ``render(result)`` exist at module level;
* the CSV schema is declared as a non-empty module-level ``COLUMNS``
  list/tuple of strings (the explicit column order ``save_csv`` writes);
* ``run()`` builds an :class:`repro.experiments.base.ExperimentResult`
  whose ``name=`` literal matches the module name — that name keys the
  ``<name>.csv`` + ``<name>.manifest.json`` pair, so a mismatch silently
  orphans the manifest — and which is constructed with
  ``columns=COLUMNS`` so the declared schema is what gets written.

The rule finds the registry by path (``repro/experiments/__init__.py``
within the analyzed set), so the fixture corpus can mirror the layout.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ParsedFile, Rule, register_rule
from repro.analysis.graph.project import Project

__all__ = ["ExperimentContractRule", "REGISTRY_TUPLES"]

#: Module-level tuples listing registered driver modules.
REGISTRY_TUPLES = ("ALL_EXPERIMENTS", "EXTENSION_EXPERIMENTS")

_REGISTRY_SUFFIX = ("repro", "experiments", "__init__.py")


def _registered_drivers(parsed: ParsedFile) -> list[tuple[str, ast.AST]]:
    """Driver module names listed in the registry tuples."""
    drivers: list[tuple[str, ast.AST]] = []
    for node in parsed.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        names = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if not any(name in REGISTRY_TUPLES for name in names):
            continue
        value = node.value
        # Tolerate `TUPLE_A + (x,)`-style concatenations by walking all
        # Name elements of any tuple/list display in the expression.
        for sub in ast.walk(value):
            if isinstance(sub, (ast.Tuple, ast.List)):
                for element in sub.elts:
                    if isinstance(element, ast.Name):
                        drivers.append((element.id, element))
    return drivers


def _module_contract(parsed: ParsedFile, module_name: str) -> list[str]:
    """Contract violations of one driver module (empty when clean)."""
    problems: list[str] = []
    top = parsed.tree.body
    defs = {n.name for n in top
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))}
    for required in ("run", "render"):
        if required not in defs:
            problems.append(f"missing module-level def {required}()")

    columns_ok = False
    for node in top:
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == "COLUMNS"
                   for t in node.targets):
            continue
        value = node.value
        if (isinstance(value, (ast.List, ast.Tuple)) and value.elts
                and all(isinstance(e, ast.Constant)
                        and isinstance(e.value, str)
                        for e in value.elts)):
            columns_ok = True
    if not columns_ok:
        problems.append("missing non-empty COLUMNS list of column names "
                        "(the declared CSV schema)")

    result_calls = [
        node for node in ast.walk(parsed.tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "ExperimentResult"]
    if not result_calls:
        problems.append("never constructs ExperimentResult (no CSV or "
                        "manifest will be emitted)")
        return problems
    names = set()
    passes_columns = False
    for call in result_calls:
        for keyword in call.keywords:
            if keyword.arg == "name" and isinstance(
                    keyword.value, ast.Constant):
                names.add(keyword.value.value)
            if keyword.arg == "columns":
                passes_columns = True
    if module_name not in names:
        problems.append(
            f"ExperimentResult name= must be {module_name!r} (it keys "
            f"the CSV/manifest pair); found {sorted(map(str, names))}")
    if not passes_columns:
        problems.append("ExperimentResult(...) must pass "
                        "columns=COLUMNS so the declared schema is the "
                        "written one")
    return problems


@register_rule
class ExperimentContractRule(Rule):
    """Registered experiment drivers must honor the engine contract."""

    rule_id = "experiment-contract"
    description = ("registered driver missing run/render, a declared "
                   "COLUMNS schema, or a manifest-keyed "
                   "ExperimentResult")

    def check(self, project: Project) -> Iterator[Finding]:
        by_path = {parsed.path.resolve(): parsed for parsed in project}
        registries = [parsed for parsed in project
                      if parsed.path.parts[-3:] == _REGISTRY_SUFFIX]
        for registry in registries:
            package_dir = registry.path.resolve().parent
            for module_name, node in _registered_drivers(registry):
                driver_path = package_dir / f"{module_name}.py"
                driver = by_path.get(driver_path)
                if driver is None:
                    found = self.finding(
                        registry, node,
                        f"registered driver {module_name!r} has no "
                        f"module {module_name}.py in the analyzed tree")
                    if found is not None:
                        yield found
                    continue
                for problem in _module_contract(driver, module_name):
                    found = self.finding(driver, None, problem,
                                         line=1, col=0)
                    if found is not None:
                        yield found
