"""Rule ``pipe-transfer``: worker dispatch payloads stay primitive.

The warm-worker pipe (:meth:`repro.perf.pool.WarmPool.submit`) is a
process boundary: everything in a task spec is pickled in the parent
and unpickled in a long-lived worker.  The engine's contract
(:mod:`repro.perf.parallel`) is that only *small primitives* cross —
names, seeds, flags, plain dicts — never live objects: a file handle
or socket does not pickle, a module or lambda drags parent state
across ``fork``, a custom class instance smuggles code identity and
can silently diverge between parent and worker versions.

The check is interprocedural from the dispatch sites: for every
``<pool>.submit(spec)`` call whose receiver provably is the warm pool
(``get_pool(...)`` / ``WarmPool(...)``), the spec expression is traced
to its dict literal — directly, through a local variable, or through
the return of the spec-builder function it calls (the
``make_spec``-style helper, nested or module-level) — and each value
is classified against the transfer allowlist:

* **allowed**: constants, f-strings, arithmetic/boolean combinations,
  ``str()``/``int()``/``float()``/``bool()`` conversions, container
  literals of allowed values, conditional expressions of allowed
  values, ``x.to_dict()``-style serializations, and opaque reads
  (parameters, attributes, subscripts) the analyzer cannot refute;
* **flagged**: lambdas and comprehension/generator objects, function
  and class references, module aliases, ``open(...)`` handles, shared
  memory objects, and instances of project-defined classes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ParsedFile, Rule, register_rule
from repro.analysis.graph.callgraph import CallGraph, dotted_parts
from repro.analysis.graph.project import Project

__all__ = ["TransferRule"]

#: Builtin conversions that always yield transfer-safe values.
_SAFE_CALLS = {"str", "int", "float", "bool", "len", "repr", "round",
               "min", "max", "abs", "sorted", "list", "dict", "tuple"}

#: Method names treated as explicit serialization to primitives.
_SERIALIZE_METHODS = {"to_dict", "as_dict", "to_json", "dict"}

#: Call targets that produce known-untransferable values.
_FORBIDDEN_CALLS = {"open"}


def _is_test_file(parsed: ParsedFile) -> bool:
    stem = parsed.path.stem
    return stem.startswith("test_") or stem == "conftest"


def _pool_receivers(func_node: ast.AST, symbols,
                    graph: CallGraph) -> set[str]:
    """Local names in ``func_node`` bound to a warm pool."""
    names: set[str] = set()
    for node in ast.walk(func_node):
        if not (isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)):
            continue
        targets = graph.resolve_name(node.value.func, symbols)
        if any(q.endswith(":get_pool") or q.endswith(":WarmPool.__init__")
               or q.endswith(":WarmPool") for q in targets):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _nested_function(func_node: ast.AST, name: str):
    """A def named ``name`` nested anywhere inside ``func_node``."""
    for node in ast.walk(func_node):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == name and node is not func_node):
            return node
    return None


def _local_binding(scopes: list[ast.AST], name: str) -> ast.expr | None:
    """The last plain assignment to ``name`` in the given scopes."""
    bound: ast.expr | None = None
    for scope in scopes:
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        bound = node.value
    return bound


@register_rule
class TransferRule(Rule):
    """Only allowlisted value shapes may enter a worker task spec."""

    rule_id = "pipe-transfer"
    description = ("non-allowlisted value (callable, handle, module, "
                   "or project-class instance) flows into a worker "
                   "dispatch payload")

    def check(self, project: Project) -> Iterator[Finding]:
        graph = project.call_graph
        for parsed in project:
            if _is_test_file(parsed):
                continue
            symbols = project.symbols_of(parsed)
            for local, func_node in symbols.functions.items():
                pools = _pool_receivers(func_node, symbols, graph)
                if not pools:
                    continue
                yield from self._check_dispatches(
                    project, graph, parsed, symbols, func_node, pools)

    def _check_dispatches(self, project, graph, parsed, symbols,
                          func_node, pools) -> Iterator[Finding]:
        for node in ast.walk(func_node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "submit"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in pools
                    and node.args):
                continue
            spec = node.args[0]
            yield from self._check_spec(project, graph, parsed,
                                        symbols, func_node, spec)

    def _check_spec(self, project, graph, parsed, symbols, func_node,
                    spec: ast.expr) -> Iterator[Finding]:
        """Trace a submit argument to dict literal(s) and vet values."""
        for owner_parsed, owner_symbols, literal in self._spec_dicts(
                project, graph, parsed, symbols, func_node, spec):
            scopes = [func_node]
            for key_node, value in zip(literal.keys, literal.values):
                key = (key_node.value
                       if isinstance(key_node, ast.Constant) else "?")
                reason = self._classify(owner_symbols, graph, scopes,
                                        value)
                if reason is None:
                    continue
                finding = self.finding(
                    owner_parsed, value,
                    f"task spec key '{key}' carries {reason}; only "
                    f"primitives (str/int/float/bool/None and "
                    f"containers of them) may cross the worker pipe")
                if finding is not None:
                    yield finding

    def _spec_dicts(self, project, graph, parsed, symbols, func_node,
                    spec: ast.expr):
        """Yield ``(parsed, symbols, dict-literal)`` for a spec expr."""
        if isinstance(spec, ast.Dict):
            yield parsed, symbols, spec
            return
        if isinstance(spec, ast.Name):
            bound = _local_binding([func_node], spec.id)
            if bound is not None:
                yield from self._spec_dicts(project, graph, parsed,
                                            symbols, func_node, bound)
            return
        if isinstance(spec, ast.Call):
            # A spec-builder call: nested def first, then call graph.
            callee = None
            if isinstance(spec.func, ast.Name):
                callee = _nested_function(func_node, spec.func.id)
            if callee is not None:
                yield from self._returned_dicts(parsed, symbols, callee)
                return
            for qname in graph.resolve_name(spec.func, symbols):
                info = graph.functions[qname]
                owner_symbols = project.symbols_of(info.parsed)
                yield from self._returned_dicts(info.parsed,
                                                owner_symbols,
                                                info.node)

    @staticmethod
    def _returned_dicts(parsed, symbols, func_node):
        for node in ast.walk(func_node):
            if (isinstance(node, ast.Return)
                    and isinstance(node.value, ast.Dict)):
                yield parsed, symbols, node.value

    # -- value classification ---------------------------------------------

    def _classify(self, symbols, graph: CallGraph, scopes,
                  value: ast.expr) -> str | None:
        """Why a value is untransferable, or None when allowed."""
        if isinstance(value, ast.Constant):
            return None
        if isinstance(value, (ast.Lambda,)):
            return "a lambda (unpicklable callable)"
        if isinstance(value, ast.GeneratorExp):
            return "a generator object"
        if isinstance(value, ast.JoinedStr):
            return None
        if isinstance(value, (ast.BinOp, ast.UnaryOp, ast.Compare,
                              ast.BoolOp)):
            return None
        if isinstance(value, ast.IfExp):
            return (self._classify(symbols, graph, scopes, value.body)
                    or self._classify(symbols, graph, scopes,
                                      value.orelse))
        if isinstance(value, (ast.Dict,)):
            for sub in value.values:
                reason = self._classify(symbols, graph, scopes, sub)
                if reason is not None:
                    return reason
            return None
        if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            for sub in value.elts:
                reason = self._classify(symbols, graph, scopes, sub)
                if reason is not None:
                    return reason
            return None
        if isinstance(value, ast.Name):
            return self._classify_name(symbols, graph, scopes, value.id)
        if isinstance(value, ast.Call):
            return self._classify_call(symbols, graph, scopes, value)
        if isinstance(value, (ast.Attribute, ast.Subscript)):
            # Opaque reads: cannot refute, so allowed (module aliases
            # themselves are caught as bare names).
            return None
        return None

    def _classify_name(self, symbols, graph, scopes,
                       name: str) -> str | None:
        if name in symbols.functions:
            return f"the function '{name}' (code reference)"
        if name in symbols.classes:
            return f"the class '{name}' (code reference)"
        if name in symbols.module_aliases:
            return f"the module alias '{name}'"
        if name in symbols.imports:
            resolved = graph.table.resolve_symbol(symbols.imports[name],
                                                  symbols)
            if resolved is not None:
                module, local = resolved
                if local in module.functions:
                    return f"the function '{name}' (code reference)"
                if local in module.classes:
                    return f"the class '{name}' (code reference)"
            if graph.table.resolve_module(symbols.imports[name],
                                          symbols) is not None:
                return f"the module alias '{name}'"
        bound = _local_binding(scopes, name)
        if bound is not None and not isinstance(bound, ast.Name):
            return self._classify(symbols, graph, scopes, bound)
        return None  # parameter / closure read: cannot refute

    def _classify_call(self, symbols, graph, scopes,
                       call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in _SERIALIZE_METHODS:
                return None
            # e.g. shared_memory.SharedMemory(...)
            parts = dotted_parts(func)
            expanded = symbols.expand(parts) if parts else ""
            if expanded.endswith("SharedMemory"):
                return "a live SharedMemory object"
        if isinstance(func, ast.Name):
            if func.id in _SAFE_CALLS:
                return None
            if func.id in _FORBIDDEN_CALLS:
                return "an open file handle"
        targets = graph.resolve_name(func, symbols)
        for qname in targets:
            local = graph.functions[qname].local
            if local.endswith(".__init__"):
                cls = local.rsplit(".", 1)[0]
                return (f"an instance of project class '{cls}' "
                        f"(not on the transfer allowlist)")
        return None
