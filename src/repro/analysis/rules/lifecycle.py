"""Rule ``resource-lifecycle``: acquire/release balance on all paths.

PR 7 split resource ownership across processes: a shared-memory segment
is *created* by the worker (which must close its mapping and unregister
it from the resource tracker) and *unlinked* by the parent (which must
close and unlink after decoding) — see :mod:`repro.perf.shm`.  The
cache store holds an ``fcntl`` lock that must be dropped on every exit,
and tracer spans must end.  A release that only happens on the happy
path is exactly the bug class this rule exists for, so the check is
*path-sensitive*: each acquisition is tracked through every enumerated
CFG path (:mod:`repro.analysis.graph.dataflow`) and flagged unless each
required release happens on **all** of them.

Protocol table (kind -> required release groups; each group is
satisfied by any one of its operations on every path):

=============  =====================================================
``shm``        ``close()``; then ``unlink()`` *or* ownership escape
               (passed to a call such as ``_untrack``/
               ``resource_tracker.unregister``, returned, or stored)
``file``       ``close()`` (or escape) for bare ``open()`` handles
``flock``      ``fcntl.flock(h, LOCK_UN)`` matching the ``LOCK_EX``
``span``       ``end()``/``close()``/``finish()`` for spans acquired
               outside a ``with``
=============  =====================================================

``with`` blocks and try/finally are the sanctioned forms — both
satisfy the rule naturally (context managers are never tracked;
finally bodies lie on every enumerated path).  Ownership *escape*
(returning the handle, passing it onward, storing it on an object)
transfers the release obligation to the receiver and satisfies all
groups.  Acquisitions whose constructor raised (the path jumps to an
``except`` entry straight from the acquiring statement) never produced
a resource and are discounted.  Functions whose branching exceeds the
path-enumeration budget are skipped rather than guessed at.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ParsedFile, Rule, register_rule
from repro.analysis.graph.callgraph import dotted_parts
from repro.analysis.graph.cfg import Test, WithEnter, WithExit
from repro.analysis.graph.dataflow import iter_paths
from repro.analysis.graph.project import Project

__all__ = ["LifecycleRule", "RELEASE_GROUPS"]

#: kind -> ordered release groups; one method of each group must run
#: on every path (escape satisfies every group at once).
RELEASE_GROUPS: dict[str, tuple[tuple[str, ...], ...]] = {
    "shm": (("close",), ("unlink",)),
    "file": (("close",),),
    "span": (("end", "close", "finish"),),
    # flock's release is the positional LOCK_UN call, matched against
    # the same handle expression in ``_apply_call``.
    "flock": (("LOCK_UN",),),
}

#: Human labels for findings, per kind.
_KIND_LABEL = {
    "shm": "shared-memory segment",
    "file": "file handle",
    "span": "tracer span",
    "flock": "fcntl lock",
}

_GROUP_LABEL = {
    ("close",): "closed",
    ("unlink",): "unlinked (or ownership-transferred)",
    ("end", "close", "finish"): "ended",
}


def _is_test_file(parsed: ParsedFile) -> bool:
    stem = parsed.path.stem
    return stem.startswith("test_") or stem == "conftest"


def _call_expansion(call: ast.Call, symbols) -> str:
    """Canonical dotted name of a call's target ('' if not dotted)."""
    parts = dotted_parts(call.func)
    return symbols.expand(parts) if parts else ""


def _acquisition_kind(call: ast.Call, symbols) -> str | None:
    """The resource kind a call acquires, or None."""
    expanded = _call_expansion(call, symbols)
    if expanded.endswith("SharedMemory"):
        return "shm"
    if expanded == "open":  # builtin only; Path.open is method-dotted
        return "file"
    tail = expanded.rpartition(".")[2]
    if tail == "span" and "span" in symbols.imports:
        target = symbols.imports["span"]
        if target.endswith("trace.span") or target == "span":
            return "span"
    return None


def _flock_mode(call: ast.Call, symbols) -> tuple[str, str] | None:
    """``(lock key, 'EX'|'UN')`` for an ``fcntl.flock`` call."""
    if _call_expansion(call, symbols) != "fcntl.flock":
        return None
    if len(call.args) < 2:
        return None
    handle = ast.dump(call.args[0])
    parts = dotted_parts(call.args[1])
    mode = symbols.expand(parts) if parts else ""
    if mode.endswith("LOCK_EX"):
        return handle, "EX"
    if mode.endswith("LOCK_UN"):
        return handle, "UN"
    return None


class _Tracked:
    """One live resource on one path."""

    __slots__ = ("kind", "node", "satisfied")

    def __init__(self, kind: str, node: ast.AST) -> None:
        self.kind = kind
        self.node = node
        self.satisfied: set[tuple[str, ...]] = set()

    def missing(self) -> list[tuple[str, ...]]:
        groups = RELEASE_GROUPS.get(self.kind, ())
        return [g for g in groups if g not in self.satisfied]


@register_rule
class LifecycleRule(Rule):
    """Resources acquired in a function must be released on all paths."""

    rule_id = "resource-lifecycle"
    description = ("shm segment / file handle / fcntl lock / span not "
                   "released on every control-flow path (use with or "
                   "try/finally)")

    def check(self, project: Project) -> Iterator[Finding]:
        for parsed in project:
            if _is_test_file(parsed):
                continue
            symbols = project.symbols_of(parsed)
            for node in symbols.functions.values():
                yield from self._check_function(project, parsed,
                                                symbols, node)

    def _check_function(self, project: Project, parsed: ParsedFile,
                        symbols, func) -> Iterator[Finding]:
        if not self._may_acquire(func, symbols):
            return
        cfg = project.cfg_of(func)
        path_set = iter_paths(cfg)
        if path_set.truncated:
            return  # cannot enumerate honestly: stay silent
        #: (var-or-key, acq line, kind, group) -> acquisition node
        leaks: dict[tuple[str, int, str, tuple[str, ...]], ast.AST] = {}
        for path in path_set.paths:
            self._walk_path(cfg, symbols, path, leaks)
        for (name, _, kind, group), node in sorted(
                leaks.items(), key=lambda kv: (kv[0][1], kv[0][0])):
            label = _KIND_LABEL[kind]
            if kind == "flock":
                message = (f"{label} acquired here is not released "
                           f"with LOCK_UN on every path; unlock in a "
                           f"finally block")
            else:
                wanted = _GROUP_LABEL.get(group, "/".join(group))
                message = (f"{label} '{name}' acquired here is not "
                           f"{wanted} on every path; use a context "
                           f"manager or try/finally")
            finding = self.finding(parsed, node, message)
            if finding is not None:
                yield finding

    @staticmethod
    def _may_acquire(func, symbols) -> bool:
        """Cheap pre-filter: does the body mention an acquirable?"""
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                if (_acquisition_kind(node, symbols) is not None
                        or _flock_mode(node, symbols) is not None):
                    return True
        return False

    def _walk_path(self, cfg, symbols, path, leaks) -> None:
        live: dict[str, _Tracked] = {}
        prev_block = None
        for block_id in path.blocks:
            block = cfg.blocks[block_id]
            if (block_id in cfg.handler_entries
                    and prev_block is not None):
                self._cancel_raising_acquire(cfg, symbols, prev_block,
                                             live)
            for item in block.items:
                self._transfer(symbols, live, item)
            prev_block = block_id
        for name, tracked in live.items():
            for group in tracked.missing():
                key = (name, getattr(tracked.node, "lineno", 1),
                       tracked.kind, group)
                leaks.setdefault(key, tracked.node)

    @staticmethod
    def _cancel_raising_acquire(cfg, symbols, prev_block, live) -> None:
        """Drop an acquisition whose own statement raised.

        When a path enters an ``except`` entry and the *last* item of
        the preceding block was the acquiring assignment, the exception
        can only have come from (or before) the constructor itself —
        no resource exists on this path.
        """
        items = cfg.blocks[prev_block].items
        if not items:
            return
        last = items[-1]
        if not isinstance(last, ast.Assign):
            return
        for name, tracked in list(live.items()):
            if tracked.node is last:
                del live[name]

    def _transfer(self, symbols, live: dict[str, _Tracked],
                  item: object) -> None:
        if isinstance(item, (Test, WithEnter, WithExit)):
            expr = item.expr if isinstance(item, Test) else None
            if expr is not None:
                self._mark_escapes(live, expr, method_call=False)
            return
        if not isinstance(item, ast.stmt):
            return
        # Releases and escapes anywhere in the statement.
        for node in ast.walk(item):
            if isinstance(node, ast.Call):
                self._apply_call(symbols, live, node)
        if isinstance(item, ast.Return) and item.value is not None:
            self._mark_escapes(live, item.value, method_call=False)
        if isinstance(item, ast.Assign):
            self._apply_assign(symbols, live, item)
        elif isinstance(item, ast.Expr):
            # Bare acquisition (``open(p)`` never bound): track under a
            # synthetic key so it is reported as leaked.
            value = item.value
            if isinstance(value, ast.Call):
                kind = _acquisition_kind(value, symbols)
                if kind is not None:
                    key = f"<unbound:{getattr(value, 'lineno', 0)}>"
                    live[key] = _Tracked(kind, value)

    def _apply_assign(self, symbols, live: dict[str, _Tracked],
                      stmt: ast.Assign) -> None:
        value = stmt.value
        targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
        if isinstance(value, ast.Call):
            kind = _acquisition_kind(value, symbols)
            if kind is not None and targets:
                live[targets[0].id] = _Tracked(kind, stmt)
                return
        # Storing a handle into an attribute/subscript is an escape.
        for target in stmt.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                self._mark_escapes(live, value, method_call=False)

    def _apply_call(self, symbols, live: dict[str, _Tracked],
                    call: ast.Call) -> None:
        flock = _flock_mode(call, symbols)
        if flock is not None:
            handle, mode = flock
            key = f"<flock:{handle}>"
            if mode == "EX":
                tracked = _Tracked("flock", call)
                tracked.satisfied = set()
                live[key] = tracked
            elif key in live:
                del live[key]
            return
        # ``var.method(...)``: a release when method is in a group.
        func = call.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in live):
            tracked = live[func.value.id]
            for group in RELEASE_GROUPS.get(tracked.kind, ()):
                if func.attr in group:
                    tracked.satisfied.add(group)
            return
        # A tracked handle passed as an argument escapes (ownership
        # transfer: ``_untrack(shm)``, ``resource_tracker.unregister``).
        for arg in list(call.args) + [k.value for k in call.keywords]:
            self._mark_escapes(live, arg, method_call=True)

    @staticmethod
    def _mark_escapes(live: dict[str, _Tracked], expr: ast.expr,
                      method_call: bool) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in live:
                tracked = live[node.id]
                tracked.satisfied.update(
                    RELEASE_GROUPS.get(tracked.kind, ()))
