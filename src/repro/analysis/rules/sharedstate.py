"""Rule ``worker-shared-state``: workers must not write module globals.

Worker processes are forked from the parent and then live for many
tasks (:mod:`repro.perf.pool`).  A module-level mutable global written
from worker code is the static signature of a race / state-bleed bug:
under ``fork`` the write silently diverges from the parent's copy, and
on a *reused* warm worker it leaks state from one task into the next —
exactly the bleed the worker loop's reset discipline exists to
prevent.

The check is interprocedural: worker entry points are found
structurally (the ``target=`` of a ``Process(...)`` construction), the
call graph closes over everything reachable from them, and each
reachable function is scanned for

* rebinding a module global (``global NAME`` + assignment, or
  ``mod.NAME = ...`` through a module alias);
* mutating one in place — ``NAME[k] = v``, ``NAME.append(...)``,
  ``mod.NAME.update(...)`` — when ``NAME`` is a module-level mutable
  (list/dict/set literal or constructed object) of an analyzed module.

The sanctioned reset idiom stays allowed: functions named ``reset`` /
``enable`` / ``disable`` / ``clear`` / ``configure`` and dedicated
``set_*`` setters (the per-task installation the worker loop performs
deliberately — ``set_run_seed``, observability resets) are exempt, as
are calls to methods with those names — installing process-local state
after fork is the *fix* for state bleed, not an instance of it.  The
rule targets the incidental write buried in task logic.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, Rule, register_rule
from repro.analysis.graph.callgraph import CallGraph, dotted_parts
from repro.analysis.graph.project import Project

__all__ = ["SharedStateRule"]

#: Method names that mutate a container/object in place.
_MUTATORS = {"append", "extend", "insert", "add", "update", "setdefault",
             "pop", "popitem", "remove", "discard", "__setitem__"}

#: Sanctioned reset-discipline names (functions and methods): the
#: worker loop *must* reset process-local observability state per task.
_SANCTIONED = {"reset", "enable", "disable", "clear", "configure"}


def _worker_entries(project: Project, graph: CallGraph) -> list[str]:
    """Qnames passed as ``target=`` to a ``Process(...)`` call."""
    entries: list[str] = []
    for parsed in project:
        symbols = project.symbols_of(parsed)
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.Call):
                continue
            parts = dotted_parts(node.func)
            if not parts or parts[-1] != "Process":
                continue
            for keyword in node.keywords:
                if keyword.arg != "target":
                    continue
                entries.extend(graph.resolve_name(keyword.value,
                                                  symbols))
    return entries


def _is_mutable_literal(node: ast.expr | None) -> bool:
    """Module-global initializers that make in-place writes matter."""
    return isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp, ast.Call))


@register_rule
class SharedStateRule(Rule):
    """Functions reachable from worker entries keep globals read-only."""

    rule_id = "worker-shared-state"
    description = ("function reachable from a worker entry point "
                   "writes a module-level mutable global (cross-fork "
                   "state bleed)")

    def check(self, project: Project) -> Iterator[Finding]:
        graph = project.call_graph
        entries = _worker_entries(project, graph)
        if not entries:
            return
        reachable = graph.reachable_from(entries)
        for qname in sorted(reachable):
            info = graph.functions[qname]
            short = info.local.rsplit(".", 1)[-1]
            if short in _SANCTIONED or short.startswith("set_"):
                continue
            yield from self._check_function(project, graph, info,
                                            entries)

    def _check_function(self, project, graph, info,
                        entries) -> Iterator[Finding]:
        symbols = graph.table.of(info.parsed)
        declared_global: set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        for node in ast.walk(info.node):
            message = self._violation(symbols, graph, declared_global,
                                      node)
            if message is None:
                continue
            chain = self._chain(graph, entries, info.qname)
            finding = self.finding(
                info.parsed, node,
                f"{message} in '{info.local}', reachable from worker "
                f"entry via {chain}; workers must not write module "
                f"globals")
            if finding is not None:
                yield finding

    @staticmethod
    def _chain(graph: CallGraph, entries, qname: str) -> str:
        if qname in entries:
            return qname.rpartition(":")[2] + " (the entry itself)"
        for entry in entries:
            chain = graph.call_chain(entry, qname)
            if chain:
                names = [q.rpartition(":")[2] for q in chain]
                return " -> ".join(names[:4])
        return "worker entry"

    def _violation(self, symbols, graph, declared_global,
                   node: ast.AST) -> str | None:
        # global NAME; NAME = ...  (rebinding process-wide state)
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Name)
                        and target.id in declared_global):
                    return (f"rebinds module global "
                            f"'{target.id}'")
                # mod.NAME = ... / GLOBAL[k] = ...
                message = self._store_target(symbols, graph, target)
                if message is not None:
                    return message
        # GLOBAL.append(...) / mod.GLOBAL.update(...)
        if isinstance(node, ast.Call):
            return self._mutator_call(symbols, graph, node)
        return None

    def _store_target(self, symbols, graph,
                      target: ast.expr) -> str | None:
        if isinstance(target, ast.Subscript):
            base = self._global_base(symbols, graph, target.value)
            if base is not None:
                return f"writes into module global '{base}'"
        elif isinstance(target, ast.Attribute):
            # mod.NAME = ... rebinding through a module alias.
            parts = dotted_parts(target)
            if len(parts) == 2 and parts[0] in symbols.module_aliases:
                module = graph.table.resolve_module(
                    symbols.imports.get(parts[0], parts[0]), symbols)
                if module is not None and parts[1] in \
                        module.module_globals:
                    return (f"rebinds module global "
                            f"'{'.'.join(parts)}'")
        return None

    def _mutator_call(self, symbols, graph,
                      call: ast.Call) -> str | None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr in _SANCTIONED:
            return None
        if func.attr not in _MUTATORS:
            return None
        base = self._global_base(symbols, graph, func.value)
        if base is None:
            return None
        return (f"mutates module global '{base}' in place "
                f"(.{func.attr}())")

    @staticmethod
    def _global_base(symbols, graph, expr: ast.expr) -> str | None:
        """Dotted label when ``expr`` names a module-level mutable."""
        if isinstance(expr, ast.Name):
            value = symbols.module_globals.get(expr.id)
            if value is not None and _is_mutable_literal(value):
                return expr.id
            return None
        parts = dotted_parts(expr)
        if len(parts) == 2 and parts[0] in symbols.module_aliases:
            module = graph.table.resolve_module(
                symbols.imports.get(parts[0], parts[0]), symbols)
            if module is not None:
                value = module.module_globals.get(parts[1])
                if value is not None and _is_mutable_literal(value):
                    return ".".join(parts)
        return None
