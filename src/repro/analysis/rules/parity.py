"""Rule ``parity-oracle``: vectorized kernels keep their oracles tested.

The perf work (PR 2) vectorized hot kernels but kept every original
scalar implementation as a *parity oracle* — e.g.
``ThermalGrid._assemble_reference`` for the COO assembly, and the string
Rice codec for the packed one.  The guarantee only holds while some test
actually compares the pair; this rule makes that structural:

* a pair is declared either **by convention** — a callable named
  ``<kernel>_reference`` next to a callable ``<kernel>`` in the same
  module — or **by registry** — a module-level
  ``PARITY_ORACLES = {"kernel_name": "oracle_name"}`` dict for pairs
  whose names predate the convention;
* for every pair, at least one test module (``test_*.py``) must mention
  *both* names — the structural minimum for a parity test.  A kernel
  whose oracle no test imports has a drifting oracle.

Registry entries naming callables that don't exist in the module are
themselves findings (a stale registry is worse than none).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Sequence

from repro.analysis.engine import Finding, ParsedFile, Rule, register_rule
from repro.analysis.graph.project import Project

__all__ = ["ParityOracleRule", "REGISTRY_NAME", "REFERENCE_SUFFIX"]

#: Module-level dict declaring {kernel: oracle} pairs explicitly.
REGISTRY_NAME = "PARITY_ORACLES"

#: Naming convention marking a callable as a parity oracle.
REFERENCE_SUFFIX = "_reference"


def _is_test_file(parsed: ParsedFile) -> bool:
    name = parsed.path.name
    return name.startswith("test_") or name == "conftest.py"


def _callable_names(tree: ast.Module) -> dict[str, ast.AST]:
    """Every function/method name defined in a module -> its def node."""
    names: dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.setdefault(node.name, node)
    return names


def _registry_pairs(parsed: ParsedFile,
                    ) -> list[tuple[str, str, ast.AST]]:
    """(kernel, oracle, node) entries of a PARITY_ORACLES declaration."""
    pairs = []
    for node in parsed.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(isinstance(t, ast.Name) and t.id == REGISTRY_NAME
                   for t in targets):
            continue
        if not isinstance(value, ast.Dict):
            continue
        for key, val in zip(value.keys, value.values):
            if (isinstance(key, ast.Constant) and isinstance(key.value, str)
                    and isinstance(val, ast.Constant)
                    and isinstance(val.value, str)):
                pairs.append((key.value, val.value, key))
    return pairs


@register_rule
class ParityOracleRule(Rule):
    """Every kernel/oracle pair must appear together in some test."""

    rule_id = "parity-oracle"
    description = ("vectorized kernel with a *_reference / registered "
                   "oracle sibling lacking a test importing both")

    def check(self, project: Project) -> Iterator[Finding]:
        sources = [p for p in project if not _is_test_file(p)]
        tests = [p for p in project if _is_test_file(p)]
        test_blobs = [t.source for t in tests]
        for parsed in sources:
            defined = _callable_names(parsed.tree)
            pairs: list[tuple[str, str, ast.AST]] = []
            for name, node in defined.items():
                if not name.endswith(REFERENCE_SUFFIX):
                    continue
                kernel = name[:-len(REFERENCE_SUFFIX)]
                if not kernel.strip("_"):
                    continue
                if kernel in defined:
                    pairs.append((kernel, name, node))
            for kernel, oracle, node in _registry_pairs(parsed):
                missing = [n for n in (kernel, oracle) if n not in defined]
                if missing:
                    found = self.finding(
                        parsed, node,
                        f"{REGISTRY_NAME} names {missing[0]!r}, which "
                        f"this module does not define")
                    if found is not None:
                        yield found
                    continue
                pairs.append((kernel, oracle, node))
            for kernel, oracle, node in pairs:
                if not self._tested_together(kernel, oracle, test_blobs):
                    found = self.finding(
                        parsed, node,
                        f"kernel {kernel!r} has parity oracle {oracle!r} "
                        "but no test module references both; add a "
                        "test comparing their outputs")
                    if found is not None:
                        yield found

    @staticmethod
    def _tested_together(kernel: str, oracle: str,
                         test_blobs: Sequence[str]) -> bool:
        kernel_re = re.compile(rf"\b{re.escape(kernel)}\b")
        oracle_re = re.compile(rf"\b{re.escape(oracle)}\b")
        return any(kernel_re.search(blob) and oracle_re.search(blob)
                   for blob in test_blobs)
