"""Rule ``seed-taint``: interprocedural RNG/seed provenance.

The per-file ``determinism`` rule catches ambient randomness at the
call site (``default_rng(time.time())``, ``seed=time.time_ns()``).
What it cannot see is *laundered* nondeterminism: a helper that
returns ``time.time_ns()`` two modules away, passed along the call
graph until it lands in an ``ExperimentResult`` — at which point the
artifact's recorded seed is wall-clock-derived and the byte-identical
CSV contract is silently broken.

This rule runs a small taint fixpoint over the project call graph:

* **sources** — ``time.time()`` / ``time.time_ns()`` /
  ``time.perf_counter()``, ``os.urandom(...)``, and a *bare*
  ``default_rng()`` (no seed argument);
* **propagation** — a function whose return value contains a source
  (directly, through a tainted local, or through a call to an
  already-tainted function) becomes tainted itself; iterate to
  fixpoint so taint crosses any number of call edges and modules;
* **sinks** — an ``ExperimentResult(...)`` construction, or any
  ``seed=`` / ``derived_seed=`` keyword argument, receiving a tainted
  expression.

The sanctioned seed path (:func:`repro.obs.manifest.seeded_rng` and
explicit integer seeds threaded through parameters) never touches a
source, so it stays untainted by construction.  Taint does not flow
through arguments (only through return values) — an under-
approximation that keeps the rule quiet on code it cannot prove
guilty.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ParsedFile, Rule, register_rule
from repro.analysis.graph.callgraph import CallGraph, dotted_parts
from repro.analysis.graph.project import Project

__all__ = ["SeedTaintRule", "TAINT_SOURCES"]

#: Canonical dotted names whose call results are wall-clock/entropy
#: tainted.
TAINT_SOURCES = {"time.time", "time.time_ns", "time.perf_counter",
                 "time.monotonic", "os.urandom"}

#: Keyword arguments that are seed sinks on any call.
_SINK_KEYWORDS = {"seed", "derived_seed"}


def _is_test_file(parsed: ParsedFile) -> bool:
    stem = parsed.path.stem
    return stem.startswith("test_") or stem == "conftest"


def _is_source_call(call: ast.Call, symbols) -> bool:
    parts = dotted_parts(call.func)
    if not parts:
        return False
    expanded = symbols.expand(parts)
    if expanded in TAINT_SOURCES:
        return True
    # Bare default_rng(): seeded from OS entropy.
    if expanded.endswith("default_rng") and not call.args \
            and not call.keywords:
        return True
    return False


class _FunctionTaint:
    """Per-function taint summary used by the fixpoint."""

    def __init__(self, info, symbols) -> None:
        self.info = info
        self.symbols = symbols

    def tainted_locals(self, graph: CallGraph,
                       tainted: set[str]) -> set[str]:
        """Names bound (anywhere in the body) to a tainted value."""
        names: set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in ast.walk(self.info.node):
                if not isinstance(node, ast.Assign):
                    continue
                if not self._expr_tainted(graph, tainted, names,
                                          node.value):
                    continue
                for target in node.targets:
                    if (isinstance(target, ast.Name)
                            and target.id not in names):
                        names.add(target.id)
                        changed = True
        return names

    def returns_taint(self, graph: CallGraph,
                      tainted: set[str]) -> bool:
        names = self.tainted_locals(graph, tainted)
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if self._expr_tainted(graph, tainted, names,
                                      node.value):
                    return True
        return False

    def _expr_tainted(self, graph: CallGraph, tainted: set[str],
                      names: set[str], expr: ast.expr) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                if _is_source_call(node, self.symbols):
                    return True
                for qname in graph.resolve_call(node, self.symbols,
                                                self.info):
                    if qname in tainted:
                        return True
            elif isinstance(node, ast.Name) and node.id in names:
                return True
        return False


@register_rule
class SeedTaintRule(Rule):
    """Wall-clock/entropy values must never become recorded seeds."""

    rule_id = "seed-taint"
    description = ("wall-clock or entropy-derived value flows into an "
                   "ExperimentResult / seed= argument (breaks the "
                   "byte-identical replay contract)")

    def check(self, project: Project) -> Iterator[Finding]:
        graph = project.call_graph
        summaries: dict[str, _FunctionTaint] = {}
        for qname, info in graph.functions.items():
            if _is_test_file(info.parsed):
                continue
            summaries[qname] = _FunctionTaint(
                info, graph.table.of(info.parsed))

        # Fixpoint: which functions return tainted values.
        tainted: set[str] = set()
        changed = True
        while changed:
            changed = False
            for qname, summary in summaries.items():
                if qname in tainted:
                    continue
                if summary.returns_taint(graph, tainted):
                    tainted.add(qname)
                    changed = True

        for qname in sorted(summaries):
            yield from self._check_sinks(graph, summaries[qname],
                                         tainted)

    def _check_sinks(self, graph: CallGraph, summary: _FunctionTaint,
                     tainted: set[str]) -> Iterator[Finding]:
        info, symbols = summary.info, summary.symbols
        names = summary.tainted_locals(graph, tainted)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            is_result = self._is_result_ctor(graph, symbols, info,
                                             node)
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                sink = (keyword.arg in _SINK_KEYWORDS
                        or (is_result and keyword.arg in
                            ("seed", "derived_seed")))
                if not sink:
                    continue
                origin = self._taint_origin(graph, symbols, info,
                                            names, tainted,
                                            keyword.value)
                if origin is None:
                    continue
                target = ("ExperimentResult" if is_result
                          else "a seed argument")
                finding = self.finding(
                    info.parsed, keyword.value,
                    f"'{keyword.arg}=' receives {origin} in "
                    f"'{info.local}' — nondeterministic provenance "
                    f"reaching {target}; thread an explicit seed "
                    f"instead")
                if finding is not None:
                    yield finding

    @staticmethod
    def _is_result_ctor(graph, symbols, info, call: ast.Call) -> bool:
        parts = dotted_parts(call.func)
        return bool(parts) and parts[-1] == "ExperimentResult"

    def _taint_origin(self, graph, symbols, info, names, tainted,
                      expr: ast.expr) -> str | None:
        """Human description of the taint in ``expr``, or None."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                if _is_source_call(node, symbols):
                    parts = dotted_parts(node.func)
                    return (f"'{'.'.join(parts)}()' "
                            f"(wall-clock/entropy source)")
                for qname in graph.resolve_call(node, symbols, info):
                    if qname in tainted:
                        chain = self._source_chain(graph, tainted,
                                                   qname)
                        return (f"a value from '{qname}'{chain} "
                                f"(taints through its return value)")
            elif isinstance(node, ast.Name) and node.id in names:
                return (f"tainted local '{node.id}' "
                        f"(wall-clock/entropy-derived)")
        return None

    @staticmethod
    def _source_chain(graph: CallGraph, tainted: set[str],
                      start: str) -> str:
        """A short onward chain into deeper tainted callees."""
        chain = [start]
        current = start
        for _ in range(3):
            nxt = next((c for c in graph.functions[current].calls
                        if c in tainted and c not in chain), None)
            if nxt is None:
                break
            chain.append(nxt)
            current = nxt
        if len(chain) == 1:
            return ""
        return " via " + " -> ".join(
            q.rpartition(":")[2] for q in chain[1:])
