"""Rule ``resilience``: errors are handled deliberately, retries end.

The fault-injection layer (:mod:`repro.fault`) only proves recovery
works because the recovery code is disciplined.  Two anti-patterns
undermine that and are banned outright:

* **bare ``except:``** — swallows ``KeyboardInterrupt``,
  ``SystemExit``, and every injected fault indiscriminately, turning a
  crash the retry loop should see into silent corruption.  Catch a
  concrete exception type (``except ValueError:``) or, at the outermost
  degradation boundary, ``except Exception:``.
* **unbounded retry** — a ``while True:`` loop whose exception handler
  ``continue``s without any way out (no ``break``, ``raise``, or
  ``return`` in the handler).  Under a persistent fault this spins
  forever; every retry loop must be bounded
  (``for attempt in range(max_retries + 1)``, the idiom used by
  :func:`repro.experiments.run_module_resilient`) or carry an explicit
  exit in the handler.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ParsedFile, Rule, register_rule
from repro.analysis.graph.project import Project

__all__ = ["ResilienceRule"]


def _is_while_true(node: ast.While) -> bool:
    test = node.test
    return isinstance(test, ast.Constant) and bool(test.value) is True


def _handler_escapes(handler: ast.ExceptHandler) -> bool:
    """True when the handler body can leave the loop (break, raise, or
    return anywhere inside it)."""
    for child in ast.walk(handler):
        if isinstance(child, (ast.Break, ast.Raise, ast.Return)):
            return True
    return False


def _handler_continues(handler: ast.ExceptHandler) -> bool:
    """True when the handler body re-enters the loop via ``continue``
    (falling off the handler's end also re-enters, but plain fall-
    through usually follows a logging line before real work; the
    explicit retry signature is ``continue``)."""
    for child in ast.walk(handler):
        if isinstance(child, ast.Continue):
            return True
    return False


def _loop_handlers(loop: ast.While) -> Iterator[ast.ExceptHandler]:
    """Except handlers belonging to tries directly inside this loop
    (not inside a nested function or nested loop)."""
    stack: list[ast.stmt] = list(loop.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.While, ast.For, ast.AsyncFor)):
            continue
        if isinstance(node, ast.Try):
            yield from node.handlers
            stack.extend(node.body)
            stack.extend(node.orelse)
            stack.extend(node.finalbody)
            continue
        for field in ("body", "orelse", "finalbody"):
            stack.extend(getattr(node, field, []))


@register_rule
class ResilienceRule(Rule):
    """No bare except handlers; every retry loop must be bounded."""

    rule_id = "resilience"
    description = ("bare 'except:' handler, or unbounded while-True "
                   "retry loop (handler continues without an exit)")

    def check(self, project: Project) -> Iterator[Finding]:
        for parsed in project:
            yield from self._check_module(parsed)

    def _check_module(self, parsed: ParsedFile) -> Iterator[Finding]:
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                found = self.finding(
                    parsed, node,
                    "bare 'except:' swallows KeyboardInterrupt and "
                    "SystemExit; catch a concrete exception type (or "
                    "'except Exception:' at a degradation boundary)")
                if found is not None:
                    yield found
            elif isinstance(node, ast.While) and _is_while_true(node):
                yield from self._check_retry_loop(parsed, node)

    def _check_retry_loop(self, parsed: ParsedFile,
                          loop: ast.While) -> Iterator[Finding]:
        for handler in _loop_handlers(loop):
            if _handler_continues(handler) and not _handler_escapes(
                    handler):
                found = self.finding(
                    parsed, handler,
                    "unbounded retry: 'while True' handler retries via "
                    "'continue' with no break/raise/return; bound it "
                    "('for attempt in range(max_retries + 1)') or add "
                    "an explicit exit")
                if found is not None:
                    yield found
