"""Rule ``units``: no bare power-of-ten unit factors.

The framework's safety limits (40 mW/cm^2, <= 1 K rise, <= 20 um pitch)
make a silent mW-vs-W slip a correctness bug, so all scale conversions
must go through the name-carrying helpers in :mod:`repro.units`
(``mw()``, ``to_mw()``, ``khz()``, ...).  Two checks:

* **arithmetic factors** — a pure power-of-ten literal (``1e-3``,
  ``1e6``, ``1000.0``) multiplying or dividing a value reads as a unit
  conversion and must be a named helper instead;
* **unit-suffixed bindings** — a scientific-notation literal assigned to
  a name (or passed as a keyword) with an SI unit suffix (``_w``, ``_s``,
  ``_hz``, ``_j``, ``_m``, ``_m2``, ``_bps``, ``_k``) must be constructed
  via a helper, e.g. ``t_mac_s=ns(2.0)`` rather than ``t_mac_s=2e-9``.

:mod:`repro.units` itself (where the factors are the definitions) and
test modules (``test_*.py`` / ``conftest.py``) are exempt; additive
epsilons (``x + 1e-12``) and comparisons (``err < 1e-9``) are not
arithmetic conversions and never fire.
"""

from __future__ import annotations

import ast
import math
import re
from typing import Iterator

from repro.analysis.engine import Finding, ParsedFile, Rule, register_rule
from repro.analysis.graph.project import Project

__all__ = ["UnitsRule", "is_power_of_ten", "power_of_ten_exponent"]

#: Name suffixes treated as carrying an SI unit.
UNIT_SUFFIXES = ("_w", "_s", "_hz", "_j", "_m", "_m2", "_bps", "_k",
                 "_w_m2k", "_w_mk")

_SCIENTIFIC_RE = re.compile(r"^[\d_.]+[eE][-+]?\d+$")


def power_of_ten_exponent(value: object) -> int | None:
    """The integer k with ``value == 10**k``, or None."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if value <= 0 or not math.isfinite(value):
        return None
    exponent = round(math.log10(value))
    if 10.0 ** exponent == float(value):
        return exponent
    return None


def is_power_of_ten(value: object, min_abs_exponent: int = 3) -> bool:
    """True for 10**k with ``abs(k) >= min_abs_exponent``."""
    exponent = power_of_ten_exponent(value)
    return exponent is not None and abs(exponent) >= min_abs_exponent


def _is_scientific(parsed: ParsedFile, node: ast.Constant) -> bool:
    """True when the literal was written in scientific notation."""
    return bool(_SCIENTIFIC_RE.match(parsed.segment(node)))


def _has_unit_suffix(name: str) -> bool:
    return name.lower().endswith(UNIT_SUFFIXES)


def _exempt(parsed: ParsedFile) -> bool:
    name = parsed.path.name
    return (name == "units.py" or name == "conftest.py"
            or name.startswith("test_"))


@register_rule
class UnitsRule(Rule):
    """Bare power-of-ten factors must use :mod:`repro.units` helpers."""

    rule_id = "units"
    description = ("bare power-of-ten unit factors in arithmetic or "
                   "unit-suffixed bindings; use repro.units helpers")

    def check(self, project: Project) -> Iterator[Finding]:
        for parsed in project:
            if _exempt(parsed):
                continue
            yield from self._check_module(parsed)

    def _check_module(self, parsed: ParsedFile) -> Iterator[Finding]:
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Mult, ast.Div)):
                yield from self._check_factor(parsed, node)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    yield from self._check_binding(
                        parsed, node.target.id, node.value)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        yield from self._check_binding(
                            parsed, target.id, node.value)
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg is not None:
                        yield from self._check_binding(
                            parsed, keyword.arg, keyword.value)

    def _check_factor(self, parsed: ParsedFile,
                      node: ast.BinOp) -> Iterator[Finding]:
        """Power-of-ten literal as a multiply/divide operand."""
        for operand in (node.left, node.right):
            if not isinstance(operand, ast.Constant):
                continue
            if not is_power_of_ten(operand.value):
                continue
            found = self.finding(
                parsed, operand,
                f"bare power-of-ten factor {operand.value!r} in "
                "arithmetic; use a repro.units helper "
                "(mw()/to_mw(), khz(), ms(), ...)")
            if found is not None:
                yield found

    def _check_binding(self, parsed: ParsedFile, name: str,
                       value: ast.expr) -> Iterator[Finding]:
        """Scientific literal bound to a unit-suffixed name."""
        if not _has_unit_suffix(name):
            return
        if not (isinstance(value, ast.Constant)
                and isinstance(value.value, (int, float))
                and not isinstance(value.value, bool)):
            return
        if not _is_scientific(parsed, value):
            return
        found = self.finding(
            parsed, value,
            f"unit-suffixed binding {name!r} built from the raw literal "
            f"{parsed.segment(value)}; construct it with a repro.units "
            "helper (e.g. mw(), ns(), khz(), pj())")
        if found is not None:
            yield found
