"""Built-in analysis rules.

Importing this package registers every rule with the engine registry
(:func:`repro.analysis.engine.register_rule`); adding a rule means adding
a module here and importing it below — see ``docs/STATIC_ANALYSIS.md``.
"""

from repro.analysis.rules import (  # noqa: F401  (import == registration)
    contracts,
    determinism,
    exports,
    lifecycle,
    parity,
    resilience,
    seedtaint,
    sharedstate,
    telemetry,
    transfer,
    units,
)

__all__ = ["contracts", "determinism", "exports", "lifecycle", "parity",
           "resilience", "seedtaint", "sharedstate", "telemetry",
           "transfer", "units"]
