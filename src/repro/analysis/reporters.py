"""Text and JSON renderings of an analysis run."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.analysis.engine import Finding, Rule

__all__ = ["render_json", "render_text"]

#: JSON report schema version (bump when the field set changes).
REPORT_SCHEMA_VERSION = 1


def render_text(new: Sequence[tuple[Finding, str]],
                grandfathered: Sequence[tuple[Finding, str]],
                rules: Sequence[Rule],
                n_files: int) -> str:
    """Human-readable report: one ``path:line:col rule message`` per
    finding, then a per-rule summary."""
    lines = []
    for finding, _ in new:
        lines.append(f"{finding.location()}: [{finding.rule}] "
                     f"{finding.message}")
    if lines:
        lines.append("")
    by_rule = Counter(f.rule for f, _ in new)
    summary = ", ".join(f"{rule}={count}"
                        for rule, count in sorted(by_rule.items()))
    lines.append(
        f"analyzed {n_files} files with {len(rules)} rules: "
        f"{len(new)} new finding(s)"
        + (f" ({summary})" if summary else "")
        + (f", {len(grandfathered)} baselined" if grandfathered else ""))
    return "\n".join(lines)


def render_json(new: Sequence[tuple[Finding, str]],
                grandfathered: Sequence[tuple[Finding, str]],
                rules: Sequence[Rule],
                n_files: int) -> str:
    """Machine-readable report (uploaded as a CI artifact)."""

    def encode(finding: Finding, digest: str,
               baselined: bool) -> dict[str, object]:
        return {
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "rule": finding.rule,
            "message": finding.message,
            "fingerprint": digest,
            "baselined": baselined,
        }

    document = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "n_files": n_files,
        "rules": [{"id": rule.rule_id, "description": rule.description}
                  for rule in rules],
        "counts": {
            "new": len(new),
            "baselined": len(grandfathered),
        },
        "findings": ([encode(f, d, False) for f, d in new]
                     + [encode(f, d, True) for f, d in grandfathered]),
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
