"""Text, JSON, and SARIF renderings of an analysis run."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.analysis.engine import Finding, Rule

__all__ = ["render_json", "render_sarif", "render_text"]

#: JSON report schema version (bump when the field set changes).
REPORT_SCHEMA_VERSION = 1

#: SARIF spec pinned by ``render_sarif`` (GitHub code scanning's
#: supported version).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def render_text(new: Sequence[tuple[Finding, str]],
                grandfathered: Sequence[tuple[Finding, str]],
                rules: Sequence[Rule],
                n_files: int) -> str:
    """Human-readable report: one ``path:line:col rule message`` per
    finding, then a per-rule summary."""
    lines = []
    for finding, _ in new:
        lines.append(f"{finding.location()}: [{finding.rule}] "
                     f"{finding.message}")
    if lines:
        lines.append("")
    by_rule = Counter(f.rule for f, _ in new)
    summary = ", ".join(f"{rule}={count}"
                        for rule, count in sorted(by_rule.items()))
    lines.append(
        f"analyzed {n_files} files with {len(rules)} rules: "
        f"{len(new)} new finding(s)"
        + (f" ({summary})" if summary else "")
        + (f", {len(grandfathered)} baselined" if grandfathered else ""))
    return "\n".join(lines)


def render_json(new: Sequence[tuple[Finding, str]],
                grandfathered: Sequence[tuple[Finding, str]],
                rules: Sequence[Rule],
                n_files: int) -> str:
    """Machine-readable report (uploaded as a CI artifact)."""

    def encode(finding: Finding, digest: str,
               baselined: bool) -> dict[str, object]:
        return {
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "rule": finding.rule,
            "message": finding.message,
            "fingerprint": digest,
            "baselined": baselined,
        }

    document = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "n_files": n_files,
        "rules": [{"id": rule.rule_id, "description": rule.description}
                  for rule in rules],
        "counts": {
            "new": len(new),
            "baselined": len(grandfathered),
        },
        "findings": ([encode(f, d, False) for f, d in new]
                     + [encode(f, d, True) for f, d in grandfathered]),
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def render_sarif(new: Sequence[tuple[Finding, str]],
                 grandfathered: Sequence[tuple[Finding, str]],
                 rules: Sequence[Rule],
                 n_files: int) -> str:
    """SARIF 2.1.0 report for GitHub code-scanning upload.

    New findings are ``level: error`` with ``baselineState: new``;
    grandfathered ones are ``level: note`` / ``unchanged`` so they
    surface without failing the gate.  Fingerprints ride along as
    ``partialFingerprints`` keyed ``reproAnalysis/v1`` — the same
    digests :mod:`repro.analysis.baseline` stores, so the baseline and
    the code-scanning dedup agree on identity.  Output is
    deterministic (sorted keys, fixed indentation).
    """
    rule_index = {rule.rule_id: index
                  for index, rule in enumerate(rules)}

    def encode(finding: Finding, digest: str,
               baselined: bool) -> dict[str, object]:
        result: dict[str, object] = {
            "ruleId": finding.rule,
            "level": "note" if baselined else "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        # SARIF columns are 1-based; Finding.col is 0-based.
                        "startColumn": finding.col + 1,
                    },
                },
            }],
            "partialFingerprints": {"reproAnalysis/v1": digest},
            "baselineState": "unchanged" if baselined else "new",
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        return result

    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-analyze",
                    "informationUri":
                        "https://example.invalid/repro/analysis",
                    "semanticVersion": f"{REPORT_SCHEMA_VERSION}.0.0",
                    "rules": [{
                        "id": rule.rule_id,
                        "shortDescription": {"text": rule.description},
                    } for rule in rules],
                },
            },
            "columnKind": "utf16CodeUnits",
            "properties": {"n_files": n_files},
            "results": ([encode(f, d, False) for f, d in new]
                        + [encode(f, d, True)
                           for f, d in grandfathered]),
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
