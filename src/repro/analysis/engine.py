"""Rule engine: parsed-file model, rule registry, and the analysis driver.

A :class:`Rule` sees the whole analyzed file set, so rules can be local
(walk one module's AST) or cross-file (match kernels in ``src/`` against
the tests that exercise them).  Findings carry a stable location and a
message; suppression happens either inline (``# lint: ignore[rule-id]``
on the offending line) or via the committed baseline
(:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

__all__ = ["AnalysisError", "Finding", "ParsedFile", "Rule", "all_rules",
           "analyze_paths", "collect_files", "iter_python_files",
           "register_rule", "rule_by_id", "run_rules"]

#: Directories never descended into when collecting files.  ``corpus``
#: keeps the deliberately-violating lint fixtures out of the default
#: scan; pass a corpus directory explicitly to analyze it.
_SKIPPED_DIRS = {"__pycache__", ".git", ".hypothesis", "results",
                 ".pytest_cache", "corpus"}

#: Inline suppression: ``# lint: ignore[units]`` or
#: ``# lint: ignore[units, determinism]`` on the finding's line.
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ignore\[([a-z\-,\s]+)\]")


class AnalysisError(RuntimeError):
    """Raised for unusable inputs (unreadable paths, syntax errors)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation.

    Attributes:
        path: file the violation lives in, as given to the analyzer
            (normalized to forward slashes, repo-relative when possible).
        line: 1-based line number.
        col: 0-based column offset.
        rule: id of the rule that fired.
        message: human-readable explanation with the offending construct.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of the text report."""
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class ParsedFile:
    """One analyzed module: source text, AST, and per-line suppressions."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    _suppressed: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, display_path: str) -> "ParsedFile":
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            raise AnalysisError(f"cannot read {path}: {error}") from error
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            raise AnalysisError(
                f"syntax error in {display_path}:{error.lineno}: "
                f"{error.msg}") from error
        lines = source.splitlines()
        suppressed: dict[int, set[str]] = {}
        for number, text in enumerate(lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                suppressed[number] = {r for r in rules if r}
        return cls(path=path, display_path=display_path, source=source,
                   tree=tree, lines=lines, _suppressed=suppressed)

    def line_text(self, line: int) -> str:
        """The 1-based source line (empty string out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def is_suppressed(self, line: int, rule: str) -> bool:
        """True when the line carries ``# lint: ignore[<rule>]``."""
        return rule in self._suppressed.get(line, ())

    def segment(self, node: ast.AST) -> str:
        """Source text of a node ('' when unavailable)."""
        return ast.get_source_segment(self.source, node) or ""


class Rule:
    """Base class for analysis rules.

    Subclasses set :attr:`rule_id` / :attr:`description` and override
    :meth:`check`, yielding findings over the full file set.  Helper
    :meth:`finding` applies inline suppression automatically.
    """

    rule_id: str = ""
    description: str = ""

    def check(self, files: Sequence[ParsedFile]) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, parsed: ParsedFile, node: ast.AST | None,
                message: str, line: int | None = None,
                col: int | None = None) -> Finding | None:
        """Build a finding unless the line suppresses this rule."""
        if line is None:
            line = getattr(node, "lineno", 1)
        if col is None:
            col = getattr(node, "col_offset", 0)
        if parsed.is_suppressed(line, self.rule_id):
            return None
        return Finding(path=parsed.display_path, line=line, col=col,
                       rule=self.rule_id, message=message)


_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"{cls.__name__} must define rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, in stable id order."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rule_by_id(rule_id: str) -> Rule:
    """Look up one registered rule.

    Raises:
        KeyError: for unknown rule ids.
    """
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule {rule_id!r}; "
                       f"available: {sorted(_REGISTRY)}") from None


def iter_python_files(paths: Iterable[Path | str],
                      ) -> Iterator[tuple[Path, str]]:
    """Yield ``(path, display_path)`` for every ``.py`` under ``paths``.

    Files are yielded in sorted order for deterministic reports; display
    paths are relative to the common invocation directory when possible.

    Raises:
        AnalysisError: when a given path does not exist.
    """
    seen: set[Path] = set()
    for entry in paths:
        root = Path(entry)
        if not root.exists():
            raise AnalysisError(f"no such path: {root}")
        if root.is_file():
            candidates = [root]
        else:
            # Skip directories relative to the requested root, so an
            # explicitly named corpus directory is still analyzable.
            candidates = sorted(
                p for p in root.rglob("*.py")
                if not (_SKIPPED_DIRS & set(p.relative_to(root).parts[:-1])))
        for path in candidates:
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                display = str(path.relative_to(Path.cwd()))
            except ValueError:
                display = str(path)
            yield path, display.replace("\\", "/")


def collect_files(paths: Iterable[Path | str],
                  on_file: Callable[[str], None] | None = None,
                  ) -> list[ParsedFile]:
    """Parse every Python file under ``paths`` (deterministic order)."""
    files: list[ParsedFile] = []
    for path, display in iter_python_files(paths):
        if on_file is not None:
            on_file(display)
        files.append(ParsedFile.parse(path, display))
    return files


def run_rules(files: Sequence[ParsedFile],
              rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Run rules over already-parsed files.

    Returns:
        All findings, sorted by (path, line, col, rule).
    """
    if rules is None:
        rules = all_rules()
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(f for f in rule.check(files) if f is not None)
    return sorted(findings)


def analyze_paths(paths: Iterable[Path | str],
                  rules: Sequence[Rule] | None = None,
                  on_file: Callable[[str], None] | None = None,
                  ) -> list[Finding]:
    """Run rules over every Python file under ``paths``.

    Args:
        paths: files or directories to analyze.
        rules: rule subset (default: every registered rule).
        on_file: optional progress hook called with each display path.

    Returns:
        All findings, sorted by (path, line, col, rule).
    """
    return run_rules(collect_files(paths, on_file=on_file), rules)
